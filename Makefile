PYTHON ?= python

.PHONY: test chaos bench bench-all

test:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/chaos -m chaos -q

bench:
	$(PYTHON) -m benchmarks.run_bench

bench-all:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only
