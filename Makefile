PYTHON ?= python

.PHONY: test bench bench-all

test:
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/

bench:
	$(PYTHON) -m benchmarks.run_bench

bench-all:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only
