PYTHON ?= python

.PHONY: test lint chaos failover drain scenario bench bench-pr1 bench-pr3 bench-pr5 bench-pr6 bench-pr8 bench-pr10 bench-all

# Default flow: lint, then tier-1 tests.
test: lint
	PYTHONPATH=src $(PYTHON) -m pytest -q tests/

# ruff when available (config in pyproject.toml); otherwise fall back to a
# compileall syntax sweep so `make lint` still means something in
# network-isolated environments where ruff cannot be installed.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; falling back to 'python -m compileall' syntax check"; \
		$(PYTHON) -m compileall -q src tests benchmarks; \
	fi

chaos:
	PYTHONPATH=src $(PYTHON) -m pytest tests/chaos -m chaos -q

# Replica-kill scenario only: 3 servers over one store, 8 clients,
# kill + restart a replica mid-workload.
failover:
	PYTHONPATH=src $(PYTHON) -m pytest tests/chaos/test_failover_replicas.py -m chaos -q

# Graceful-drain scenario only: 3 replicas behind a registry file, 8
# clients, drain + kill one mid-workload, undrain a rebuilt one.
drain:
	PYTHONPATH=src $(PYTHON) -m pytest tests/chaos/test_drain_fleet.py -m chaos -q

# Fleet-scale family-switching scenario (Section 4.2) in fast seeded
# small-fleet mode: 3 replicas over one sharded store, rule-driven
# switch_family, propagation + MAPE measurement -> BENCH_PR9.json.
scenario:
	PYTHONPATH=src $(PYTHON) examples/family_switch_fleet.py --fast

# The PR5, PR8, and PR10 suites run via their pytest gates so `make
# bench` also *asserts* the acceptance floors (document codec >= 1x JSON,
# blob codec >= 10x, replica spread >= 1.5x, sendfile egress >= 3x the
# spread baseline, duplicate-heavy batching >= 2x with idle p50
# regression <= 1 ms) while writing BENCH_PR5.json, BENCH_PR8.json, and
# BENCH_PR10.json.
bench:
	$(PYTHON) -m benchmarks.run_bench pr1
	$(PYTHON) -m benchmarks.run_bench pr3
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_perf_docs.py -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_perf_blob_fastpath.py -q
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_perf_batching.py -q

bench-pr1:
	$(PYTHON) -m benchmarks.run_bench pr1

bench-pr3:
	$(PYTHON) -m benchmarks.run_bench pr3

bench-pr5:
	$(PYTHON) -m benchmarks.run_bench pr5

# Full PR6 suite (1M-instance load -> BENCH_PR6.json), then the fast
# write-scaling gate so the run also *asserts* the sharding floors.
bench-pr6:
	$(PYTHON) -m benchmarks.run_bench pr6
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_perf_shards.py -q

# Full PR8 suite (sendfile egress, e2e fetch, range reads ->
# BENCH_PR8.json) via its gate so the run asserts the fast-path floors.
bench-pr8:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_perf_blob_fastpath.py -q

# Full PR10 suite (duplicate-heavy batching, idle p50, QoS flood +
# refusals -> BENCH_PR10.json) via its gate so the run asserts the
# batching/QoS floors.
bench-pr10:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/test_perf_batching.py -q

bench-all:
	PYTHONPATH=src $(PYTHON) -m pytest benchmarks/ --benchmark-only
