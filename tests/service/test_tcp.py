"""Tests for the TCP transport: framing over a real socket."""

import socket
import struct
import threading

import pytest

from repro import build_gallery
from repro.core import ManualClock, SeededIdFactory
from repro.errors import NotFoundError, ServiceError
from repro.service import wire
from repro.service.client import GalleryClient
from repro.service.server import GalleryService
from repro.service.tcp import MAX_FRAME_BYTES, GalleryTcpServer, TcpTransport


@pytest.fixture
def tcp_stack():
    gallery = build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(3))
    service = GalleryService(gallery)
    server = GalleryTcpServer(service).start()
    host, port = server.address
    transport = TcpTransport(host, port)
    client = GalleryClient(transport)
    yield gallery, server, client, transport
    transport.close()
    server.stop()


class TestRoundTrips:
    def test_full_workflow_over_tcp(self, tcp_stack):
        _, _, client, _ = tcp_stack
        client.create_gallery_model("p", "demand", owner="net")
        instance = client.upload_model(
            "p", "demand", b"network-bytes", metadata={"model_name": "rf"}
        )
        client.insert_model_instance_metric(instance["instance_id"], "bias", 0.02)
        hits = client.model_query(
            [{"field": "modelName", "operator": "equal", "value": "rf"}]
        )
        assert [h["instance_id"] for h in hits] == [instance["instance_id"]]
        assert client.load_model_blob(instance["instance_id"]) == b"network-bytes"

    def test_large_blob_over_tcp(self, tcp_stack):
        _, _, client, _ = tcp_stack
        client.create_gallery_model("p", "demand")
        payload = bytes(range(256)) * 8192  # 2 MiB
        instance = client.upload_model("p", "demand", payload)
        assert client.load_model_blob(instance["instance_id"]) == payload

    def test_errors_cross_the_socket(self, tcp_stack):
        _, _, client, _ = tcp_stack
        with pytest.raises(NotFoundError):
            client.get_model("ghost")

    def test_many_sequential_requests_one_connection(self, tcp_stack):
        _, _, client, _ = tcp_stack
        client.create_gallery_model("p", "demand")
        for index in range(50):
            client.upload_model("p", "demand", f"v{index}".encode())
        assert len(client.instances_of("demand")) == 50


class TestConcurrency:
    def test_parallel_clients(self, tcp_stack):
        gallery, server, _, _ = tcp_stack
        host, port = server.address
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            try:
                with TcpTransport(host, port) as transport:
                    client = GalleryClient(transport)
                    client.create_gallery_model("p", f"demand-{worker_id}")
                    for index in range(10):
                        client.upload_model(
                            "p", f"demand-{worker_id}", f"w{worker_id}-{index}".encode()
                        )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        total = gallery.dal.metadata.counts()["instances"]
        assert total == 40


class TestLifecycleAndErrors:
    def test_double_start_rejected(self):
        gallery = build_gallery()
        server = GalleryTcpServer(GalleryService(gallery)).start()
        try:
            with pytest.raises(ServiceError):
                server.start()
        finally:
            server.stop()

    def test_connection_to_stopped_server_fails(self):
        gallery = build_gallery()
        server = GalleryTcpServer(GalleryService(gallery)).start()
        host, port = server.address
        server.stop()
        transport = TcpTransport(host, port, timeout=1.0)
        client = GalleryClient(transport)
        with pytest.raises((ServiceError, OSError)):
            client.get_model("x")

    def test_context_manager_form(self):
        gallery = build_gallery()
        with GalleryTcpServer(GalleryService(gallery)) as server:
            host, port = server.address
            with TcpTransport(host, port) as transport:
                client = GalleryClient(transport)
                model = client.create_gallery_model("p", "demand")
                assert model["project"] == "p"

    def test_stop_returns_true_on_clean_shutdown(self):
        server = GalleryTcpServer(GalleryService(build_gallery())).start()
        assert server.stop() is True
        assert server.stopped_cleanly


class TestHalfOpenConnections:
    """A persistent socket whose peer restarted must heal transparently."""

    def test_reconnects_after_server_restart(self):
        service = GalleryService(
            build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(3))
        )
        server = GalleryTcpServer(service).start()
        host, port = server.address
        transport = TcpTransport(host, port)
        client = GalleryClient(transport)
        try:
            client.create_gallery_model("p", "demand")
            server.stop()
            # Same service, same port: only the LISTENER bounced — exactly
            # the restart a long-lived client is expected to ride out.
            server = GalleryTcpServer(service, host=host, port=port).start()
            instance = client.upload_model("p", "demand", b"after-restart")
            assert client.load_model_blob(instance["instance_id"]) == b"after-restart"
            assert transport.reconnects >= 1
        finally:
            transport.close()
            server.stop()

    def test_fresh_connection_failure_still_surfaces(self):
        server = GalleryTcpServer(GalleryService(build_gallery())).start()
        host, port = server.address
        transport = TcpTransport(host, port, timeout=1.0)
        client = GalleryClient(transport)
        server.stop()
        with pytest.raises((ServiceError, OSError)):
            client.get_model("x")
        assert transport.reconnects <= 1  # no reconnect storm against a corpse
        transport.close()


class TestMalformedFrames:
    """A bad frame earns a structured wire error, not a silent hangup."""

    def _raw_exchange(self, address, payload):
        with socket.create_connection(address, timeout=5.0) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)  # we're done sending; read the reply
            sock.settimeout(5.0)
            chunks = []
            while True:
                try:
                    chunk = sock.recv(65536)
                except socket.timeout:
                    break
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_oversized_frame_gets_wire_format_error(self):
        with GalleryTcpServer(GalleryService(build_gallery())) as server:
            bogus_prefix = struct.pack(">Q", MAX_FRAME_BYTES + 1)
            raw = self._raw_exchange(server.address, bogus_prefix)
            response = wire.decode_response(raw)
            assert not response.ok
            assert response.error_type == "WireFormatError"
            assert "exceeds the limit" in response.error_message

    def test_truncated_frame_gets_wire_format_error(self):
        # A frame whose body fails to decode is answered per-request by the
        # service; a frame TRUNCATED mid-body is a stream-level wire error:
        # declare 1000 bytes, send 11, close.
        with GalleryTcpServer(GalleryService(build_gallery())) as server:
            truncated = struct.pack(">Q", 1000) + b"only-eleven"
            raw = self._raw_exchange(server.address, truncated)
            response = wire.decode_response(raw)
            assert not response.ok
            assert response.error_type == "WireFormatError"

    def test_connection_stays_usable_for_other_clients(self):
        with GalleryTcpServer(GalleryService(build_gallery())) as server:
            self._raw_exchange(
                server.address, struct.pack(">Q", MAX_FRAME_BYTES + 1)
            )
            host, port = server.address
            with TcpTransport(host, port) as transport:
                client = GalleryClient(transport)
                assert client.create_gallery_model("p", "demand")["project"] == "p"
