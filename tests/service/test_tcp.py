"""Tests for the TCP transport: framing over a real socket."""

import threading

import pytest

from repro import build_gallery
from repro.core import ManualClock, SeededIdFactory
from repro.errors import NotFoundError, ServiceError
from repro.service.client import GalleryClient
from repro.service.server import GalleryService
from repro.service.tcp import GalleryTcpServer, TcpTransport


@pytest.fixture
def tcp_stack():
    gallery = build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(3))
    service = GalleryService(gallery)
    server = GalleryTcpServer(service).start()
    host, port = server.address
    transport = TcpTransport(host, port)
    client = GalleryClient(transport)
    yield gallery, server, client, transport
    transport.close()
    server.stop()


class TestRoundTrips:
    def test_full_workflow_over_tcp(self, tcp_stack):
        _, _, client, _ = tcp_stack
        client.create_gallery_model("p", "demand", owner="net")
        instance = client.upload_model(
            "p", "demand", b"network-bytes", metadata={"model_name": "rf"}
        )
        client.insert_model_instance_metric(instance["instance_id"], "bias", 0.02)
        hits = client.model_query(
            [{"field": "modelName", "operator": "equal", "value": "rf"}]
        )
        assert [h["instance_id"] for h in hits] == [instance["instance_id"]]
        assert client.load_model_blob(instance["instance_id"]) == b"network-bytes"

    def test_large_blob_over_tcp(self, tcp_stack):
        _, _, client, _ = tcp_stack
        client.create_gallery_model("p", "demand")
        payload = bytes(range(256)) * 8192  # 2 MiB
        instance = client.upload_model("p", "demand", payload)
        assert client.load_model_blob(instance["instance_id"]) == payload

    def test_errors_cross_the_socket(self, tcp_stack):
        _, _, client, _ = tcp_stack
        with pytest.raises(NotFoundError):
            client.get_model("ghost")

    def test_many_sequential_requests_one_connection(self, tcp_stack):
        _, _, client, _ = tcp_stack
        client.create_gallery_model("p", "demand")
        for index in range(50):
            client.upload_model("p", "demand", f"v{index}".encode())
        assert len(client.instances_of("demand")) == 50


class TestConcurrency:
    def test_parallel_clients(self, tcp_stack):
        gallery, server, _, _ = tcp_stack
        host, port = server.address
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            try:
                with TcpTransport(host, port) as transport:
                    client = GalleryClient(transport)
                    client.create_gallery_model("p", f"demand-{worker_id}")
                    for index in range(10):
                        client.upload_model(
                            "p", f"demand-{worker_id}", f"w{worker_id}-{index}".encode()
                        )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        total = gallery.dal.metadata.counts()["instances"]
        assert total == 40


class TestLifecycleAndErrors:
    def test_double_start_rejected(self):
        gallery = build_gallery()
        server = GalleryTcpServer(GalleryService(gallery)).start()
        try:
            with pytest.raises(ServiceError):
                server.start()
        finally:
            server.stop()

    def test_connection_to_stopped_server_fails(self):
        gallery = build_gallery()
        server = GalleryTcpServer(GalleryService(gallery)).start()
        host, port = server.address
        server.stop()
        transport = TcpTransport(host, port, timeout=1.0)
        client = GalleryClient(transport)
        with pytest.raises((ServiceError, OSError)):
            client.get_model("x")

    def test_context_manager_form(self):
        gallery = build_gallery()
        with GalleryTcpServer(GalleryService(gallery)) as server:
            host, port = server.address
            with TcpTransport(host, port) as transport:
                client = GalleryClient(transport)
                model = client.create_gallery_model("p", "demand")
                assert model["project"] == "p"
