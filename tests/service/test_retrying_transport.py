"""RetryingTransport: transport retries, write safety, breaker, dedup.

The interplay under test is the heart of the fault-tolerant control plane:

* idempotent reads retry blindly;
* mutating writes retry ONLY when the frame carries a ``client_id`` so the
  server's request-id dedup makes the replay safe;
* a lost response (the server executed, the reply vanished) is replayed and
  answered from the dedup cache — exactly-once effect, no duplicate writes;
* the circuit breaker counts transport failures, not relayed store errors.
"""

import pytest

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.errors import CircuitOpenError, MetadataStoreError, ServiceError
from repro.reliability import (
    CircuitBreaker,
    FaultInjector,
    FaultKind,
    FaultyMetadataStore,
    FaultyTransport,
    RetryPolicy,
)
from repro.rules.engine import RuleEngine
from repro.service.client import (
    BLOB_METHODS,
    IDEMPOTENT_METHODS,
    GalleryClient,
    InProcessTransport,
    MethodRetryPolicies,
    RetryingTransport,
)
from repro.service.server import MUTATING_METHODS, GalleryService
from repro.store.blob import InMemoryBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore


def fast_policy(max_attempts=4):
    return RetryPolicy(max_attempts=max_attempts, sleep=lambda _s: None)


class FrozenClock:
    """Callable clock that only moves when told to (breaker timing)."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


@pytest.fixture
def faulty_stack():
    """Service stack whose transport AND metadata store can inject faults."""
    store_injector = FaultInjector(seed=11, rate=0.0)
    wire_injector = FaultInjector(seed=13, rate=0.0)
    metadata = FaultyMetadataStore(InMemoryMetadataStore(), store_injector)
    dal = DataAccessLayer(metadata, InMemoryBlobStore(), LRUBlobCache(1 << 20))
    gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(1))
    engine = RuleEngine(gallery, clock=ManualClock(), bus=gallery.bus)
    service = GalleryService(gallery, engine)
    faulty = FaultyTransport(InProcessTransport(service), wire_injector)
    transport = RetryingTransport(faulty, policy=fast_policy())
    client = GalleryClient(transport)
    return {
        "service": service,
        "gallery": gallery,
        "client": client,
        "transport": transport,
        "store_injector": store_injector,
        "wire_injector": wire_injector,
    }


class TestMethodTables:
    def test_tables_are_disjoint_and_cover_the_service(self, faulty_stack):
        assert not (IDEMPOTENT_METHODS & MUTATING_METHODS)
        service = faulty_stack["service"]
        assert IDEMPOTENT_METHODS | MUTATING_METHODS == set(service.methods())


class TestTransportFaults:
    def test_read_survives_dropped_frames(self, faulty_stack):
        client = faulty_stack["client"]
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"weights")
        faulty_stack["wire_injector"].inject_next("call", FaultKind.DROP)
        got = client.get_model_instance(instance["instance_id"])
        assert got["instance_id"] == instance["instance_id"]
        assert faulty_stack["transport"].retries >= 1

    def test_lost_response_write_is_not_double_applied(self, faulty_stack):
        client = faulty_stack["client"]
        gallery = faulty_stack["gallery"]
        service = faulty_stack["service"]
        client.create_gallery_model("p", "demand")
        # The server processes the upload but the response never arrives;
        # the retry replays the SAME (client_id, request_id) and the server
        # answers from its dedup cache instead of uploading again.
        faulty_stack["wire_injector"].inject_next("call", FaultKind.LOST_RESPONSE)
        instance = client.upload_model("p", "demand", b"weights-v1")
        assert instance["instance_id"]
        assert len(gallery.instances_of("demand")) == 1
        assert service.dedup.hits == 1

    def test_write_without_client_id_fails_fast(self, faulty_stack):
        # An anonymous client gets the pre-PR behaviour: no replay, the
        # transport error surfaces after a single attempt.
        anonymous = GalleryClient(faulty_stack["transport"], client_id="")
        transport = faulty_stack["transport"]
        anonymous.create_gallery_model("p", "demand")
        before = transport.attempts
        faulty_stack["wire_injector"].inject_next("call", FaultKind.DROP)
        with pytest.raises(ServiceError):
            anonymous.upload_model("p", "demand", b"w")
        assert transport.attempts == before + 1
        assert len(faulty_stack["gallery"].instances_of("demand")) == 0

    def test_exhausted_retries_reraise_transport_error(self, faulty_stack):
        client = faulty_stack["client"]
        injector = faulty_stack["wire_injector"]
        client.create_gallery_model("p", "demand")
        for _ in range(4):  # every attempt of a max_attempts=4 policy
            injector.inject_next("call", FaultKind.DROP)
        with pytest.raises(ServiceError):
            client.latest_instance("demand")


class TestTransientServerErrors:
    def test_flaky_store_error_is_retried_transparently(self, faulty_stack):
        client = faulty_stack["client"]
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"weights")
        faulty_stack["store_injector"].inject_next("get_instance", FaultKind.TIMEOUT)
        got = client.get_model_instance(instance["instance_id"])
        assert got["instance_id"] == instance["instance_id"]

    def test_deterministic_errors_are_not_retried(self, faulty_stack):
        client = faulty_stack["client"]
        transport = faulty_stack["transport"]
        before = transport.attempts
        from repro.errors import NotFoundError

        with pytest.raises(NotFoundError):
            client.get_model("no-such-model")
        assert transport.attempts == before + 1

    def test_persistent_store_error_surfaces_after_retry_budget(self, faulty_stack):
        client = faulty_stack["client"]
        injector = faulty_stack["store_injector"]
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"weights")
        for _ in range(4):
            injector.inject_next("get_instance", FaultKind.TIMEOUT)
        # Retries exhausted: the ORIGINAL wire error comes back, typed.
        with pytest.raises(MetadataStoreError, match="injected timeout"):
            client.get_model_instance(instance["instance_id"])


class TestPerMethodRetryBudgets:
    """One retry budget per method class, not one global compromise."""

    def build(self, policies):
        injector = FaultInjector(seed=21, rate=0.0)
        dal = DataAccessLayer(
            InMemoryMetadataStore(), InMemoryBlobStore(), LRUBlobCache(1 << 20)
        )
        gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(2))
        service = GalleryService(gallery, RuleEngine(gallery, clock=ManualClock()))
        faulty = FaultyTransport(InProcessTransport(service), injector)
        transport = RetryingTransport(faulty, policies=policies)
        return GalleryClient(transport), injector, transport, gallery

    @staticmethod
    def budgets(read_attempts=4, blob_attempts=2, mutation_attempts=2):
        sleepless = dict(base_delay=0.0, jitter=0.0, sleep=lambda _s: None)
        return MethodRetryPolicies(
            read=RetryPolicy(max_attempts=read_attempts, **sleepless),
            blob=RetryPolicy(max_attempts=blob_attempts, **sleepless),
            mutation=RetryPolicy(max_attempts=mutation_attempts, **sleepless),
        )

    def test_classification_covers_every_method(self, faulty_stack):
        policies = self.budgets()
        service = faulty_stack["service"]
        for method in service.methods():
            policy = policies.for_method(method)
            if method in BLOB_METHODS:
                assert policy is policies.blob
            elif method in MUTATING_METHODS:
                assert policy is policies.mutation
            else:
                assert policy is policies.read

    def test_upload_model_is_budgeted_as_a_blob_transfer(self):
        policies = self.budgets()
        assert policies.for_method("uploadModel") is policies.blob
        assert policies.for_method("loadModelBlob") is policies.blob
        assert policies.for_method("deprecateModel") is policies.mutation
        assert policies.for_method("modelQuery") is policies.read

    def test_reads_get_the_deep_budget(self):
        client, injector, transport, _ = self.build(self.budgets(read_attempts=4))
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"weights")
        before = transport.attempts
        for _ in range(3):  # three failures still fit a 4-attempt read budget
            injector.inject_next("call", FaultKind.DROP)
        latest = client.latest_instance("demand")
        assert latest["instance_id"] == instance["instance_id"]
        assert transport.attempts == before + 4

    def test_blob_budget_is_shallower_than_read_budget(self):
        client, injector, transport, _ = self.build(
            self.budgets(read_attempts=4, blob_attempts=2)
        )
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"weights")
        before = transport.attempts
        for _ in range(3):  # would fit the read budget, overruns the blob one
            injector.inject_next("call", FaultKind.DROP)
        with pytest.raises(ServiceError):
            client.load_model_blob(instance["instance_id"])
        assert transport.attempts == before + 2

    def test_mutation_budget_still_dedup_safe(self):
        client, injector, transport, gallery = self.build(self.budgets())
        client.create_gallery_model("p", "demand")
        injector.inject_next("call", FaultKind.LOST_RESPONSE)
        client.upload_model("p", "demand", b"v1")
        assert len(gallery.instances_of("demand")) == 1  # replay deduped

    def test_default_budgets_are_ordered_sensibly(self):
        policies = MethodRetryPolicies.default()
        assert policies.read.max_attempts >= policies.blob.max_attempts
        assert policies.blob.deadline > policies.read.deadline

    def test_global_policy_and_per_method_policies_are_exclusive(self):
        with pytest.raises(ValueError):
            RetryingTransport(
                lambda data: data,
                policy=RetryPolicy(),
                policies=MethodRetryPolicies.default(),
            )


class TestCircuitBreaker:
    def build(self, clock):
        injector = FaultInjector(seed=3, rate=0.0)
        dal = DataAccessLayer(
            InMemoryMetadataStore(), InMemoryBlobStore(), LRUBlobCache(1 << 20)
        )
        gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(1))
        service = GalleryService(gallery, RuleEngine(gallery, clock=ManualClock()))
        faulty = FaultyTransport(InProcessTransport(service), injector)
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=10.0, clock=clock)
        transport = RetryingTransport(
            faulty, policy=fast_policy(max_attempts=1), breaker=breaker
        )
        return GalleryClient(transport), injector, breaker

    def test_breaker_opens_after_transport_failures_and_recovers(self):
        clock = FrozenClock()
        client, injector, breaker = self.build(clock)
        for _ in range(2):
            injector.inject_next("call", FaultKind.DROP)
            with pytest.raises(ServiceError):
                client.audit_storage()
        # Circuit open: the next call is rejected without touching the wire.
        with pytest.raises(CircuitOpenError):
            client.audit_storage()
        assert breaker.rejections == 1
        clock.advance(10.0)  # reset timeout elapses -> half-open probe
        assert client.audit_storage()["consistent"]
        assert client.audit_storage()["consistent"]  # closed again

    def test_relayed_store_errors_do_not_trip_the_breaker(self, faulty_stack):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        transport = RetryingTransport(
            FaultyTransport(
                InProcessTransport(faulty_stack["service"]),
                FaultInjector(rate=0.0),
            ),
            policy=fast_policy(max_attempts=1),
            breaker=breaker,
        )
        client = GalleryClient(transport)
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"w")
        faulty_stack["store_injector"].inject_next("get_instance", FaultKind.TIMEOUT)
        with pytest.raises(MetadataStoreError):
            client.get_model_instance(instance["instance_id"])
        # The server answered; only the STORE behind it failed.
        client.audit_storage()  # breaker still closed
