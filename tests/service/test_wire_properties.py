"""Property-based tests for the wire protocol.

Invariants: encode/decode round-trips are the identity for arbitrary
JSON-shaped params; blobs of any bytes round-trip; decoders are total
(value or WireFormatError) over arbitrary byte strings.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import WireFormatError
from repro.service import wire
from repro.service.wire import Request, Response

json_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.text(max_size=20),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)

params = st.dictionaries(st.text(min_size=1, max_size=12), json_values, max_size=5)


@given(st.text(min_size=1, max_size=20), params, st.integers(0, 2**31))
@settings(max_examples=200)
def test_request_round_trip(method, request_params, request_id):
    request = Request(method=method, params=request_params, request_id=request_id)
    assert wire.decode_request(wire.encode_request(request)) == request


@given(json_values, st.integers(0, 2**31))
@settings(max_examples=200)
def test_success_response_round_trip(result, request_id):
    response = Response(ok=True, result=result, request_id=request_id)
    restored = wire.decode_response(wire.encode_response(response))
    assert restored.ok
    assert restored.result == result
    assert restored.request_id == request_id


@given(st.text(max_size=30), st.text(max_size=60))
@settings(max_examples=100)
def test_error_response_round_trip(error_type, message):
    response = Response(ok=False, error_type=error_type, error_message=message)
    restored = wire.decode_response(wire.encode_response(response))
    assert not restored.ok
    assert restored.error_type == error_type
    assert restored.error_message == message


@given(st.binary(max_size=4096))
@settings(max_examples=200)
def test_blob_encoding_round_trip(payload):
    assert wire.decode_blob(wire.encode_blob(payload)) == payload


@given(st.binary(max_size=200))
@settings(max_examples=300)
def test_decoders_total_over_arbitrary_bytes(data):
    for decoder in (wire.decode_request, wire.decode_response):
        try:
            decoder(data)
        except WireFormatError:
            pass
