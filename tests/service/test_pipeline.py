"""Pipelined transport, connection pool, and client pipeline helpers.

The overhauled serving plane allows many requests in flight at once:

* :class:`PipelinedTcpTransport` multiplexes one connection by request_id
  (responses may return in any order) and keeps the serial transport's
  half-open restart semantics on the blocking path;
* :class:`ConnectionPool` hands each concurrent caller its own socket;
* :meth:`GalleryClient.pipeline` batches calls over either, falling back
  to sequential exchanges on a plain transport.
"""

from __future__ import annotations

import threading

import pytest

from repro import build_gallery
from repro.core import ManualClock, SeededIdFactory
from repro.errors import NotFoundError, ServiceError
from repro.service import wire
from repro.service.client import GalleryClient, connect_in_process
from repro.service.server import GalleryService
from repro.service.tcp import (
    ConnectionPool,
    GalleryTcpServer,
    PipelinedTcpTransport,
    ThreadedGalleryTcpServer,
)


def build_service():
    gallery = build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(9))
    return gallery, GalleryService(gallery)


@pytest.fixture
def pipelined_stack():
    gallery, service = build_service()
    server = GalleryTcpServer(service).start()
    host, port = server.address
    transport = PipelinedTcpTransport(host, port, timeout=15.0)
    client = GalleryClient(transport)
    yield gallery, service, server, client, transport
    transport.close()
    server.stop()


class TestBlockingContract:
    def test_full_workflow_blocking_calls(self, pipelined_stack):
        _, _, _, client, _ = pipelined_stack
        client.create_gallery_model("p", "demand", owner="pipe")
        instance = client.upload_model(
            "p", "demand", b"pipelined-bytes", metadata={"model_name": "rf"}
        )
        hits = client.model_query(
            [{"field": "modelName", "operator": "equal", "value": "rf"}]
        )
        assert [h["instance_id"] for h in hits] == [instance["instance_id"]]
        assert client.load_model_blob(instance["instance_id"]) == b"pipelined-bytes"

    def test_errors_cross_the_pipelined_socket(self, pipelined_stack):
        _, _, _, client, _ = pipelined_stack
        with pytest.raises(NotFoundError):
            client.get_model("ghost")

    def test_close_then_reuse_redials(self, pipelined_stack):
        _, _, _, client, transport = pipelined_stack
        client.create_gallery_model("p", "demand")
        transport.close()
        assert client.audit_storage()["consistent"]

    def test_reconnects_after_server_restart(self):
        _, service = build_service()
        server = GalleryTcpServer(service).start()
        host, port = server.address
        transport = PipelinedTcpTransport(host, port, timeout=15.0)
        client = GalleryClient(transport)
        try:
            client.create_gallery_model("p", "demand")
            server.stop()
            server = GalleryTcpServer(service, host=host, port=port).start()
            instance = client.upload_model("p", "demand", b"after-restart")
            assert client.load_model_blob(instance["instance_id"]) == b"after-restart"
        finally:
            transport.close()
            server.stop()

    def test_fresh_connection_failure_surfaces(self):
        _, service = build_service()
        server = GalleryTcpServer(service).start()
        host, port = server.address
        server.stop()
        transport = PipelinedTcpTransport(host, port, timeout=2.0)
        client = GalleryClient(transport)
        with pytest.raises((ServiceError, OSError)):
            client.audit_storage()
        transport.close()


class TestMultiplexing:
    def test_submit_many_resolves_every_handle(self, pipelined_stack):
        _, _, _, client, transport = pipelined_stack
        client.create_gallery_model("p", "demand")
        frames = [
            wire.encode_request(
                wire.Request(
                    method="auditStorage", request_id=100 + i, client_id="mx"
                ),
                wire.DIALECT_BINARY,
            )
            for i in range(32)
        ]
        handles = transport.submit_many(frames)
        for i, handle in enumerate(handles):
            response = wire.decode_response(handle.wait(15.0))
            assert response.ok
            assert response.request_id == 100 + i

    def test_out_of_order_responses_are_correlated(self, pipelined_stack):
        # A cheap query and an expensive blob upload race on one socket;
        # whichever finishes first, each response lands on its own handle.
        _, _, _, client, transport = pipelined_stack
        client.create_gallery_model("p", "demand")
        big = bytes(range(256)) * 4096  # 1 MiB upload: the slow request
        slow = wire.encode_request(
            wire.Request(
                method="uploadModel",
                params={
                    "project": "p",
                    "base_version_id": "demand",
                    "blob": big,
                    "metadata": None,
                    "parent_instance_id": None,
                },
                request_id=7001,
                client_id="mx",
            ),
            wire.DIALECT_BINARY,
        )
        fast = wire.encode_request(
            wire.Request(method="auditStorage", request_id=7002, client_id="mx"),
            wire.DIALECT_BINARY,
        )
        slow_handle = transport.submit(slow)
        fast_handle = transport.submit(fast)
        fast_response = wire.decode_response(fast_handle.wait(15.0))
        slow_response = wire.decode_response(slow_handle.wait(15.0))
        assert fast_response.request_id == 7002 and fast_response.ok
        assert slow_response.request_id == 7001 and slow_response.ok

    def test_many_threads_share_one_pipelined_transport(self, pipelined_stack):
        gallery, _, _, client, _ = pipelined_stack
        client.create_gallery_model("p", "demand")
        errors: list[Exception] = []

        def worker(worker_id: int) -> None:
            try:
                for index in range(8):
                    client.upload_model("p", "demand", f"w{worker_id}-{index}".encode())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert errors == []
        assert len(gallery.instances_of("demand")) == 48


class TestConnectionPool:
    def test_pooled_concurrent_writers(self):
        gallery, service = build_service()
        with GalleryTcpServer(service) as server:
            host, port = server.address
            pool = ConnectionPool(host, port, size=4)
            client = GalleryClient(pool)
            client.create_gallery_model("p", "demand")
            errors: list[Exception] = []

            def worker(worker_id: int) -> None:
                try:
                    for index in range(6):
                        client.upload_model(
                            "p", "demand", f"p{worker_id}-{index}".encode()
                        )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert errors == []
            assert len(gallery.instances_of("demand")) == 48
            assert pool.dials <= pool.size  # connections were reused
            pool.close()

    def test_factory_hook_wraps_every_pooled_transport(self):
        _, service = build_service()
        with GalleryTcpServer(service) as server:
            host, port = server.address
            built = []

            def factory():
                from repro.service.tcp import TcpTransport

                transport = TcpTransport(host, port)
                built.append(transport)
                return transport

            pool = ConnectionPool(host, port, size=2, transport_factory=factory)
            client = GalleryClient(pool)
            client.create_gallery_model("p", "demand")
            assert len(built) == 1  # lazily dialed, one caller -> one transport
            pool.close()

    def test_failed_transport_is_recycled_not_reused(self):
        _, service = build_service()
        server = GalleryTcpServer(service).start()
        host, port = server.address
        pool = ConnectionPool(host, port, size=1, timeout=2.0)
        client = GalleryClient(pool)
        client.create_gallery_model("p", "demand")
        server.stop()
        with pytest.raises((ServiceError, OSError)):
            client.audit_storage()
        # The dead transport was dropped; a fresh server on the same port
        # is reachable through the same pool.
        server = GalleryTcpServer(service, host=host, port=port).start()
        try:
            assert client.audit_storage()["consistent"]
            assert pool.dials >= 2
        finally:
            pool.close()
            server.stop()

    def test_rejects_silly_sizes(self):
        with pytest.raises(ValueError):
            ConnectionPool("127.0.0.1", 1, size=0)


class TestClientPipeline:
    def test_pipeline_over_pipelined_transport(self, pipelined_stack):
        _, _, _, client, _ = pipelined_stack
        client.create_gallery_model("p", "demand")
        uploaded = [
            client.upload_model("p", "demand", f"blob-{i}".encode()) for i in range(4)
        ]
        with client.pipeline() as pipe:
            query = pipe.model_query([])
            blobs = [pipe.load_model_blob(u["instance_id"]) for u in uploaded]
            missing = pipe.get_model("ghost")
        assert len(query.result()) == 4
        for i, handle in enumerate(blobs):
            assert handle.result() == f"blob-{i}".encode()
        # One failed call parks its error without poisoning the batch.
        with pytest.raises(NotFoundError):
            missing.result()

    def test_pipeline_falls_back_on_plain_transport(self):
        _, service = build_service()
        client = connect_in_process(service)
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"plain")
        with client.pipeline() as pipe:
            blob = pipe.load_model_blob(instance["instance_id"])
            latest = pipe.latest_instance("demand")
        assert blob.result() == b"plain"
        assert latest.result()["instance_id"] == instance["instance_id"]

    def test_unflushed_handle_is_a_programming_error(self):
        _, service = build_service()
        client = connect_in_process(service)
        pipe = client.pipeline()
        handle = pipe.call("auditStorage")
        assert not handle.done()
        with pytest.raises(RuntimeError, match="not flushed"):
            handle.result()
        pipe.flush()
        assert handle.result()["consistent"]

    def test_exception_inside_with_block_skips_flush(self):
        _, service = build_service()
        client = connect_in_process(service)
        with pytest.raises(ValueError):
            with client.pipeline() as pipe:
                pipe.call("auditStorage")
                raise ValueError("caller bug")
        # The queued call was never sent; its handle stays unresolved.

    def test_batch_helpers(self, pipelined_stack):
        _, _, _, client, _ = pipelined_stack
        client.create_gallery_model("p", "demand")
        instances = [
            client.upload_model(
                "p", "demand", f"b{i}".encode(), metadata={"model_name": "rf"}
            )
            for i in range(3)
        ]
        ids = [i["instance_id"] for i in instances]

        blobs = client.load_model_blobs(ids)
        assert blobs == {ids[i]: f"b{i}".encode() for i in range(3)}

        metrics = client.insert_metrics_many(
            {ids[0]: {"bias": 0.1, "rmse": 2.0}, ids[1]: {"bias": 0.2}}
        )
        assert len(metrics[ids[0]]) == 2
        assert len(metrics[ids[1]]) == 1

        results = client.model_query_many(
            [
                [{"field": "modelName", "operator": "equal", "value": "rf"}],
                [{"field": "modelName", "operator": "equal", "value": "absent"}],
            ]
        )
        assert len(results[0]) == 3
        assert results[1] == []


class TestAgainstLegacyServer:
    """The new transports interoperate with the threaded baseline server."""

    def test_pipelined_transport_against_threaded_server(self):
        gallery, service = build_service()
        with ThreadedGalleryTcpServer(service) as server:
            host, port = server.address
            with PipelinedTcpTransport(host, port, timeout=15.0) as transport:
                client = GalleryClient(transport)
                client.create_gallery_model("p", "demand")
                instance = client.upload_model("p", "demand", b"legacy-server")
                assert client.load_model_blob(instance["instance_id"]) == b"legacy-server"
        assert len(gallery.instances_of("demand")) == 1
