"""Tests for the replicated serving plane: EndpointSet, FailoverTransport,
and the ``connect()`` front door.

The routing tests run against scripted in-memory transports so they are
deterministic and fast; one regression test at the bottom drives a real
:class:`GalleryTcpServer` to prove ``GalleryClient.close()`` releases every
socket the failover stack opened (satellite: the close() leak fix).
"""

import os
import time

import pytest

from repro.errors import (
    CircuitOpenError,
    MetadataStoreError,
    ServiceError,
    ValidationError,
)
from repro.reliability import RetryPolicy
from repro.service import connect
from repro.service import wire
from repro.service.client import MethodRetryPolicies
from repro.service.endpoints import Endpoint, EndpointSet, FailoverTransport


def fast_policies(attempts=4):
    """Zero-delay retry budget so routing tests never sleep."""
    policy = RetryPolicy(
        max_attempts=attempts, base_delay=0.0, max_delay=0.0, jitter=0.0
    )
    return MethodRetryPolicies(read=policy, blob=policy, mutation=policy)


def read_frame(request_id=1):
    """An idempotent request (always retryable)."""
    return wire.encode_request(
        wire.Request(method="getModel", params={"model_id": "m"},
                     request_id=request_id, client_id="test-client")
    )


def mutation_frame(request_id=1, client_id="test-client"):
    return wire.encode_request(
        wire.Request(method="uploadModel", params={},
                     request_id=request_id, client_id=client_id)
    )


def ok_frame(result="ok", request_id=1):
    return wire.encode_response(
        wire.Response(ok=True, result=result, request_id=request_id)
    )


def error_frame(error_type, request_id=1):
    return wire.encode_response(
        wire.Response(ok=False, error_type=error_type,
                      error_message="injected", request_id=request_id)
    )


class ScriptedTransport:
    """A fake endpoint transport driven by a ``script(data)`` callable."""

    def __init__(self, address, script):
        self.address = address
        self.script = script
        self.calls = []
        self.closed = 0

    def __call__(self, data):
        self.calls.append(data)
        return self.script(data)

    def close(self):
        self.closed += 1


class Fleet:
    """Builds ScriptedTransports per endpoint and remembers every dial."""

    def __init__(self, scripts):
        #: address -> script callable
        self.scripts = scripts
        #: address -> every transport ever dialed to it
        self.dialed = {address: [] for address in scripts}

    def factory(self, endpoint):
        transport = ScriptedTransport(
            endpoint.address, self.scripts[endpoint.address]
        )
        self.dialed[endpoint.address].append(transport)
        return transport

    def calls(self, address):
        return sum(len(t.calls) for t in self.dialed[address])


def two_endpoints():
    return (Endpoint("a", 1), Endpoint("b", 2))


class TestEndpointParsing:
    def test_basic_url_preserves_order_and_defaults(self):
        es = EndpointSet.parse("gallery://10.0.0.1:9000,10.0.0.2:9001")
        assert [e.address for e in es.endpoints] == [
            "10.0.0.1:9000", "10.0.0.2:9001",
        ]
        assert len(es) == 2
        assert es.dialect == wire.DIALECT_BINARY
        assert es.timeout == 10.0
        assert es.transport == "pipelined"

    def test_query_parameters(self):
        es = EndpointSet.parse(
            "gallery://h:1?dialect=json&timeout=2.5&transport=serial"
        )
        assert es.dialect == wire.DIALECT_JSON
        assert es.timeout == 2.5
        assert es.transport == "serial"
        assert es.lane == wire.LANE_INTERACTIVE  # the default

    def test_lane_query_parameter(self):
        es = EndpointSet.parse("gallery://h:1?lane=bulk")
        assert es.lane == wire.LANE_BULK
        with pytest.raises(ValidationError):
            EndpointSet.parse("gallery://h:1?lane=express")

    def test_single_endpoint_is_fine(self):
        es = EndpointSet.parse("gallery://localhost:9000")
        assert es.endpoints == (Endpoint("localhost", 9000),)
        assert es.endpoints[0].address == "localhost:9000"

    @pytest.mark.parametrize(
        "url",
        [
            "http://h:1",                      # wrong scheme
            "h:1,h:2",                         # no scheme at all
            "gallery://",                      # empty netloc
            "gallery://h:1,",                  # trailing empty endpoint
            "gallery://hostonly",              # missing port
            "gallery://:9000",                 # missing host
            "gallery://h:abc",                 # non-numeric port
            "gallery://h:0",                   # port out of range (low)
            "gallery://h:70000",               # port out of range (high)
            "gallery://h:1,h:1",               # duplicate endpoint
            "gallery://h:1?bogus=1",           # unknown query parameter
            "gallery://h:1?dialect=msgpack",   # unknown dialect
            "gallery://h:1?timeout=soon",      # non-numeric timeout
            "gallery://h:1?timeout=0",         # non-positive timeout
            "gallery://h:1?transport=carrier-pigeon",
        ],
    )
    def test_malformed_urls_are_rejected(self, url):
        with pytest.raises(ValidationError):
            EndpointSet.parse(url)

    def test_empty_endpoint_set_is_rejected(self):
        with pytest.raises(ValidationError):
            EndpointSet(endpoints=())


class TestRouting:
    def test_round_robin_spreads_reads(self):
        fleet = Fleet({"a:1": lambda d: ok_frame("from-a"),
                       "b:2": lambda d: ok_frame("from-b")})
        transport = FailoverTransport(
            EndpointSet(endpoints=two_endpoints(), routing="roundrobin"),
            policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        for _ in range(4):
            transport(read_frame())
        assert fleet.calls("a:1") == 2
        assert fleet.calls("b:2") == 2

    def test_mid_call_failover_on_transport_error(self):
        boom = {"armed": True}

        def flaky(data):
            if boom["armed"]:
                boom["armed"] = False
                raise ConnectionResetError("replica died mid-call")
            return ok_frame("from-a")

        fleet = Fleet({"a:1": flaky, "b:2": lambda d: ok_frame("from-b")})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        raw = transport(read_frame())
        assert wire.decode_response(raw).result == "from-b"
        assert transport.failovers == 1
        # the broken connection was dropped; the next dial is fresh
        assert fleet.dialed["a:1"][0].closed == 1

    def test_breaker_opens_and_dead_endpoint_is_skipped(self):
        def dead(data):
            raise ConnectionRefusedError("nobody home")

        fleet = Fleet({"a:1": dead, "b:2": lambda d: ok_frame("from-b")})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory,
            failure_threshold=2, reset_timeout=60.0,
            sleep=lambda s: None,
        )
        for _ in range(6):
            transport(read_frame())
        assert transport.breaker_states()["a:1"] == "open"
        dials_after_trip = fleet.calls("a:1")
        for _ in range(6):
            transport(read_frame())
        # the open breaker keeps the dead replica out of the rotation
        assert fleet.calls("a:1") == dials_after_trip
        assert fleet.calls("b:2") >= 6

    def test_recovered_endpoint_rejoins_via_half_open_probe(self):
        state = {"healthy": False}

        def flapping(data):
            if not state["healthy"]:
                raise ConnectionRefusedError("down")
            return ok_frame("from-a")

        fleet = Fleet({"a:1": flapping, "b:2": lambda d: ok_frame("from-b")})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory,
            failure_threshold=2, reset_timeout=0.05,
            sleep=lambda s: None,
        )
        for _ in range(4):
            transport(read_frame())
        assert transport.breaker_states()["a:1"] == "open"
        state["healthy"] = True
        time.sleep(0.06)  # breaker decays to half-open
        for _ in range(4):
            transport(read_frame())
        assert transport.breaker_states()["a:1"] == "closed"
        assert fleet.calls("a:1") >= 3  # back in the rotation

    def test_all_endpoints_dead_raises_service_error(self):
        def dead(data):
            raise ConnectionRefusedError("nobody home")

        fleet = Fleet({"a:1": dead, "b:2": dead})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(attempts=3),
            transport_factory=fleet.factory,
            failure_threshold=10, sleep=lambda s: None,
        )
        with pytest.raises(ServiceError):
            transport(read_frame())
        assert transport.attempts == 3  # one retry budget, not one per replica

    def test_all_breakers_open_raises_circuit_open(self):
        def dead(data):
            raise ConnectionRefusedError("nobody home")

        fleet = Fleet({"a:1": dead, "b:2": dead})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(attempts=3),
            transport_factory=fleet.factory,
            failure_threshold=1, reset_timeout=60.0,
            sleep=lambda s: None,
        )
        # First call trips both breakers (one failed attempt each), finds
        # every circuit open on its third attempt, and surfaces that.
        with pytest.raises(CircuitOpenError):
            transport(read_frame())
        with pytest.raises(CircuitOpenError):
            transport(read_frame())
        # the breakers shielded the dead replicas from the second call
        assert fleet.calls("a:1") + fleet.calls("b:2") == 2

    def test_transient_server_error_retries_without_breaker_penalty(self):
        hiccups = {"left": 2}

        def flaky_store(data):
            if hiccups["left"]:
                hiccups["left"] -= 1
                return error_frame("MetadataStoreError")
            return ok_frame("recovered")

        fleet = Fleet({"a:1": flaky_store, "b:2": flaky_store})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        raw = transport(read_frame())
        assert wire.decode_response(raw).result == "recovered"
        assert transport.failovers == 0
        assert set(transport.breaker_states().values()) == {"closed"}

    def test_exhausted_transient_retries_surface_the_server_error(self):
        fleet = Fleet({"a:1": lambda d: error_frame("MetadataStoreError"),
                       "b:2": lambda d: error_frame("MetadataStoreError")})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(attempts=2),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        raw = transport(read_frame())
        response = wire.decode_response(raw)
        assert not response.ok
        with pytest.raises(MetadataStoreError):
            response.raise_if_error()

    def test_deterministic_errors_are_not_retried(self):
        fleet = Fleet({"a:1": lambda d: error_frame("NotFoundError"),
                       "b:2": lambda d: error_frame("NotFoundError")})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        raw = transport(read_frame())
        assert wire.decode_response(raw).error_type == "NotFoundError"
        assert transport.attempts == 1

    def test_mutation_without_client_id_is_single_shot(self):
        def dead(data):
            raise ConnectionRefusedError("nobody home")

        fleet = Fleet({"a:1": dead, "b:2": dead})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        with pytest.raises(ServiceError):
            transport(mutation_frame(client_id=""))
        assert transport.attempts == 1  # replay without dedup is unsafe

    def test_mutation_with_client_id_fails_over(self):
        def dead(data):
            raise ConnectionRefusedError("nobody home")

        fleet = Fleet({"a:1": dead, "b:2": lambda d: ok_frame("landed")})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        # The mutation must still land even when the rotation hands it the
        # dead replica first (the shared dedup table makes the replay safe,
        # so _can_retry admits it).
        results = [wire.decode_response(transport(mutation_frame())).result
                   for _ in range(2)]
        assert results == ["landed", "landed"]
        assert transport.failovers >= 1

    def test_opaque_frame_is_single_shot(self):
        def dead(data):
            raise ConnectionRefusedError("nobody home")

        fleet = Fleet({"a:1": dead, "b:2": dead})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        with pytest.raises(ServiceError):
            transport(b"\x00\x00\x00\x00\x00\x00\x00\x02ok")
        assert transport.attempts == 1

    def test_close_closes_every_endpoint(self):
        fleet = Fleet({"a:1": lambda d: ok_frame(), "b:2": lambda d: ok_frame()})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        transport(read_frame())
        transport(read_frame())
        transport.close()
        for dials in fleet.dialed.values():
            assert all(t.closed for t in dials)

    def test_context_manager_closes(self):
        fleet = Fleet({"a:1": lambda d: ok_frame(), "b:2": lambda d: ok_frame()})
        with FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        ) as transport:
            transport(read_frame())
        assert all(t.closed for t in fleet.dialed["a:1"] + fleet.dialed["b:2"])


class TestSubmitMany:
    def test_serial_transports_degrade_to_sequential_calls(self):
        fleet = Fleet({"a:1": lambda d: ok_frame("a"),
                       "b:2": lambda d: ok_frame("b")})
        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=fleet.factory, sleep=lambda s: None,
        )
        exchanges = transport.submit_many([read_frame(i) for i in range(1, 4)])
        assert len(exchanges) == 3
        for exchange in exchanges:
            assert exchange.done()
            assert wire.decode_response(exchange.wait()).ok

    def test_pipelined_submission_fails_over(self):
        class PipelinedFake(ScriptedTransport):
            def submit_many(self, frames):
                return [self.script(frame) for frame in frames]

        def dead(data):
            raise ConnectionResetError("gone")

        dialed = {}

        def factory(endpoint):
            script = dead if endpoint.address == "a:1" else (
                lambda d: ok_frame("batched")
            )
            transport = PipelinedFake(endpoint.address, script)
            dialed.setdefault(endpoint.address, []).append(transport)
            return transport

        transport = FailoverTransport(
            two_endpoints(), policies=fast_policies(),
            transport_factory=factory, sleep=lambda s: None,
        )
        frames = [read_frame(i) for i in range(1, 3)]
        # Whichever replica the rotation picks first, the batch lands on a
        # healthy one within a single submit_many call.
        for _ in range(2):
            results = transport.submit_many(frames)
            assert len(results) == 2
        assert transport.failovers >= 1
        assert transport.submit_many([]) == []


class TestSubmitManySpread:
    """PR 5: ``submit_many`` shards one batch across every healthy replica."""

    @staticmethod
    def _echo(address):
        """Script replying with ``"<address>#<request_id>"``."""
        def script(data):
            request = wire.decode_request(data)
            return ok_frame(f"{address}#{request.request_id}",
                            request.request_id)
        return script

    def _pipelined_fleet(self, scripts):
        class FakeExchange:
            def __init__(self, frame):
                self._frame = frame

            def wait(self, timeout=None):
                return self._frame

            def done(self):
                return True

        class PipelinedFake(ScriptedTransport):
            def submit_many(self, frames):
                # Like the real pipelined transport: the whole batch is on
                # the wire before any handle resolves, and a send failure
                # raises out of submit_many itself.
                return [FakeExchange(self(frame)) for frame in frames]

        dialed = {address: [] for address in scripts}

        def factory(endpoint):
            transport = PipelinedFake(
                endpoint.address, scripts[endpoint.address]
            )
            dialed[endpoint.address].append(transport)
            return transport

        def calls(address):
            return sum(len(t.calls) for t in dialed[address])

        return factory, calls

    def three_endpoints(self):
        return (Endpoint("a", 1), Endpoint("b", 2), Endpoint("c", 3))

    def test_batch_spreads_over_all_replicas_and_reknits_in_order(self):
        endpoints = self.three_endpoints()
        factory, calls = self._pipelined_fleet(
            {e.address: self._echo(e.address) for e in endpoints}
        )
        transport = FailoverTransport(
            endpoints, policies=fast_policies(),
            transport_factory=factory, sleep=lambda s: None,
        )
        frames = [read_frame(i) for i in range(1, 10)]
        exchanges = transport.submit_many(frames)
        results = [wire.decode_response(x.wait()).result for x in exchanges]
        # Responses come back re-knit in request order even though shards
        # landed on three different replicas...
        assert [int(r.split("#")[1]) for r in results] == list(range(1, 10))
        # ...and each replica really served a share of the batch.
        for endpoint in endpoints:
            assert calls(endpoint.address) == 3

    def test_spread_batches_false_pins_batch_to_one_replica(self):
        endpoints = self.three_endpoints()
        factory, calls = self._pipelined_fleet(
            {e.address: self._echo(e.address) for e in endpoints}
        )
        transport = FailoverTransport(
            endpoints, policies=fast_policies(),
            transport_factory=factory, sleep=lambda s: None,
            spread_batches=False,
        )
        exchanges = transport.submit_many([read_frame(i) for i in range(1, 7)])
        served = {
            wire.decode_response(x.wait()).result.split("#")[0]
            for x in exchanges
        }
        assert len(served) == 1  # whole batch pinned to a single replica
        used = sum(1 for e in endpoints if calls(e.address) > 0)
        assert used == 1

    def test_dead_replica_shard_fails_over_and_order_survives(self):
        endpoints = self.three_endpoints()

        def dead(data):
            raise ConnectionResetError("replica b is gone")

        factory, calls = self._pipelined_fleet({
            "a:1": self._echo("a:1"),
            "b:2": dead,
            "c:3": self._echo("c:3"),
        })
        transport = FailoverTransport(
            endpoints, policies=fast_policies(),
            transport_factory=factory, sleep=lambda s: None,
        )
        frames = [read_frame(i) for i in range(1, 10)]
        exchanges = transport.submit_many(frames)
        results = [wire.decode_response(x.wait()).result for x in exchanges]
        # Every request answered by a healthy replica, still in order.
        assert [int(r.split("#")[1]) for r in results] == list(range(1, 10))
        assert all(r.split("#")[0] in {"a:1", "c:3"} for r in results)
        assert transport.failovers >= 1

    def test_open_breaker_excludes_replica_from_the_spread(self):
        endpoints = self.three_endpoints()

        def dead(data):
            raise ConnectionResetError("down")

        factory, calls = self._pipelined_fleet({
            "a:1": self._echo("a:1"),
            "b:2": dead,
            "c:3": self._echo("c:3"),
        })
        transport = FailoverTransport(
            endpoints, policies=fast_policies(),
            transport_factory=factory, sleep=lambda s: None,
        )
        # Trip b's breaker with repeated single-shot failures.
        for i in range(20, 30):
            wire.decode_response(transport(read_frame(i)))
        b_calls_before = calls("b:2")
        exchanges = transport.submit_many([read_frame(i) for i in range(1, 7)])
        assert all(wire.decode_response(x.wait()).ok for x in exchanges)
        # The open breaker kept b out of the batch entirely.
        assert calls("b:2") == b_calls_before

    def test_small_batch_admits_at_most_one_probe_per_frame(self):
        # A 1-frame batch must not consume half-open probes on replicas it
        # will never use (that would wedge their breakers).
        endpoints = self.three_endpoints()
        factory, calls = self._pipelined_fleet(
            {e.address: self._echo(e.address) for e in endpoints}
        )
        transport = FailoverTransport(
            endpoints, policies=fast_policies(),
            transport_factory=factory, sleep=lambda s: None,
        )
        exchanges = transport.submit_many([read_frame(1)])
        assert wire.decode_response(exchanges[0].wait()).ok
        used = sum(1 for e in endpoints if calls(e.address) > 0)
        assert used == 1


class TestConnect:
    def test_connect_returns_a_working_client(self):
        fleet = Fleet({"a:1": lambda d: ok_frame({"model_id": "m"}),
                       "b:2": lambda d: ok_frame({"model_id": "m"})})
        client = connect(
            "gallery://a:1,b:2",
            client_id="conn-test",
            policies=fast_policies(),
            transport_factory=fleet.factory,
        )
        assert client.client_id == "conn-test"
        assert client.call("getModel", model_id="m") == {"model_id": "m"}
        client.close()

    def test_connect_honours_url_dialect(self):
        fleet = Fleet({"a:1": lambda d: ok_frame()})
        client = connect(
            "gallery://a:1?dialect=json",
            policies=fast_policies(),
            transport_factory=fleet.factory,
        )
        assert client.dialect == wire.DIALECT_JSON
        client.call("getModel", model_id="m")
        # the frame actually left in the JSON dialect
        sent = fleet.dialed["a:1"][0].calls[0]
        assert wire.decode_request(sent).dialect == wire.DIALECT_JSON

    def test_connect_rejects_bad_urls(self):
        with pytest.raises(ValidationError):
            connect("https://a:1")


def open_fds():
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="needs /proc (Linux only)"
)
def test_client_close_releases_every_socket(tmp_path):
    """Regression: ``connect()`` + pipeline use must not leak sockets.

    Before the fix :class:`GalleryClient` had no ``close()`` at all — the
    failover transport's per-endpoint connections (and the pipelined
    reader threads' sockets) lived until interpreter exit.
    """
    from repro.core.clock import ManualClock
    from repro.core.ids import SeededIdFactory
    from repro.core.registry import Gallery
    from repro.service.server import GalleryService
    from repro.service.tcp import GalleryTcpServer
    from repro.store.blob import FilesystemBlobStore
    from repro.store.cache import LRUBlobCache
    from repro.store.dal import DataAccessLayer
    from repro.store.metadata_store import InMemoryMetadataStore

    dal = DataAccessLayer(
        InMemoryMetadataStore(), FilesystemBlobStore(tmp_path), LRUBlobCache(4)
    )
    gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(3))
    server = GalleryTcpServer(GalleryService(gallery)).start()
    host, port = server.address
    try:
        baseline = open_fds()
        client = connect(f"gallery://{host}:{port}", client_id="leak-probe")
        client.create_gallery_model("p", "demand")
        client.upload_model("p", "demand", b"w1", metadata={"tag": "one"})
        with client.pipeline() as pipeline:
            handle = pipeline.call("instancesOf", base_version_id="demand")
        assert len(handle.result()) == 1
        assert open_fds() > baseline  # the stack really opened sockets
        client.close()
        # The server side reaps its half on EOF; poll briefly for both
        # halves to disappear.
        deadline = time.monotonic() + 5.0
        while open_fds() > baseline and time.monotonic() < deadline:
            time.sleep(0.02)
        assert open_fds() <= baseline, "client.close() leaked sockets"
        # the client dials fresh and keeps working after close()
        assert len(client.call("instancesOf", base_version_id="demand")) == 1
        client.close()
    finally:
        server.stop()


# ---------------------------------------------------------------------------
# load-aware routing (EWMA + power of two choices)
# ---------------------------------------------------------------------------


class TickingClock:
    """A manual clock the fake transports advance by their 'latency'."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def latency_script(clock, latency, result="ok"):
    def script(data):
        clock.advance(latency)
        return ok_frame(result)
    return script


def three_endpoints():
    return (Endpoint("a", 1), Endpoint("b", 2), Endpoint("c", 3))


class TestLoadAwareRouting:
    def build(self, clock, fleet, routing=None):
        endpoint_set = (
            EndpointSet(endpoints=three_endpoints())
            if routing is None
            else EndpointSet(endpoints=three_endpoints(), routing=routing)
        )
        return FailoverTransport(
            endpoint_set,
            policies=fast_policies(),
            transport_factory=fleet.factory,
            sleep=lambda s: None,
            clock=clock,
        )

    def test_default_routing_is_p2c(self):
        clock = TickingClock()
        fleet = Fleet({a: latency_script(clock, 0.001)
                       for a in ("a:1", "b:2", "c:3")})
        assert self.build(clock, fleet).routing == "p2c"

    def test_p2c_sends_slow_replica_under_quarter_of_reads(self):
        """Acceptance criterion: a +10ms replica in a 3-replica fleet gets
        < 25% of reads under the EWMA/P2C router."""
        clock = TickingClock()
        fleet = Fleet({
            "a:1": latency_script(clock, 0.012),  # the slow one
            "b:2": latency_script(clock, 0.002),
            "c:3": latency_script(clock, 0.002),
        })
        transport = self.build(clock, fleet)
        total = 300
        for n in range(total):
            transport(read_frame(request_id=n + 1))
        assert fleet.calls("a:1") + fleet.calls("b:2") + fleet.calls("c:3") == total
        assert fleet.calls("a:1") < total * 0.25, (
            f"slow replica got {fleet.calls('a:1')}/{total} reads"
        )
        # the fast replicas carry the traffic (and both participate)
        assert fleet.calls("b:2") > 50 and fleet.calls("c:3") > 50

    def test_roundrobin_baseline_stays_selectable_and_blind(self):
        clock = TickingClock()
        fleet = Fleet({
            "a:1": latency_script(clock, 0.012),
            "b:2": latency_script(clock, 0.002),
            "c:3": latency_script(clock, 0.002),
        })
        transport = self.build(clock, fleet, routing="roundrobin")
        for n in range(300):
            transport(read_frame(request_id=n + 1))
        # blind rotation: the slow replica gets its full third
        assert fleet.calls("a:1") == 100

    def test_fresh_replica_is_probed_not_starved(self):
        clock = TickingClock()
        fleet = Fleet({
            "a:1": latency_script(clock, 0.005),
            "b:2": latency_script(clock, 0.005),
            "c:3": latency_script(clock, 0.001),
        })
        transport = self.build(clock, fleet)
        for n in range(10):
            transport(read_frame(request_id=n + 1))
        # c joins late (unmeasured => score 0 => most attractive)
        transport.update_endpoints(three_endpoints())
        before = fleet.calls("c:3")
        for n in range(10):
            transport(read_frame(request_id=100 + n))
        assert fleet.calls("c:3") > before

    def test_in_flight_depth_inflates_score(self):
        clock = TickingClock()
        fleet = Fleet({a: latency_script(clock, 0.004)
                       for a in ("a:1", "b:2", "c:3")})
        transport = self.build(clock, fleet)
        for n in range(6):
            transport(read_frame(request_id=n + 1))
        states = {s.endpoint.address: s
                  for s in transport._states}  # noqa: SLF001 - test probe
        idle_score = states["a:1"].score()
        states["a:1"].begin()
        try:
            assert states["a:1"].score() == pytest.approx(idle_score * 2)
        finally:
            states["a:1"].end()


# ---------------------------------------------------------------------------
# graceful drain routing
# ---------------------------------------------------------------------------


class TestDrainRouting:
    def build(self, fleet, attempts=4, drain_ttl=3.0, clock=time.monotonic):
        return FailoverTransport(
            EndpointSet(endpoints=two_endpoints(), routing="roundrobin"),
            policies=fast_policies(attempts),
            transport_factory=fleet.factory,
            sleep=lambda s: None,
            drain_ttl=drain_ttl,
            clock=clock,
        )

    def test_draining_replica_rerouted_without_breaker_penalty(self):
        fleet = Fleet({
            "a:1": lambda d: error_frame("ReplicaDrainingError"),
            "b:2": lambda d: ok_frame("from-b"),
        })
        transport = self.build(fleet)
        raw = transport(read_frame())
        assert wire.decode_response(raw).result == "from-b"
        assert transport.drain_reroutes == 1
        assert transport.failovers == 0  # a drain is not a failure
        # satellite fix: the drained replica's breaker stays closed
        assert transport.breaker_states()["a:1"] == "closed"
        # ...and the drain mark keeps it out of subsequent picks entirely
        before = fleet.calls("a:1")
        for n in range(4):
            transport(read_frame(request_id=10 + n))
        assert fleet.calls("a:1") == before

    def test_drain_reroute_is_free_of_retry_budget(self):
        # max_attempts=1: a transport failure would exhaust the budget,
        # but a drain rejection re-routes without charging an attempt.
        fleet = Fleet({
            "a:1": lambda d: error_frame("ReplicaDrainingError"),
            "b:2": lambda d: ok_frame("from-b"),
        })
        transport = self.build(fleet, attempts=1)
        raw = transport(read_frame())
        assert wire.decode_response(raw).result == "from-b"

    def test_drain_reroutes_mutation_without_client_id(self):
        # Never executed server-side => safe to re-send anywhere, even a
        # mutation that carries no dedup identity.
        fleet = Fleet({
            "a:1": lambda d: error_frame("ReplicaDrainingError"),
            "b:2": lambda d: ok_frame("landed"),
        })
        transport = self.build(fleet)
        raw = transport(mutation_frame(client_id=""))
        assert wire.decode_response(raw).result == "landed"

    def test_whole_fleet_draining_surfaces_typed_error(self):
        from repro.errors import ReplicaDrainingError

        fleet = Fleet({
            "a:1": lambda d: error_frame("ReplicaDrainingError"),
            "b:2": lambda d: error_frame("ReplicaDrainingError"),
        })
        transport = self.build(fleet)
        response = wire.decode_response(transport(read_frame()))
        with pytest.raises(ReplicaDrainingError):
            response.raise_if_error()

    def test_drain_mark_expires_and_replica_rejoins(self):
        clock = TickingClock()
        a_state = {"draining": True, "calls": 0}

        def a_script(data):
            a_state["calls"] += 1
            if a_state["draining"]:
                return error_frame("ReplicaDrainingError")
            return ok_frame("from-a")

        fleet = Fleet({"a:1": a_script, "b:2": lambda d: ok_frame("from-b")})
        transport = self.build(fleet, drain_ttl=3.0, clock=clock)
        transport(read_frame())  # a answers draining; call lands on b
        dialed_while_draining = a_state["calls"]
        transport(read_frame(request_id=2))  # still inside the TTL
        assert a_state["calls"] == dialed_while_draining
        # the operator undrains; the TTL expires; a is re-probed
        a_state["draining"] = False
        clock.advance(3.1)
        for n in range(4):
            transport(read_frame(request_id=10 + n))
        assert a_state["calls"] > dialed_while_draining

    def test_drain_end_to_end_over_real_services(self):
        from repro.core.registry import Gallery
        from repro.service.client import GalleryClient
        from repro.service.server import GalleryService
        from repro.store.blob import InMemoryBlobStore
        from repro.store.dal import DataAccessLayer
        from repro.store.metadata_store import InMemoryMetadataStore

        gallery = Gallery(
            DataAccessLayer(InMemoryMetadataStore(), InMemoryBlobStore())
        )
        svc_a, svc_b = GalleryService(gallery), GalleryService(gallery)
        fleet = Fleet({"a:1": svc_a.handle_frame, "b:2": svc_b.handle_frame})
        transport = self.build(fleet)
        client = GalleryClient(transport, client_id="drain-e2e")
        client.create_gallery_model("p", "m")
        svc_a.drain()
        # zero client-visible errors while one replica drains
        for n in range(6):
            client.upload_model("p", "m", b"w%d" % n, metadata={"n": n})
        assert len(client.call("instancesOf", base_version_id="m")) == 6
        assert transport.drain_reroutes >= 1
        assert svc_a.draining and not svc_b.draining
        assert client.fleet_status()["status"] in ("serving", "draining")


# ---------------------------------------------------------------------------
# QoS rate-limit routing
# ---------------------------------------------------------------------------


def rate_limited_frame(retry_after=0.05, request_id=1):
    return wire.encode_response(
        wire.Response(
            ok=False,
            error_type="RateLimitedError",
            error_message=(
                "tenant over rate limit: request was not executed;"
                f" retry_after={retry_after:.3f}s"
            ),
            request_id=request_id,
        )
    )


class TestRateLimitRouting:
    """RateLimitedError is a routing signal like ReplicaDrainingError:
    reroute elsewhere, no breaker penalty, no retry-budget burn."""

    def build(self, fleet, attempts=4, sleeps=None):
        return FailoverTransport(
            EndpointSet(endpoints=two_endpoints(), routing="roundrobin"),
            policies=fast_policies(attempts),
            transport_factory=fleet.factory,
            sleep=(sleeps.append if sleeps is not None else lambda s: None),
        )

    def test_rate_limited_replica_rerouted_without_breaker_penalty(self):
        fleet = Fleet({
            "a:1": lambda d: rate_limited_frame(),
            "b:2": lambda d: ok_frame("from-b"),
        })
        transport = self.build(fleet)
        raw = transport(read_frame())
        assert wire.decode_response(raw).result == "from-b"
        assert transport.rate_limit_reroutes == 1
        assert transport.failovers == 0  # a refusal is not a failure
        assert transport.breaker_states()["a:1"] == "closed"

    def test_rate_limit_reroute_is_free_of_retry_budget(self):
        fleet = Fleet({
            "a:1": lambda d: rate_limited_frame(),
            "b:2": lambda d: ok_frame("from-b"),
        })
        transport = self.build(fleet, attempts=1)
        raw = transport(read_frame())
        assert wire.decode_response(raw).result == "from-b"

    def test_limited_replica_stays_in_rotation_for_next_call(self):
        # Unlike a drain there is no TTL exile: buckets refill in
        # milliseconds, so the endpoint is only skipped within the call.
        state = {"limited": True}

        def a_script(data):
            if state["limited"]:
                return rate_limited_frame()
            return ok_frame("from-a")

        fleet = Fleet({"a:1": a_script, "b:2": lambda d: ok_frame("from-b")})
        transport = self.build(fleet)
        transport(read_frame())
        state["limited"] = False
        before = fleet.calls("a:1")
        for n in range(4):
            transport(read_frame(request_id=10 + n))
        assert fleet.calls("a:1") > before

    def test_whole_fleet_limited_backs_off_then_surfaces_typed_error(self):
        from repro.errors import RateLimitedError

        sleeps = []
        fleet = Fleet({
            "a:1": lambda d: rate_limited_frame(retry_after=0.02),
            "b:2": lambda d: rate_limited_frame(retry_after=0.07),
        })
        transport = self.build(fleet, sleeps=sleeps)
        response = wire.decode_response(transport(read_frame()))
        with pytest.raises(RateLimitedError) as excinfo:
            response.raise_if_error()
        # the typed error still carries the server's retry_after hint
        assert excinfo.value.retry_after > 0
        # the transport honoured the smallest advertised retry_after once
        assert sleeps and min(sleeps) == pytest.approx(0.02)
        # both replicas were given a second sweep after the backoff
        assert fleet.calls("a:1") == 2
        assert fleet.calls("b:2") == 2

    def test_recovery_after_backoff_sweep(self):
        # First sweep: both refuse.  After honouring retry_after, the
        # second sweep finds a refilled bucket and the call succeeds.
        counts = {"a": 0, "b": 0}

        def a_script(data):
            counts["a"] += 1
            if counts["a"] == 1:
                return rate_limited_frame()
            return ok_frame("from-a")

        fleet = Fleet({
            "a:1": a_script,
            "b:2": lambda d: rate_limited_frame(),
        })
        transport = self.build(fleet)
        raw = transport(read_frame())
        assert wire.decode_response(raw).result == "from-a"
        assert transport.rate_limit_reroutes >= 2
        assert transport.breaker_states()["a:1"] == "closed"
