"""Shard-aware client routing (PR 6): with ``routing=shard`` a read that
names a model coordinate prefers the replica owning its shard, falls back
to any admitted replica when the owner is down, and degrades silently to
round-robin when topology is unavailable."""

import time

import pytest

from repro import build_gallery
from repro.errors import ValidationError
from repro.reliability.breaker import BreakerState
from repro.service import wire
from repro.service.endpoints import (
    TOPOLOGY_REQUEST_ID,
    Endpoint,
    EndpointSet,
    FailoverTransport,
)
from repro.service.server import GalleryService

SHARDS = 8
REPLICAS = 3


class CountingTransport:
    """In-process 'replica': dispatches into a shared service, counting
    frames; can be flipped dead to emulate a downed endpoint."""

    def __init__(self, service, counts, index):
        self.service = service
        self.counts = counts
        self.index = index
        self.dead = False
        self.seen = []  # (method, request_id) of every served frame

    def __call__(self, frame):
        if self.dead:
            raise ConnectionRefusedError("replica down")
        self.counts[self.index] += 1
        request = wire.decode_request(frame)
        self.seen.append((request.method, request.request_id))
        return self.service.handle_frame(frame)

    def close(self):
        pass


@pytest.fixture
def stack(tmp_path):
    gallery = build_gallery(
        metadata_backend="sqlite",
        blob_backend="fs",
        data_dir=tmp_path,
        shard_count=SHARDS,
    )
    service = GalleryService(gallery)
    gallery.create_model("p", "demand")
    gallery.upload_model("p", "demand", b"w0", metadata={"city": "sf"})
    counts = [0] * REPLICAS
    transports = [
        CountingTransport(service, counts, i) for i in range(REPLICAS)
    ]
    endpoint_set = EndpointSet(
        endpoints=tuple(Endpoint("replica", 9000 + i) for i in range(REPLICAS)),
        routing="shard",
    )
    failover = FailoverTransport(
        endpoint_set,
        transport_factory=lambda ep: transports[ep.port - 9000],
        reset_timeout=0.05,
    )
    yield failover, transports, counts, gallery
    failover.close()
    gallery.dal.metadata.close()


def read_frame(method="instancesOf", **params):
    return wire.encode_request(
        wire.Request(
            method=method,
            params=params or {"base_version_id": "demand"},
            request_id=99,
            client_id="router",
        ),
        wire.DIALECT_BINARY,
    )


def owner_index(failover):
    frame_key = "demand"
    return failover._shard_map.shard_for(frame_key) % REPLICAS  # noqa: SLF001


def test_url_routing_param():
    parsed = EndpointSet.parse("gallery://a:1,b:2?routing=shard")
    assert parsed.routing == "shard"
    assert EndpointSet.parse("gallery://a:1").routing == "p2c"
    parsed_rr = EndpointSet.parse("gallery://a:1,b:2?routing=roundrobin")
    assert parsed_rr.routing == "roundrobin"
    with pytest.raises(ValidationError):
        EndpointSet.parse("gallery://a:1?routing=nope")


def test_routable_reads_pin_to_the_owner(stack):
    failover, _transports, counts, _gallery = stack
    frame = read_frame()
    for _ in range(9):
        assert wire.decode_response(failover(frame)).ok
    assert failover.topology_epoch == 0
    owner = owner_index(failover)
    # 9 routed reads + possibly the topology fetch land on the owner;
    # nothing else went anywhere.
    others = [c for i, c in enumerate(counts) if i != owner]
    assert counts[owner] >= 9
    assert sum(others) <= 1  # at most the topology fetch

    # modelQuery routes via its baseVersionId equality constraint
    before = counts[owner]
    query = read_frame(
        method="modelQuery",
        constraints=[
            {"field": "baseVersionId", "operator": "equal", "value": "demand"}
        ],
        include_deprecated=False,
    )
    for _ in range(4):
        assert wire.decode_response(failover(query)).ok
    assert counts[owner] == before + 4


def test_unroutable_reads_still_round_robin(stack):
    failover, _transports, counts, _gallery = stack
    frame = read_frame(method="modelQuery", constraints=[
        {"field": "city", "operator": "equal", "value": "sf"}
    ], include_deprecated=False)
    for _ in range(6):
        assert wire.decode_response(failover(frame)).ok
    assert all(c >= 1 for c in counts)  # spread, not pinned


def test_dead_owner_falls_back_to_any_replica(stack):
    failover, transports, counts, _gallery = stack
    frame = read_frame()
    assert wire.decode_response(failover(frame)).ok  # topology + pin
    owner = owner_index(failover)
    transports[owner].dead = True
    before = list(counts)
    for _ in range(5):
        assert wire.decode_response(failover(frame)).ok
    gained = [c - b for c, b in zip(counts, before)]
    assert gained[owner] == 0  # dead replica served nothing
    assert sum(gained) == 5


def test_refresh_topology_refetches(stack):
    failover, _transports, _counts, _gallery = stack
    assert wire.decode_response(failover(read_frame())).ok
    assert failover.topology_epoch == 0
    failover.refresh_topology()
    assert failover.topology_epoch is None
    assert wire.decode_response(failover(read_frame())).ok
    assert failover.topology_epoch == 0


def test_topology_fetch_uses_reserved_request_id(stack):
    # The internal shardTopology fetch shares the pipelined connection with
    # client calls, which allocate request_ids counting up from 1 — the
    # fetch must use the reserved id so it can never collide in flight.
    failover, transports, _counts, _gallery = stack
    assert wire.decode_response(failover(read_frame())).ok
    topology_ids = [
        request_id
        for transport in transports
        for method, request_id in transport.seen
        if method == "shardTopology"
    ]
    assert topology_ids == [TOPOLOGY_REQUEST_ID]


def test_topology_probe_settles_a_half_open_breaker(stack):
    failover, transports, _counts, _gallery = stack
    state = failover._states[0]  # noqa: SLF001
    # Trip endpoint 0's breaker while its replica is down, then let it
    # decay to half-open: the lazy topology fetch will consume the single
    # recovery probe that allow() hands out.
    transports[0].dead = True
    for _ in range(3):
        state.breaker.record_failure()
    time.sleep(0.06)  # reset_timeout=0.05: OPEN decays to HALF_OPEN
    assert failover._topology(wire.DIALECT_BINARY) is not None  # noqa: SLF001
    # The failed probe must be recorded (re-opening the breaker) — a
    # dangling probe would reject this endpoint on every future call.
    assert state.breaker.state is BreakerState.OPEN
    transports[0].dead = False
    time.sleep(0.06)
    state.breaker.allow()  # recovered replica admits a probe again
    state.breaker.record_success()
    assert state.breaker.state is BreakerState.CLOSED


def test_mutations_never_shard_route(stack):
    failover, _transports, counts, _gallery = stack
    frame = wire.encode_request(
        wire.Request(
            method="uploadModel",
            params={
                "project": "p",
                "base_version_id": "demand",
                "blob": b"w",
                "metadata": {},
            },
            request_id=1,
            client_id="writer",
        ),
        wire.DIALECT_BINARY,
    )
    # preferred-state computation must not kick in for mutations
    assert failover._preferred_state(wire.decode_request(frame)) is None  # noqa: SLF001
    assert wire.decode_response(failover(frame)).ok
