"""Binary wire dialect: fuzz/property coverage plus version negotiation.

Invariants:

* encode/decode is the identity over arbitrary wire-encodable payloads,
  including raw ``bytes`` (the whole point of the dialect) and integers
  beyond i64 (the bigint escape hatch);
* the decoder is **total**: any byte string either decodes or raises
  :class:`WireFormatError` — truncations, mutations, and random garbage
  never escape as other exceptions;
* frames survive arbitrary packet fragmentation over a real socket;
* version negotiation is per-frame: the server answers every frame in the
  dialect it arrived in, so a pre-binary JSON client interoperates with
  the new server unmodified;
* malformed frames with a recoverable request_id are answered with that
  id (pipelined clients must be able to correlate the failure), and
  unknown error types survive ``raise_if_error`` with their name intact.
"""

from __future__ import annotations

import random
import socket
import struct

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import build_gallery
from repro.core import ManualClock, SeededIdFactory
from repro.errors import ServiceError, WireFormatError
from repro.service import wire
from repro.service.client import GalleryClient
from repro.service.server import GalleryService
from repro.service.tcp import GalleryTcpServer, TcpTransport
from repro.service.wire import (
    BINARY_VERSION,
    DIALECT_BINARY,
    DIALECT_JSON,
    Request,
    Response,
)

_PREFIX = struct.Struct(">Q")

wire_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**70), max_value=2**70),  # crosses the i64 line
        st.floats(allow_nan=False, allow_infinity=False),
        st.text(max_size=20),
        st.binary(max_size=64),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)

wire_params = st.dictionaries(st.text(min_size=1, max_size=12), wire_values, max_size=5)


def build_service():
    gallery = build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(5))
    return GalleryService(gallery)


class TestRoundTrips:
    @given(
        st.text(min_size=1, max_size=20),
        wire_params,
        st.integers(0, 2**64 - 1),
        st.text(max_size=16),
        st.sampled_from([wire.LANE_INTERACTIVE, wire.LANE_BULK]),
    )
    @settings(max_examples=200)
    def test_request_round_trip(self, method, params, request_id, client_id, lane):
        request = Request(
            method=method,
            params=params,
            request_id=request_id,
            client_id=client_id,
            lane=lane,
        )
        restored = wire.decode_request(wire.encode_request(request, DIALECT_BINARY))
        assert restored == request
        assert restored.client_id == client_id  # read-path QoS keys on this
        assert restored.lane == lane
        assert restored.dialect == DIALECT_BINARY

    @given(
        st.text(min_size=1, max_size=20),
        st.dictionaries(  # JSON-safe subset: parity crosses both dialects
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.none(),
                st.booleans(),
                st.integers(min_value=-(2**50), max_value=2**50),
                st.text(max_size=12),
            ),
            max_size=4,
        ),
        st.text(max_size=16),
        st.sampled_from([wire.LANE_INTERACTIVE, wire.LANE_BULK]),
    )
    @settings(max_examples=100)
    def test_request_dialect_parity_on_identity_fields(
        self, method, params, client_id, lane
    ):
        """client_id and lane survive both dialects identically — the
        token buckets and lane scheduler must see the same tenant no
        matter which encoding the frame arrived in."""
        request = Request(
            method=method, params=params, request_id=7,
            client_id=client_id, lane=lane,
        )
        via_json = wire.decode_request(
            wire.encode_request(request, wire.DIALECT_JSON)
        )
        via_binary = wire.decode_request(
            wire.encode_request(request, DIALECT_BINARY)
        )
        assert (via_json.client_id, via_json.lane) == (client_id, lane)
        assert (via_binary.client_id, via_binary.lane) == (client_id, lane)

    def test_unknown_json_lane_degrades_to_interactive(self):
        frame = wire.encode_request(Request(method="getModel"))
        # splice a future lane name into the JSON body
        body = frame[_PREFIX.size :].decode("utf-8")
        import json as _json

        parsed = _json.loads(body)
        parsed["lane"] = "express"
        rebuilt = _json.dumps(parsed).encode("utf-8")
        reframed = _PREFIX.pack(len(rebuilt)) + rebuilt
        assert wire.decode_request(reframed).lane == wire.LANE_INTERACTIVE

    @given(wire_values, st.integers(0, 2**64 - 1))
    @settings(max_examples=200)
    def test_success_response_round_trip(self, result, request_id):
        response = Response(ok=True, result=result, request_id=request_id)
        restored = wire.decode_response(wire.encode_response(response, DIALECT_BINARY))
        assert restored.ok
        assert restored.result == result
        assert restored.request_id == request_id

    @given(st.text(max_size=30), st.text(max_size=60), st.integers(0, 2**32))
    @settings(max_examples=100)
    def test_error_response_round_trip(self, error_type, message, request_id):
        response = Response(
            ok=False,
            error_type=error_type,
            error_message=message,
            request_id=request_id,
        )
        restored = wire.decode_response(wire.encode_response(response, DIALECT_BINARY))
        assert not restored.ok
        assert restored.error_type == error_type
        assert restored.error_message == message
        assert restored.request_id == request_id

    def test_blobs_cross_as_raw_bytes_without_inflation(self):
        payload = bytes(range(256)) * 64
        response = Response(ok=True, result=payload, request_id=9)
        frame = wire.encode_response(response, DIALECT_BINARY)
        # Raw bytes plus a bounded header — no base64's 4/3 blow-up.
        assert len(frame) < len(payload) + 64
        assert wire.decode_response(frame).result == payload

    def test_bigint_beyond_i64_round_trips(self):
        huge = 2**80 + 17
        request = Request(method="m", params={"n": huge, "m": -huge})
        restored = wire.decode_request(wire.encode_request(request, DIALECT_BINARY))
        assert restored.params == {"n": huge, "m": -huge}


class TestDecoderTotality:
    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_total_over_binary_tagged_garbage(self, data):
        body = bytes([BINARY_VERSION]) + data
        frame = _PREFIX.pack(len(body)) + body
        for decoder in (wire.decode_request, wire.decode_response):
            try:
                decoder(frame)
            except WireFormatError:
                pass

    @given(
        st.text(min_size=1, max_size=10),
        wire_params,
        st.integers(0, 2**32),
        st.data(),
    )
    @settings(max_examples=200)
    def test_any_proper_prefix_is_rejected(self, method, params, request_id, data):
        frame = wire.encode_request(
            Request(method=method, params=params, request_id=request_id),
            DIALECT_BINARY,
        )
        body = frame[_PREFIX.size :]
        cut = data.draw(st.integers(min_value=0, max_value=len(body) - 1))
        truncated = _PREFIX.pack(cut) + body[:cut]
        with pytest.raises(WireFormatError):
            wire.decode_request(truncated)

    @given(st.text(min_size=1, max_size=10), wire_params, st.data())
    @settings(max_examples=200)
    def test_single_byte_mutations_never_escape(self, method, params, data):
        frame = bytearray(
            wire.encode_request(Request(method=method, params=params), DIALECT_BINARY)
        )
        index = data.draw(st.integers(min_value=_PREFIX.size, max_value=len(frame) - 1))
        frame[index] ^= data.draw(st.integers(min_value=1, max_value=255))
        try:
            wire.decode_request(bytes(frame))
        except WireFormatError:
            pass

    def test_unsupported_version_byte_is_rejected(self):
        body = bytes([0x02]) + b"\x00" * 16
        frame = _PREFIX.pack(len(body)) + body
        with pytest.raises(WireFormatError, match="dialect"):
            wire.decode_request(frame)


class TestRequestIdRecovery:
    """Satellite bugfix: malformed frames still answer with their id."""

    def test_recover_from_malformed_binary_body(self):
        body = wire._BIN_HEADER.pack(BINARY_VERSION, 0x00, 4242) + b"\xff\xff"
        frame = _PREFIX.pack(len(body)) + body
        with pytest.raises(WireFormatError):
            wire.decode_request(frame)
        assert wire.recover_request_id(frame) == (4242, DIALECT_BINARY)

    def test_recover_from_json_missing_method(self):
        body = b'{"request_id": 77, "params": {}}'
        frame = _PREFIX.pack(len(body)) + body
        with pytest.raises(WireFormatError):
            wire.decode_request(frame)
        assert wire.recover_request_id(frame) == (77, DIALECT_JSON)

    @given(st.binary(max_size=120))
    @settings(max_examples=300)
    def test_recovery_never_raises(self, data):
        request_id, dialect = wire.recover_request_id(data)
        assert request_id >= 0
        assert dialect in (DIALECT_JSON, DIALECT_BINARY)

    def test_server_echoes_recoverable_id_on_wire_error(self):
        service = build_service()
        body = wire._BIN_HEADER.pack(BINARY_VERSION, 0x00, 911) + b"\xff"
        frame = _PREFIX.pack(len(body)) + body
        response = wire.decode_response(service.handle_frame(frame))
        assert not response.ok
        assert response.error_type == "WireFormatError"
        assert response.request_id == 911


class TestErrorTypePreservation:
    """Satellite bugfix: unknown error types survive raise_if_error."""

    def test_unknown_error_type_kept_in_message_and_attribute(self):
        response = Response(
            ok=False, error_type="FancyFutureError", error_message="boom"
        )
        with pytest.raises(ServiceError) as excinfo:
            response.raise_if_error()
        assert "FancyFutureError" in str(excinfo.value)
        assert "boom" in str(excinfo.value)
        assert excinfo.value.error_type == "FancyFutureError"

    def test_known_error_type_exposes_wire_name(self):
        from repro.errors import NotFoundError

        response = Response(ok=False, error_type="NotFoundError", error_message="gone")
        with pytest.raises(NotFoundError) as excinfo:
            response.raise_if_error()
        assert excinfo.value.error_type == "NotFoundError"


class TestVersionNegotiation:
    """The server answers every frame in the dialect it arrived in."""

    def test_binary_request_gets_binary_response(self):
        service = build_service()
        frame = wire.encode_request(
            Request(method="auditStorage", request_id=3), DIALECT_BINARY
        )
        raw = service.handle_frame(frame)
        assert raw[_PREFIX.size] == BINARY_VERSION
        assert wire.decode_response(raw).ok

    def test_json_request_gets_json_response(self):
        service = build_service()
        frame = wire.encode_request(Request(method="auditStorage", request_id=4))
        raw = service.handle_frame(frame)
        assert raw[_PREFIX.size] == 0x7B  # "{"
        assert wire.decode_response(raw).ok

    def test_dialects_can_interleave_on_one_connection(self):
        service = build_service()
        with GalleryTcpServer(service) as server:
            host, port = server.address
            with TcpTransport(host, port) as transport:
                for dialect, marker in (
                    (DIALECT_JSON, 0x7B),
                    (DIALECT_BINARY, BINARY_VERSION),
                    (DIALECT_JSON, 0x7B),
                ):
                    frame = wire.encode_request(
                        Request(method="auditStorage", request_id=1), dialect
                    )
                    raw = transport(frame)
                    assert raw[_PREFIX.size] == marker
                    assert wire.decode_response(raw).ok


class TestJsonDialectCompatibility:
    """A pre-binary (JSON-dialect) client against the new server stack."""

    def test_legacy_client_full_workflow(self):
        with GalleryTcpServer(build_service()) as server:
            host, port = server.address
            with TcpTransport(host, port) as transport:
                client = GalleryClient(transport, dialect=DIALECT_JSON)
                client.create_gallery_model("p", "demand", owner="legacy")
                payload = bytes(range(256)) * 512
                instance = client.upload_model(
                    "p", "demand", payload, metadata={"model_name": "rf"}
                )
                hits = client.model_query(
                    [{"field": "modelName", "operator": "equal", "value": "rf"}]
                )
                assert [h["instance_id"] for h in hits] == [instance["instance_id"]]
                # Blob bytes are transparently downgraded to base64 in the
                # JSON response and restored by decode_blob.
                assert client.load_model_blob(instance["instance_id"]) == payload

    def test_legacy_blob_response_is_base64_text_on_the_wire(self):
        with GalleryTcpServer(build_service()) as server:
            host, port = server.address
            with TcpTransport(host, port) as transport:
                client = GalleryClient(transport, dialect=DIALECT_JSON)
                client.create_gallery_model("p", "demand")
                instance = client.upload_model("p", "demand", b"legacy-bytes")
                frame = wire.encode_request(
                    Request(
                        method="loadModelBlob",
                        params={"instance_id": instance["instance_id"]},
                        request_id=999,
                    ),
                    DIALECT_JSON,
                )
                response = wire.decode_response(transport(frame))
                assert isinstance(response.result, str)  # base64, not bytes
                assert wire.decode_blob(response.result) == b"legacy-bytes"


class TestFragmentationOverSocket:
    """Frames survive arbitrary TCP fragmentation in both directions."""

    def _send_fragmented(self, sock, frame, rng):
        offset = 0
        while offset < len(frame):
            step = rng.randint(1, 7)
            sock.sendall(frame[offset : offset + step])
            offset += step

    def _read_frames(self, sock, count):
        """Read exactly *count* frames, however TCP coalesces them."""
        buf = bytearray()
        frames = []
        while len(frames) < count:
            while True:
                if len(buf) >= _PREFIX.size:
                    (length,) = _PREFIX.unpack_from(buf)
                    total = _PREFIX.size + length
                    if len(buf) >= total:
                        frames.append(bytes(buf[:total]))
                        del buf[:total]
                        if len(frames) == count:
                            break
                        continue
                break
            if len(frames) < count:
                buf += sock.recv(65536)
        return frames

    def test_byte_dribbled_binary_request_decodes(self):
        with GalleryTcpServer(build_service()) as server:
            rng = random.Random(1234)
            frame = wire.encode_request(
                Request(method="auditStorage", request_id=21), DIALECT_BINARY
            )
            with socket.create_connection(server.address, timeout=10.0) as sock:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                self._send_fragmented(sock, frame, rng)
                (raw,) = self._read_frames(sock, 1)
                response = wire.decode_response(raw)
                assert response.ok
                assert response.request_id == 21

    def test_two_frames_in_one_segment_both_answered(self):
        with GalleryTcpServer(build_service()) as server:
            frames = b"".join(
                wire.encode_request(
                    Request(method="auditStorage", request_id=i), DIALECT_BINARY
                )
                for i in (31, 32)
            )
            with socket.create_connection(server.address, timeout=10.0) as sock:
                sock.sendall(frames)
                first, second = self._read_frames(sock, 2)
                ids = {
                    wire.decode_response(first).request_id,
                    wire.decode_response(second).request_id,
                }
                assert ids == {31, 32}


class TestChunkedStreaming:
    """PR 5: multi-MB responses stream as bounded chunk frames."""

    def _stream_frames(self, payload, request_id, chunk_size):
        response = Response(ok=True, result=payload, request_id=request_id)
        stream = wire.encode_response_stream(
            response, DIALECT_BINARY, chunk_size=chunk_size
        )
        return list(stream)

    def test_small_response_stays_single_frame(self):
        frames = self._stream_frames(b"tiny", 5, 256 * 1024)
        assert len(frames) == 1
        assert wire.decode_response(frames[0]).result == b"tiny"

    def test_json_dialect_never_chunks(self):
        response = Response(ok=True, result="x" * (1 << 20), request_id=6)
        stream = wire.encode_response_stream(
            response, DIALECT_JSON, chunk_size=4096
        )
        frames = list(stream)
        assert len(frames) == 1
        assert frames[0][_PREFIX.size] == 0x7B  # JSON body

    def test_large_blob_chunks_and_reassembles(self):
        payload = bytes(range(256)) * 4096  # 1 MiB
        chunk_size = 64 * 1024
        frames = self._stream_frames(payload, 7, chunk_size)
        assert len(frames) > 1
        # Every frame is bounded: chunk header + at most chunk_size payload.
        limit = _PREFIX.size + wire._CHUNK_HEADER.size + chunk_size
        assert all(len(frame) <= limit for frame in frames)
        reassembler = wire.ChunkReassembler()
        outputs = [reassembler.feed(frame) for frame in frames]
        assert all(out is None for out in outputs[:-1])
        response = wire.decode_response(outputs[-1])
        assert response.ok
        assert response.result == payload
        assert response.request_id == 7
        assert len(reassembler) == 0

    def test_interleaved_request_ids_reassemble_independently(self):
        payloads = {
            11: bytes([1]) * 300_000,
            12: bytes([2]) * 200_000,
            13: bytes([3]) * 250_000,
        }
        per_stream = {
            rid: self._stream_frames(payload, rid, 64 * 1024)
            for rid, payload in payloads.items()
        }
        # Round-robin interleave the three streams (in-stream order kept).
        rng = random.Random(99)
        cursors = {rid: 0 for rid in per_stream}
        reassembler = wire.ChunkReassembler()
        done = {}
        while cursors:
            rid = rng.choice(sorted(cursors))
            frames = per_stream[rid]
            out = reassembler.feed(frames[cursors[rid]])
            cursors[rid] += 1
            if cursors[rid] == len(frames):
                del cursors[rid]
            if out is not None:
                done[rid] = wire.decode_response(out)
        assert set(done) == set(payloads)
        for rid, payload in payloads.items():
            assert done[rid].result == payload
            assert done[rid].request_id == rid

    def test_truncated_stream_yields_nothing_and_tracks_partial(self):
        frames = self._stream_frames(b"z" * 500_000, 21, 64 * 1024)
        reassembler = wire.ChunkReassembler()
        for frame in frames[:-1]:
            assert reassembler.feed(frame) is None
        assert len(reassembler) == 1  # partial body parked, nothing emitted

    def test_out_of_order_chunk_raises(self):
        frames = self._stream_frames(b"z" * 500_000, 22, 64 * 1024)
        reassembler = wire.ChunkReassembler()
        assert reassembler.feed(frames[0]) is None
        with pytest.raises(WireFormatError, match="out-of-order"):
            reassembler.feed(frames[2])

    def test_mid_stream_start_raises(self):
        frames = self._stream_frames(b"z" * 500_000, 23, 64 * 1024)
        reassembler = wire.ChunkReassembler()
        with pytest.raises(WireFormatError, match="offset"):
            reassembler.feed(frames[1])

    def test_abort_frame_becomes_typed_error_response(self):
        frames = self._stream_frames(b"z" * 500_000, 24, 64 * 1024)
        reassembler = wire.ChunkReassembler()
        assert reassembler.feed(frames[0]) is None
        abort = wire.encode_response_abort(RuntimeError("disk gone"), 24)
        out = reassembler.feed(abort)
        response = wire.decode_response(out)
        assert not response.ok
        assert response.error_type == "RuntimeError"
        assert response.error_message == "disk gone"
        assert response.request_id == 24
        assert len(reassembler) == 0  # partial buffer discarded

    def test_plain_frames_pass_through_untouched(self):
        reassembler = wire.ChunkReassembler()
        binary = wire.encode_response(
            Response(ok=True, result=[1, 2], request_id=1), DIALECT_BINARY
        )
        json_frame = wire.encode_response(
            Response(ok=True, result=[1, 2], request_id=1), DIALECT_JSON
        )
        assert reassembler.feed(binary) == binary
        assert reassembler.feed(json_frame) == json_frame

    @given(st.data())
    @settings(max_examples=120)
    def test_fuzzed_chunk_interleaving_across_ids(self, data):
        """Any in-stream-order interleave across ids must reassemble."""
        ids = data.draw(
            st.lists(
                st.integers(1, 2**32), min_size=1, max_size=3, unique=True
            )
        )
        chunk_size = data.draw(st.sampled_from([1024, 4096, 65536]))
        # Payload shape (size + repeating fill) is what matters here, not
        # its entropy — drawing raw st.binary() at these sizes trips the
        # too_slow health check.
        payloads = {}
        for rid in ids:
            size = data.draw(
                st.integers(chunk_size + 1, 4 * chunk_size)
            )
            fill = data.draw(st.binary(min_size=1, max_size=16))
            payloads[rid] = (fill * (size // len(fill) + 1))[:size]
        per_stream = {
            rid: self._stream_frames(payload, rid, chunk_size)
            for rid, payload in payloads.items()
        }
        reassembler = wire.ChunkReassembler()
        cursors = {rid: 0 for rid in per_stream}
        done = {}
        while cursors:
            rid = data.draw(st.sampled_from(sorted(cursors)))
            out = reassembler.feed(per_stream[rid][cursors[rid]])
            cursors[rid] += 1
            if cursors[rid] == len(per_stream[rid]):
                del cursors[rid]
            if out is not None:
                done[rid] = wire.decode_response(out)
        for rid, payload in payloads.items():
            assert done[rid].result == payload

    @given(st.binary(max_size=200), st.integers(0, 2**32))
    @settings(max_examples=200)
    def test_reassembler_is_total_over_chunk_garbage(self, garbage, rid):
        """Arbitrary chunk/abort-typed bodies never escape WireFormatError."""
        for msgtype in (0x02, 0x03):
            body = wire._BIN_HEADER.pack(BINARY_VERSION, msgtype, rid) + garbage
            frame = _PREFIX.pack(len(body)) + body
            reassembler = wire.ChunkReassembler()
            try:
                reassembler.feed(frame)
            except WireFormatError:
                pass


def build_family_service():
    """A service with one family: an enabled, a disabled, and a serving row."""
    gallery = build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(11))
    gallery.create_model("p", "demand", family="demand_rf")
    enabled = gallery.upload_model("p", "demand", blob=b"a", family="sf:rf")
    disabled = gallery.upload_model(
        "p", "demand", blob=b"b", family="sf:rf", enabled=False
    )
    gallery.assign_serving("sf", enabled.instance_id, reason="launch")
    return GalleryService(gallery), enabled, disabled


class TestFamilyServingWireFuzz:
    """PR9 wire methods fuzzed across both dialects.

    familyQuery / servingFor / assignServing must produce identical results
    (or identical typed errors) whether the request arrives as JSON or
    binary — dialect parity is what lets mixed-version client fleets share
    one server.
    """

    def _call(self, service, method, params, dialect, request_id):
        frame = wire.encode_request(
            Request(method=method, params=params, request_id=request_id), dialect
        )
        return wire.decode_response(service.handle_frame(frame))

    def _parity(self, service, method, params):
        json_resp = self._call(service, method, params, DIALECT_JSON, 1)
        bin_resp = self._call(service, method, params, DIALECT_BINARY, 2)
        assert json_resp.ok == bin_resp.ok, f"{method} dialect disagreement"
        if json_resp.ok:
            assert json_resp.result == bin_resp.result
        else:
            assert json_resp.error_type == bin_resp.error_type
        return json_resp

    @given(
        family=st.one_of(st.sampled_from(["sf:rf", "", "ghost"]), st.text(max_size=12)),
        include_disabled=st.booleans(),
        include_deprecated=st.booleans(),
        models=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_family_query_parity(
        self, family, include_disabled, include_deprecated, models
    ):
        service, enabled, disabled = build_family_service()
        response = self._parity(
            service,
            "familyQuery",
            {
                "family": family,
                "include_disabled": include_disabled,
                "include_deprecated": include_deprecated,
                "models": models,
            },
        )
        assert response.ok
        assert isinstance(response.result, list)
        if family == "sf:rf" and not models:
            ids = {doc["instance_id"] for doc in response.result}
            assert enabled.instance_id in ids
            assert (disabled.instance_id in ids) == include_disabled

    @given(scope=st.one_of(st.just("sf"), st.text(max_size=8)))
    @settings(max_examples=50, deadline=None)
    def test_serving_for_parity(self, scope):
        service, enabled, _disabled = build_family_service()
        response = self._parity(service, "servingFor", {"scope": scope})
        if scope == "sf":
            assert response.ok
            assert response.result["instance_id"] == enabled.instance_id
            assert response.result["family"] == "sf:rf"
        else:
            assert not response.ok
            assert response.error_type == "NotFoundError"

    @given(
        scope=st.text(max_size=8),
        target=st.sampled_from(["enabled", "disabled", "ghost"]),
        reason=st.text(max_size=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_assign_serving_parity(self, scope, target, reason):
        service, enabled, disabled = build_family_service()
        instance_id = {
            "enabled": enabled.instance_id,
            "disabled": disabled.instance_id,
            "ghost": "no-such-instance",
        }[target]
        response = self._parity(
            service,
            "assignServing",
            {"scope": scope, "instance_id": instance_id, "reason": reason},
        )
        if target == "ghost":
            assert response.error_type == "NotFoundError"
        elif target == "disabled":
            assert response.error_type == "ValidationError", "enablement gate"
        elif not scope:
            assert response.error_type == "ValidationError"
        else:
            assert response.ok
            assert response.result["scope"] == scope
            assert response.result["instance_id"] == enabled.instance_id


class TestUnknownMethodCompat:
    """A new client against a pre-PR9 server: typed, fail-fast errors.

    The old server never registered the family methods, so it answers with
    UnknownMethodError — which must cross the wire typed (not a generic
    ServiceError) and must NOT be retried: the error is deterministic, so
    burning the retry budget on it would only delay the caller's fallback.
    """

    def _old_server(self):
        service = build_service()
        for method in ("familyQuery", "servingFor", "assignServing"):
            service._methods.pop(method, None)  # noqa: SLF001 - simulate pre-PR9
        return service

    def test_unknown_method_typed_in_both_dialects(self):
        service = self._old_server()
        for dialect in (DIALECT_JSON, DIALECT_BINARY):
            frame = wire.encode_request(
                Request(method="familyQuery", params={"family": "x"}, request_id=5),
                dialect,
            )
            response = wire.decode_response(service.handle_frame(frame))
            assert not response.ok
            assert response.error_type == "UnknownMethodError"
            assert response.request_id == 5

    def test_new_client_fails_fast_without_retry_burn(self):
        from repro.errors import UnknownMethodError
        from repro.service.client import InProcessTransport, RetryingTransport

        transport = RetryingTransport(InProcessTransport(self._old_server()))
        client = GalleryClient(transport)
        with pytest.raises(UnknownMethodError):
            client.family_query("sf:rf")
        with pytest.raises(UnknownMethodError):
            client.serving_for("sf")
        with pytest.raises(UnknownMethodError):
            client.assign_serving("sf", "i-1")
        assert transport.retries == 0, "deterministic errors must not be retried"
