"""The read-path micro-batcher + multi-tenant QoS (PR 10).

Properties under fuzz:

* **exactly-once**: every request handed to the batcher is answered
  exactly once, with its own ``request_id``, and the answer matches what
  an unbatched dispatch of the same frame would have produced;
* **tenant isolation**: coalescing shares *computation*, never frames —
  two tenants asking for one coordinate each get their own response
  envelope in their own dialect;
* **error isolation**: a failing lookup inside a window poisons only its
  own request(s), not batch-mates;
* **no starvation**: the weighted lane scheduler keeps serving the
  interactive lane while a bulk tenant floods the queue at 10x load.
"""

from __future__ import annotations

import threading
import time

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro import build_gallery
from repro.core import ManualClock, SeededIdFactory
from repro.errors import NotFoundError, RateLimitedError
from repro.service import wire
from repro.service.batching import (
    ANONYMOUS_TENANT,
    BATCHABLE_METHODS,
    BatchConfig,
    ReadBatcher,
    TokenBucket,
)
from repro.service.client import GalleryClient
from repro.service.server import GalleryService
from repro.service.tcp import (
    GalleryTcpServer,
    PipelinedTcpTransport,
    TcpTransport,
    ThreadedGalleryTcpServer,
)


def seeded_gallery(models=3, instances=2):
    gallery = build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(11))
    model_ids, instance_ids = [], []
    for m in range(models):
        model = gallery.create_model(project="p", base_version_id=f"bv{m}")
        model_ids.append(model.model_id)
        for i in range(instances):
            inst = gallery.upload_model("p", f"bv{m}", blob=b"w%d" % i)
            gallery.insert_metric(inst.instance_id, "mape", 0.1 * (i + 1))
            instance_ids.append(inst.instance_id)
    return gallery, model_ids, instance_ids


class Collector:
    """Counts every delivery per request so exactly-once is checkable."""

    def __init__(self):
        self.lock = threading.Lock()
        self.frames: dict[int, list[bytes]] = {}
        self.done = threading.Event()
        self.expected = 0

    def deliver_for(self, key):
        def deliver(frame):
            with self.lock:
                self.frames.setdefault(key, []).append(frame)
                if sum(len(v) for v in self.frames.values()) >= self.expected:
                    self.done.set()

        return deliver


def make_request(method, params, request_id, client_id="c", lane="interactive",
                 dialect=wire.DIALECT_BINARY):
    return wire.Request(
        method=method, params=params, request_id=request_id,
        client_id=client_id, lane=lane, dialect=dialect,
    )


# ---------------------------------------------------------------------------
# window/dedup fuzz (deterministic: drives the executor directly)
# ---------------------------------------------------------------------------


class TestDedupFuzz:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_every_request_answered_exactly_once_and_unbatched_equal(self, data):
        gallery, model_ids, instance_ids = seeded_gallery()
        service = GalleryService(gallery)
        batcher = service.read_batcher
        coordinates = (
            [("getModel", {"model_id": m}) for m in model_ids]
            + [("getModel", {"model_id": "ghost"})]
            + [("metricsOf", {"instance_id": i}) for i in instance_ids]
            + [("metricsOf", {"instance_id": "ghost"})]
            + [("metricsForInstances", {"instance_ids": instance_ids[:2]})]
            + [("instancesOf", {"base_version_id": "bv0"})]
            + [("latestInstance", {"base_version_id": "bv1"})]
            + [("servingFor", {"scope": "nowhere"})]
            + [("familyQuery", {"family": "none"})]
        )
        n = data.draw(st.integers(min_value=1, max_value=24))
        picks = [
            data.draw(st.sampled_from(coordinates), label=f"req{k}")
            for k in range(n)
        ]
        lanes = [
            data.draw(st.sampled_from(["interactive", "bulk"]), label=f"lane{k}")
            for k in range(n)
        ]
        dialects = [
            data.draw(
                st.sampled_from([wire.DIALECT_BINARY, wire.DIALECT_JSON]),
                label=f"dialect{k}",
            )
            for k in range(n)
        ]
        collector = Collector()
        collector.expected = n
        from repro.service.batching import _Waiter

        waiters, requests = [], []
        for k, (method, params) in enumerate(picks):
            request = make_request(
                method, params, request_id=k + 1,
                client_id=f"tenant-{k % 3}", lane=lanes[k], dialect=dialects[k],
            )
            requests.append(request)
            waiters.append(
                _Waiter(
                    request=request,
                    deliver=collector.deliver_for(k),
                    counted=service._begin_request(request),
                )
            )
        batcher._execute_batch(waiters)

        oracle = GalleryService(gallery)  # unbatched twin over the same store
        for k, request in enumerate(requests):
            frames = collector.frames.get(k, [])
            assert len(frames) == 1, f"request {k} answered {len(frames)} times"
            response = wire.decode_response(frames[0])
            assert response.request_id == request.request_id
            expected = wire.decode_response(
                oracle.handle_frame(
                    wire.encode_request(request, request.dialect)
                )
            )
            assert response.ok == expected.ok
            assert response.result == expected.result
            assert response.error_type == expected.error_type
        # in-flight accounting fully unwound
        assert service.active_requests == 0

    @given(n_dupes=st.integers(min_value=2, max_value=12))
    @settings(max_examples=20, deadline=None)
    def test_coalescing_never_crosses_tenant_result_boundaries(self, n_dupes):
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(gallery)
        from repro.service.batching import _Waiter

        collector = Collector()
        collector.expected = n_dupes
        waiters = []
        for k in range(n_dupes):
            request = make_request(
                "getModel", {"model_id": model_ids[0]}, request_id=1000 + k,
                client_id=f"tenant-{k}",
                dialect=wire.DIALECT_JSON if k % 2 else wire.DIALECT_BINARY,
            )
            waiters.append(
                _Waiter(request=request, deliver=collector.deliver_for(k),
                        counted=False)
            )
        service.read_batcher._execute_batch(waiters)
        for k in range(n_dupes):
            (frame,) = collector.frames[k]
            response = wire.decode_response(frame)
            # each tenant's envelope: own request_id, shared result
            assert response.request_id == 1000 + k
            assert response.ok
            assert response.result["model_id"] == model_ids[0]
        stats = service.read_batcher.stats_snapshot()
        assert stats["coalesced"] == n_dupes - 1
        assert stats["dal_batched_calls"]["getModel"] == 1

    def test_error_in_one_lookup_poisons_only_that_request(self):
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(gallery)
        from repro.service.batching import _Waiter

        collector = Collector()
        collector.expected = 3
        specs = [
            ("getModel", {"model_id": model_ids[0]}),
            ("getModel", {"model_id": "ghost"}),
            ("latestInstance", {"base_version_id": "does-not-exist"}),
        ]
        waiters = [
            _Waiter(
                request=make_request(m, p, request_id=k + 1),
                deliver=collector.deliver_for(k),
                counted=False,
            )
            for k, (m, p) in enumerate(specs)
        ]
        service.read_batcher._execute_batch(waiters)
        ok_resp = wire.decode_response(collector.frames[0][0])
        ghost_resp = wire.decode_response(collector.frames[1][0])
        missing_resp = wire.decode_response(collector.frames[2][0])
        assert ok_resp.ok and ok_resp.result["model_id"] == model_ids[0]
        assert not ghost_resp.ok and ghost_resp.error_type == "NotFoundError"
        assert not missing_resp.ok
        with pytest.raises(NotFoundError):
            ghost_resp.raise_if_error()


# ---------------------------------------------------------------------------
# lanes & starvation
# ---------------------------------------------------------------------------


class TestLaneScheduling:
    def test_weighted_drain_prefers_interactive_4_to_1(self):
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(gallery)
        batcher = service.read_batcher
        from repro.service.batching import _Waiter

        sink = lambda frame: None  # noqa: E731
        for k in range(40):  # the 10x bulk flood
            batcher._lanes["bulk"].append(
                _Waiter(
                    request=make_request(
                        "getModel", {"model_id": model_ids[0]},
                        request_id=k + 1, lane="bulk",
                    ),
                    deliver=sink, counted=False,
                )
            )
        for k in range(4):
            batcher._lanes["interactive"].append(
                _Waiter(
                    request=make_request(
                        "getModel", {"model_id": model_ids[1]},
                        request_id=100 + k,
                    ),
                    deliver=sink, counted=False,
                )
            )
        drained = batcher._drain_weighted(10)
        lanes = [w.request.lane for w in drained]
        # every queued interactive request surfaced in the first drain,
        # despite bulk outnumbering them 10:1
        assert lanes.count("interactive") == 4
        assert lanes.count("bulk") == 6

    def test_bulk_flood_cannot_starve_interactive_p95(self):
        """A bulk tenant at ~10x offered load: the interactive lane's p95
        stays inside the configured bound end-to-end over the event-loop
        server."""
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(gallery, batching=BatchConfig(batch_window_ms=2.0))
        server = GalleryTcpServer(service).start()
        host, port = server.address
        p95_bound_s = 0.25  # generous CI bound; unloaded p50 is ~sub-ms
        stop = threading.Event()

        def bulk_flood(worker):
            client = GalleryClient(
                PipelinedTcpTransport(host, port),
                client_id=f"bulk-{worker}", lane="bulk",
            )
            try:
                while not stop.is_set():
                    client.call("getModel", model_id=model_ids[0])
            except Exception:
                pass
            finally:
                client.close()

        flooders = [
            threading.Thread(target=bulk_flood, args=(w,), daemon=True)
            for w in range(10)
        ]
        for thread in flooders:
            thread.start()
        try:
            interactive = GalleryClient(
                TcpTransport(host, port), client_id="interactive-tenant"
            )
            latencies = []
            try:
                for _ in range(60):
                    t0 = time.perf_counter()
                    interactive.call("getModel", model_id=model_ids[1])
                    latencies.append(time.perf_counter() - t0)
            finally:
                interactive.close()
        finally:
            stop.set()
            for thread in flooders:
                thread.join(timeout=5.0)
            server.stop()
        latencies.sort()
        p95 = latencies[int(len(latencies) * 0.95) - 1]
        assert p95 < p95_bound_s, f"interactive p95 {p95 * 1e3:.1f}ms over bound"


# ---------------------------------------------------------------------------
# QoS: token buckets & typed refusals
# ---------------------------------------------------------------------------


class TestRateLimiting:
    def test_token_bucket_refill(self):
        bucket = TokenBucket(rate=10.0, capacity=2.0, now=0.0)
        assert bucket.try_take(0.0) and bucket.try_take(0.0)
        assert not bucket.try_take(0.0)
        assert bucket.retry_after() == pytest.approx(0.1)
        assert bucket.try_take(0.1)  # one token refilled

    def build(self, rate=2.0, burst=2.0):
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(
            gallery,
            batching=BatchConfig(
                batch_window_ms=2.0, rate_limit=rate, burst=burst
            ),
        )
        clock = {"now": 0.0}
        batcher = ReadBatcher(service, service.read_batcher.config,
                              clock=lambda: clock["now"])
        service.read_batcher = batcher
        return service, batcher, clock, model_ids

    def frame_for(self, model_id, request_id=1, client_id="tenant-a"):
        return wire.encode_request(
            make_request("getModel", {"model_id": model_id},
                         request_id=request_id, client_id=client_id),
            wire.DIALECT_BINARY,
        )

    def test_over_limit_refused_with_typed_retryable_error(self):
        service, batcher, clock, model_ids = self.build(rate=2.0, burst=2.0)
        lock = threading.Lock()
        got: list[bytes] = []
        done = threading.Event()

        def deliver(frame):
            with lock:
                got.append(frame)
                if len(got) == 5:
                    done.set()

        for k in range(5):
            assert batcher.offer(
                self.frame_for(model_ids[0], request_id=k + 1), deliver
            )
        # burst of 2 admitted (answered by the collector); 3 refused
        # inline — every offer gets exactly one response either way.
        assert done.wait(timeout=5.0)
        responses = [wire.decode_response(f) for f in got]
        refusals = [r for r in responses if not r.ok]
        assert len(refusals) == 3 and sum(r.ok for r in responses) == 2
        for response in refusals:
            assert response.error_type == "RateLimitedError"
            with pytest.raises(RateLimitedError) as excinfo:
                response.raise_if_error()
            assert excinfo.value.retry_after > 0
        stats = batcher.stats_snapshot()
        assert stats["refusals"] == 3
        assert stats["tenants"]["tenant-a"]["refusals"] == 3
        batcher.close()

    def test_buckets_key_on_client_id_and_refill(self):
        service, batcher, clock, model_ids = self.build(rate=1.0, burst=1.0)
        sink: list[bytes] = []
        assert batcher.offer(self.frame_for(model_ids[0], 1, "a"), sink.append)
        assert batcher.offer(self.frame_for(model_ids[0], 2, "b"), sink.append)
        # both tenants spent their single token; each is now refused
        # (admitted requests 1 and 2 also answer into sink, async, ok=True)
        batcher.offer(self.frame_for(model_ids[0], 3, "a"), sink.append)
        batcher.offer(self.frame_for(model_ids[0], 4, "b"), sink.append)
        refused = [
            r
            for r in (wire.decode_response(f) for f in list(sink))
            if not r.ok
        ]
        assert [r.error_type for r in refused] == ["RateLimitedError"] * 2
        stats = batcher.stats_snapshot()
        assert stats["tenants"]["a"]["refusals"] == 1
        assert stats["tenants"]["b"]["refusals"] == 1
        clock["now"] += 1.0  # a full second refills one token each
        assert batcher.offer(self.frame_for(model_ids[0], 5, "a"), sink.append)
        assert batcher.stats_snapshot()["tenants"]["a"]["refusals"] == 1
        batcher.close()

    def test_anonymous_requests_share_one_bucket(self):
        service, batcher, clock, model_ids = self.build(rate=1.0, burst=1.0)
        sink: list[bytes] = []
        assert batcher.offer(self.frame_for(model_ids[0], 1, ""), sink.append)
        batcher.offer(self.frame_for(model_ids[0], 2, ""), sink.append)
        refused = [
            r
            for r in (wire.decode_response(f) for f in list(sink))
            if not r.ok
        ]
        assert refused and refused[-1].error_type == "RateLimitedError"
        assert ANONYMOUS_TENANT in batcher.stats_snapshot()["tenants"]
        batcher.close()


# ---------------------------------------------------------------------------
# integration: both modes, threaded baseline, serverStats
# ---------------------------------------------------------------------------


class TestServerIntegration:
    def test_concurrent_duplicate_reads_coalesce_over_tcp(self):
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(gallery, batching=BatchConfig(batch_window_ms=2.0))
        server = GalleryTcpServer(service).start()
        host, port = server.address
        results, errors = [], []

        def reader(worker):
            client = GalleryClient(
                PipelinedTcpTransport(host, port), client_id=f"w{worker}"
            )
            try:
                for _ in range(20):
                    results.append(
                        client.call("getModel", model_id=model_ids[0])
                    )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=reader, args=(w,)) for w in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        server.stop()
        assert not errors
        assert len(results) == 160
        assert all(r["model_id"] == model_ids[0] for r in results)
        stats = service.read_batcher.stats_snapshot()
        assert stats["batched_requests"] == 160
        assert stats["batches"] >= 1

    def test_batching_disabled_via_window_zero(self):
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(
            gallery, batching=BatchConfig(batch_window_ms=0)
        )
        assert not service.read_batcher.config.enabled
        server = GalleryTcpServer(service).start()
        host, port = server.address
        client = GalleryClient(TcpTransport(host, port))
        try:
            got = client.call("getModel", model_id=model_ids[0])
            assert got["model_id"] == model_ids[0]
            with pytest.raises(NotFoundError):
                client.call("getModel", model_id="ghost")
        finally:
            client.close()
            server.stop()
        stats = service.read_batcher.stats_snapshot()
        assert stats["batched_requests"] == 0  # everything went unbatched

    def test_threaded_server_dispatches_directly_unbatched(self):
        # Regression: the threaded baseline must not enqueue into (or
        # block on) the event-loop collector — it has none running.
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(gallery)
        server = ThreadedGalleryTcpServer(service).start()
        host, port = server.address
        client = GalleryClient(TcpTransport(host, port), client_id="th")
        try:
            for k in range(10):
                got = client.call("getModel", model_id=model_ids[0])
                assert got["model_id"] == model_ids[0]
            stats = client.server_stats()
        finally:
            client.close()
            server.stop()
        assert stats["batching"]["batched_requests"] == 0
        assert stats["batching"]["queue_depth"] == {
            "interactive": 0, "bulk": 0,
        }

    def test_server_stats_method_and_audit_summary(self):
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(gallery, batching=BatchConfig(batch_window_ms=2.0))
        server = GalleryTcpServer(service).start()
        host, port = server.address
        client = GalleryClient(TcpTransport(host, port), client_id="ops")
        try:
            client.call("getModel", model_id=model_ids[0])
            stats = client.server_stats()
            audit = client.call("auditStorage")
        finally:
            client.close()
            server.stop()
        assert stats["batching"]["batched_requests"] >= 1
        assert stats["batching"]["config"]["enabled"]
        assert stats["fleet"]["status"] == "serving"
        assert "request_dedup" in stats
        assert "batching" in audit["summary"]

    def test_server_stats_answers_while_draining(self):
        gallery, _, _ = seeded_gallery()
        service = GalleryService(gallery)
        service.drain()
        response = wire.decode_response(
            service.handle_frame(
                wire.encode_request(wire.Request(method="serverStats"))
            )
        )
        assert response.ok
        assert response.result["fleet"]["draining"]

    def test_draining_reads_refused_not_enqueued(self):
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(gallery)
        service.drain()
        taken = service.read_batcher.offer(
            wire.encode_request(
                make_request("getModel", {"model_id": model_ids[0]}, 1)
            ),
            lambda f: None,
        )
        assert not taken  # normal path answers with ReplicaDrainingError

    def test_mutations_and_blobs_never_enter_the_queue(self):
        for method in ("uploadModel", "loadModelBlob", "fleetStatus",
                       "collectOrphans", "serverStats"):
            assert method not in BATCHABLE_METHODS

    def test_close_flushes_queued_waiters(self):
        gallery, model_ids, _ = seeded_gallery()
        service = GalleryService(gallery)
        batcher = ReadBatcher(service, BatchConfig())
        from repro.service.batching import _Waiter

        got = []
        batcher._lanes["interactive"].append(
            _Waiter(
                request=make_request("getModel", {"model_id": model_ids[0]}, 1),
                deliver=got.append, counted=False,
            )
        )
        batcher.close()
        assert len(got) == 1
        assert wire.decode_response(got[0]).ok
