"""Tests for the service + client against a real registry (Listings 3-5)."""

import pytest

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.errors import NotFoundError, ValidationError
from repro.rules.engine import RuleEngine
from repro.rules.rule import action_rule, selection_rule
from repro.service.client import connect_in_process
from repro.service.server import GalleryService
from repro.service.wire import Request
from repro.store.blob import InMemoryBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore


@pytest.fixture
def stack():
    dal = DataAccessLayer(InMemoryMetadataStore(), InMemoryBlobStore(), LRUBlobCache(1 << 20))
    gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(1))
    engine = RuleEngine(gallery, clock=ManualClock(), bus=gallery.bus)
    service = GalleryService(gallery, engine)
    client = connect_in_process(service)
    return gallery, engine, service, client


class TestListingWorkflows:
    def test_listing3_create_and_upload(self, stack):
        _, _, _, client = stack
        model = client.create_gallery_model("example-project", "supply_rejection")
        instance = client.upload_model(
            "example-project",
            "supply_rejection",
            b"serialized-model",
            metadata={"model_name": "Random Forest", "city": "New York City",
                      "model_type": "SparkML"},
        )
        assert instance["model_id"] == model["model_id"]
        assert client.load_model_blob(instance["instance_id"]) == b"serialized-model"

    def test_listing4_metric_upload(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"blob")
        metric = client.insert_model_instance_metric(
            instance["instance_id"], "bias", 0.05, scope="Validation"
        )
        assert metric["name"] == "bias" and metric["scope"] == "Validation"

    def test_listing5_model_query(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("example-project", "supply_rejection")
        instance = client.upload_model(
            "example-project",
            "supply_rejection",
            b"blob",
            metadata={"model_name": "random_forest"},
        )
        client.insert_model_instance_metric(instance["instance_id"], "bias", 0.05)
        hits = client.model_query(
            [
                {"field": "projectName", "operator": "equal", "value": "example-project"},
                {"field": "modelName", "operator": "equal", "value": "random_forest"},
                {"field": "metricName", "operator": "equal", "value": "bias"},
                {"field": "metricValue", "operator": "smaller_than", "value": 0.25},
            ]
        )
        assert [h["instance_id"] for h in hits] == [instance["instance_id"]]


class TestServiceSurface:
    def test_dependency_methods(self, stack):
        _, _, _, client = stack
        a = client.create_gallery_model("p", "a")
        b = client.create_gallery_model("p", "b")
        events = client.add_dependency(a["model_id"], b["model_id"])
        assert any(e["model_id"] == a["model_id"] for e in events)
        assert client.upstream_of(a["model_id"]) == [b["model_id"]]
        assert client.downstream_of(b["model_id"]) == [a["model_id"]]

    def test_deprecation_methods(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"blob")
        flagged = client.deprecate_instance(instance["instance_id"])
        assert flagged["deprecated"] is True

    def test_instances_of_and_latest(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        client.upload_model("p", "demand", b"v1")
        second = client.upload_model("p", "demand", b"v2")
        assert client.latest_instance("demand")["instance_id"] == second["instance_id"]
        assert len(client.instances_of("demand")) == 2

    def test_metric_blob_batch(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"v1")
        records = client.insert_model_instance_metrics(
            instance["instance_id"], {"mape": 0.08, "bias": 0.01}
        )
        assert len(records) == 2
        assert len(client.metrics_of(instance["instance_id"])) == 2

    def test_instance_health(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"v1")
        health = client.instance_health(instance["instance_id"])
        assert health["healthy"] is False
        assert health["completeness_score"] == 0.0

    def test_select_model_via_wire(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        instance = client.upload_model(
            "p", "demand", b"v1", metadata={"city": "sf"}
        )
        client.insert_model_instance_metric(instance["instance_id"], "mape", 0.1)
        rule = selection_rule(
            "sel", "t", 'city == "sf"', "metrics.mape < 0.5",
            "a.created_time > b.created_time",
        )
        result = client.select_model(rule.to_dict())
        assert result["instance_id"] == instance["instance_id"]

    def test_trigger_rule_via_wire(self, stack):
        gallery, engine, _, client = stack
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"v1", metadata={"city": "sf"})
        client.insert_model_instance_metric(instance["instance_id"], "mape", 0.1)
        engine.register(
            action_rule("act", "t", 'city == "sf"', "metrics.mape < 0.5", ["deploy"])
        )
        fired = client.trigger_rule("act")
        assert fired == 1
        assert len(engine.actions.sent("deploy")) == 1


class TestErrorHandling:
    def test_not_found_crosses_the_wire(self, stack):
        _, _, _, client = stack
        with pytest.raises(NotFoundError):
            client.get_model("ghost")

    def test_unknown_method(self, stack):
        from repro.errors import UnknownMethodError

        _, _, _, client = stack
        with pytest.raises(UnknownMethodError):
            client.call("launchRockets")

    def test_bad_parameters_become_validation_error(self, stack):
        _, _, _, client = stack
        with pytest.raises(ValidationError):
            client.call("getModel", wrong_param="x")

    def test_duplicate_model_error_crosses_wire(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        with pytest.raises(ValidationError):
            client.create_gallery_model("p", "demand")

    def test_malformed_frame_gets_error_response(self, stack):
        _, _, service, _ = stack
        from repro.service import wire

        response = wire.decode_response(service.handle_frame(b"garbage"))
        assert not response.ok

    def test_engine_required_for_rule_methods(self):
        dal = DataAccessLayer(InMemoryMetadataStore(), InMemoryBlobStore(), None)
        gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(2))
        client = connect_in_process(GalleryService(gallery, engine=None))
        with pytest.raises(ValidationError):
            client.trigger_rule("x")

    def test_methods_listing(self, stack):
        _, _, service, _ = stack
        methods = service.methods()
        for expected in ("createGalleryModel", "uploadModel", "modelQuery",
                         "insertModelInstanceMetric", "loadModelBlob"):
            assert expected in methods

    def test_dispatch_request_ids_echoed(self, stack):
        _, _, service, _ = stack
        response = service.dispatch(Request(method="getModel", params={"model_id": "x"}, request_id=42))
        assert response.request_id == 42


class TestExtendedSurface:
    def test_metric_history_over_wire(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        instance = client.upload_model("p", "demand", b"v1")
        iid = instance["instance_id"]
        client.insert_model_instance_metric(iid, "mape", 0.2, scope="Production")
        client.insert_model_instance_metric(iid, "mape", 0.1, scope="Production")
        client.insert_model_instance_metric(iid, "mape", 0.3, scope="Validation")
        history = client.metric_history(iid, "mape", scope="Production")
        assert [record["value"] for record in history] == [0.2, 0.1]
        everything = client.metric_history(iid, "mape")
        assert len(everything) == 3

    def test_lineage_over_wire(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        first = client.upload_model("p", "demand", b"v1")
        second = client.upload_model(
            "p", "demand", b"v2", parent_instance_id=first["instance_id"]
        )
        chain = client.lineage_of("demand")
        assert [entry["instance_id"] for entry in chain] == [
            first["instance_id"], second["instance_id"],
        ]
        assert chain[1]["parent_instance_id"] == first["instance_id"]

    def test_audit_and_gc_over_wire(self, stack):
        _, _, _, client = stack
        client.create_gallery_model("p", "demand")
        client.upload_model("p", "demand", b"v1")
        audit = client.audit_storage()
        assert audit["consistent"] is True
        assert audit["summary"]["instances"] == 1
        assert client.collect_orphans() == []
