"""Server-side chunked response streaming over the event-loop server.

The acceptance bar for PR 5's streaming layer:

* serving a 4 MiB blob on the binary dialect never puts more than
  ``chunk_size`` of encoded body in any one wire frame (verified by
  instrumenting frame sizes on a raw socket);
* JSON-dialect clients see exactly the old single-frame behaviour;
* an error raised mid-stream (after the first chunk is already on the
  wire) surfaces to the client as a typed wire error, not a hung
  reassembly;
* the pooled/pipelined client paths reassemble transparently.
"""

from __future__ import annotations

import socket
import struct
import threading

import pytest

from repro import build_gallery
from repro.core import ManualClock, SeededIdFactory
from repro.errors import ServiceError
from repro.service import wire
from repro.service.client import GalleryClient
from repro.service.server import GalleryService
from repro.service.tcp import (
    ConnectionPool,
    GalleryTcpServer,
    PipelinedTcpTransport,
    TcpTransport,
)
from repro.service.wire import DIALECT_BINARY, DIALECT_JSON, Request

_PREFIX = struct.Struct(">Q")
_BLOB = bytes(range(256)) * (4 * 4096)  # 4 MiB


def build_service():
    gallery = build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(7))
    return GalleryService(gallery)


def upload_blob(address, blob=_BLOB):
    with TcpTransport(*address) as transport:
        client = GalleryClient(transport, dialect=DIALECT_BINARY)
        client.create_gallery_model("p", "demand")
        instance = client.upload_model(
            "p", "demand", blob, metadata={"model_name": "rf"}
        )
    return instance["instance_id"]


def read_frames_until_complete(sock):
    """Read whole frames off *sock* until the reassembler emits a response.

    Returns ``(frame_sizes, complete_response_frame)``.
    """
    reassembler = wire.ChunkReassembler()
    sizes = []
    buf = bytearray()
    while True:
        while len(buf) >= _PREFIX.size:
            (length,) = _PREFIX.unpack_from(buf)
            total = _PREFIX.size + length
            if len(buf) < total:
                break
            frame = bytes(buf[:total])
            del buf[:total]
            sizes.append(len(frame))
            complete = reassembler.feed(frame)
            if complete is not None:
                return sizes, complete
        chunk = sock.recv(1 << 16)
        if not chunk:
            raise AssertionError("connection closed before a full response")
        buf += chunk


class TestServerFrameBounds:
    def test_4mib_blob_streams_in_bounded_frames(self):
        chunk_size = wire.DEFAULT_CHUNK_SIZE  # 256 KiB
        with GalleryTcpServer(build_service()) as server:
            instance_id = upload_blob(server.address)
            request = wire.encode_request(
                Request(
                    method="loadModelBlob",
                    params={"instance_id": instance_id},
                    request_id=41,
                ),
                DIALECT_BINARY,
            )
            with socket.create_connection(server.address, timeout=10.0) as sock:
                sock.sendall(request)
                sizes, complete = read_frames_until_complete(sock)
        # The response was actually chunked...
        assert len(sizes) >= len(_BLOB) // chunk_size
        # ...and no frame ever carried more than chunk_size of body (plus
        # the fixed length-prefix + chunk-header overhead).
        limit = _PREFIX.size + wire._CHUNK_HEADER.size + chunk_size
        assert max(sizes) <= limit
        response = wire.decode_response(complete)
        assert response.ok
        assert response.result == _BLOB

    def test_custom_chunk_size_is_honoured(self):
        chunk_size = 32 * 1024
        service = build_service()
        with GalleryTcpServer(service, chunk_size=chunk_size) as server:
            instance_id = upload_blob(server.address, b"x" * 200_000)
            request = wire.encode_request(
                Request(
                    method="loadModelBlob",
                    params={"instance_id": instance_id},
                    request_id=42,
                ),
                DIALECT_BINARY,
            )
            with socket.create_connection(server.address, timeout=10.0) as sock:
                sock.sendall(request)
                sizes, complete = read_frames_until_complete(sock)
        limit = _PREFIX.size + wire._CHUNK_HEADER.size + chunk_size
        assert len(sizes) > 1
        assert max(sizes) <= limit
        assert wire.decode_response(complete).result == b"x" * 200_000

    def test_json_client_gets_one_frame(self):
        with GalleryTcpServer(build_service()) as server:
            instance_id = upload_blob(server.address)
            request = wire.encode_request(
                Request(
                    method="loadModelBlob",
                    params={"instance_id": instance_id},
                    request_id=43,
                ),
                DIALECT_JSON,
            )
            with socket.create_connection(server.address, timeout=10.0) as sock:
                sock.sendall(request)
                sizes, complete = read_frames_until_complete(sock)
        assert len(sizes) == 1  # JSON dialect: single frame, as before
        response = wire.decode_response(complete)
        assert wire.decode_blob(response.result) == _BLOB


class _AbortAfterFirstChunk(wire.ResponseStream):
    """A chunked stream whose producer dies after the first chunk."""

    def __iter__(self):
        inner = super().__iter__()

        def frames():
            yield next(inner)
            raise RuntimeError("backing store vanished mid-stream")

        return frames()


class _MidStreamFailingService:
    """Delegates to a real service but breaks every chunked stream."""

    def __init__(self, service):
        self._service = service

    def __getattr__(self, name):
        return getattr(self._service, name)

    def handle_frame_stream(self, data, chunk_size=wire.DEFAULT_CHUNK_SIZE):
        stream = self._service.handle_frame_stream(data, chunk_size)
        if stream.single is not None:
            return stream
        return _AbortAfterFirstChunk(
            parts=stream._parts,
            total=stream.total,
            request_id=stream.request_id,
            chunk_size=stream._chunk_size,
        )


class TestMidStreamErrors:
    """Regression: a producer failure after chunk 1 must not hang clients."""

    def test_serial_client_sees_typed_error_not_a_hang(self):
        service = _MidStreamFailingService(build_service())
        with GalleryTcpServer(service) as server:
            instance_id = upload_blob(server.address)
            with TcpTransport(*server.address, timeout=10.0) as transport:
                client = GalleryClient(transport, dialect=DIALECT_BINARY)
                with pytest.raises(ServiceError) as excinfo:
                    client.load_model_blob(instance_id)
        assert "RuntimeError" in str(excinfo.value)

    def test_pipelined_client_sees_typed_error_not_a_hang(self):
        service = _MidStreamFailingService(build_service())
        with GalleryTcpServer(service) as server:
            instance_id = upload_blob(server.address)
            with PipelinedTcpTransport(*server.address, timeout=10.0) as t:
                client = GalleryClient(t, dialect=DIALECT_BINARY)
                with pytest.raises(ServiceError) as excinfo:
                    client.load_model_blob(instance_id)
        assert "RuntimeError" in str(excinfo.value)

    def test_small_responses_unaffected_by_breaking_wrapper(self):
        # Single-frame responses never enter the stream path, so the same
        # wrapped server still answers document calls.
        service = _MidStreamFailingService(build_service())
        with GalleryTcpServer(service) as server:
            with TcpTransport(*server.address) as transport:
                client = GalleryClient(transport, dialect=DIALECT_BINARY)
                assert client.audit_storage()["consistent"]


class TestPooledStreaming:
    def test_pool_submit_many_spreads_and_reassembles(self):
        with GalleryTcpServer(build_service()) as server:
            instance_id = upload_blob(server.address)
            pool = ConnectionPool(*server.address, size=4)
            try:
                client = GalleryClient(pool, dialect=DIALECT_BINARY)
                with client.pipeline() as pipe:
                    handles = [
                        pipe.load_model_blob(instance_id) for _ in range(8)
                    ]
                assert all(handle.result() == _BLOB for handle in handles)
                assert pool.dials > 1  # the batch really used several sockets
            finally:
                pool.close()

    def test_pool_concurrent_checkout_and_close_stress(self):
        """close() racing live checkouts must neither deadlock nor wedge."""
        with GalleryTcpServer(build_service()) as server:
            pool = ConnectionPool(*server.address, size=4)
            frame = wire.encode_request(
                Request(method="auditStorage", request_id=1), DIALECT_BINARY
            )
            errors: list[BaseException] = []
            done = threading.Event()

            def hammer():
                for _ in range(40):
                    try:
                        response = wire.decode_response(pool(frame))
                        assert response.ok
                    except ServiceError:
                        pass  # a concurrently closed socket is acceptable
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            def closer():
                while not done.is_set():
                    pool.close()

            workers = [threading.Thread(target=hammer) for _ in range(8)]
            close_thread = threading.Thread(target=closer)
            for worker in workers:
                worker.start()
            close_thread.start()
            for worker in workers:
                worker.join(timeout=60.0)
                assert not worker.is_alive(), "pool call deadlocked"
            done.set()
            close_thread.join(timeout=10.0)
            assert not close_thread.is_alive()
            assert errors == []
            # The pool still serves after all that.
            assert wire.decode_response(pool(frame)).ok
            pool.close()
