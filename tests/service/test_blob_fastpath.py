"""End-to-end coverage for the PR8 zero-copy blob fast path.

The invariants:

* sendfile serving and the ``_StreamOut`` copy fallback produce
  byte-identical wire payloads (forced-fallback parity via the
  ``tcp._sendfile`` hook, exactly how a sendfile-less platform presents);
* ``loadModelBlobRange`` round-trips every edge the clamp admits —
  offset 0, offset == size, length past EOF, zero-length, windows
  crossing chunk boundaries — on both transports and both dialects;
* range responses are digest-verified client-side, and a wrong digest
  raises :class:`BlobCorruptionError` at the client;
* bytes tampered on disk surface as a typed server-side
  :class:`BlobCorruptionError`, never as silently wrong bytes;
* the threaded (JSON-era) server and the JSON dialect keep working —
  they simply never take the sendfile path.
"""

from __future__ import annotations

import hashlib

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.errors import BlobCorruptionError, ValidationError
from repro.service import tcp
from repro.service.client import GalleryClient
from repro.service.server import GalleryService
from repro.service.tcp import (
    GalleryTcpServer,
    PipelinedTcpTransport,
    TcpTransport,
    ThreadedGalleryTcpServer,
)
from repro.service.wire import DIALECT_BINARY, DIALECT_JSON
from repro.store.blob import FilesystemBlobStore
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore

# Deliberately NOT chunk-aligned: 3 full 64 KiB chunks plus a ragged tail.
BLOB = bytes(range(256)) * (768 + 1) + b"tail-bytes!"
CHUNK = 64 * 1024


@pytest.fixture
def served_blob(tmp_path):
    """An event-loop server over a file-backed gallery with one blob."""
    store = FilesystemBlobStore(tmp_path / "blobs")
    dal = DataAccessLayer(InMemoryMetadataStore(), store, cache=None)
    gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(7))
    gallery.create_model("p", "demand")
    instance = gallery.upload_model(
        "p", "demand", BLOB, metadata={"model_name": "rf"}
    )
    with GalleryTcpServer(GalleryService(gallery), chunk_size=CHUNK) as server:
        yield server, instance.instance_id, store


def _client(address, dialect=DIALECT_BINARY, transport_cls=TcpTransport):
    transport = transport_cls(*address)
    return GalleryClient(transport, dialect=dialect), transport


class TestSendfileParity:
    def test_sendfile_serves_exact_bytes(self, served_blob):
        server, instance_id, store = served_blob
        client, transport = _client(server.address)
        with transport:
            assert client.load_model_blob(instance_id) == BLOB
        # The region path verified the digest exactly once.
        assert store.stats.digest_verifications == 1

    def test_forced_fallback_is_byte_identical(self, served_blob, monkeypatch):
        server, instance_id, _ = served_blob
        client, transport = _client(server.address)
        with transport:
            via_sendfile = client.load_model_blob(instance_id)
            monkeypatch.setattr(tcp, "_sendfile", None)
            via_fallback = client.load_model_blob(instance_id)
        assert via_sendfile == via_fallback == BLOB

    def test_pipelined_transport_and_ranges_interleave(self, served_blob):
        server, instance_id, _ = served_blob
        client, transport = _client(
            server.address, transport_cls=PipelinedTcpTransport
        )
        with transport:
            for offset in (0, CHUNK - 1, CHUNK, 5 * CHUNK + 17):
                window = client.load_blob_range(instance_id, offset, 4096)
                assert window == BLOB[offset : offset + 4096]
            assert client.load_model_blob(instance_id) == BLOB

    def test_json_dialect_still_round_trips(self, served_blob):
        server, instance_id, _ = served_blob
        client, transport = _client(server.address, dialect=DIALECT_JSON)
        with transport:
            assert client.load_model_blob(instance_id) == BLOB
            assert client.load_blob_range(instance_id, 10, 20) == BLOB[10:30]

    def test_threaded_server_never_needs_sendfile(self, tmp_path):
        store = FilesystemBlobStore(tmp_path / "blobs")
        dal = DataAccessLayer(InMemoryMetadataStore(), store, cache=None)
        gallery = Gallery(
            dal, clock=ManualClock(), id_factory=SeededIdFactory(7)
        )
        gallery.create_model("p", "demand")
        instance = gallery.upload_model(
            "p", "demand", BLOB, metadata={"model_name": "rf"}
        )
        with ThreadedGalleryTcpServer(GalleryService(gallery)) as server:
            client, transport = _client(server.address)
            with transport:
                assert client.load_model_blob(instance.instance_id) == BLOB
                window = client.load_blob_range(
                    instance.instance_id, 1000, 2000
                )
                assert window == BLOB[1000:3000]


class TestRangeEdges:
    @pytest.mark.parametrize(
        ("offset", "length"),
        [
            (0, 1),                      # first byte
            (0, None),                   # whole blob via the range API
            (len(BLOB) - 1, 1),          # last byte
            (len(BLOB), 16),             # offset at EOF -> empty
            (len(BLOB) + 5000, None),    # offset past EOF -> empty
            (len(BLOB) - 7, 100),        # length past EOF -> clamped tail
            (123, 0),                    # zero-length window
            (CHUNK - 3, 7),              # straddles a chunk boundary
            (2 * CHUNK, CHUNK),          # exactly one chunk, aligned
        ],
    )
    def test_range_edge_matches_slice(self, served_blob, offset, length):
        server, instance_id, _ = served_blob
        client, transport = _client(server.address)
        with transport:
            window = client.load_blob_range(instance_id, offset, length)
        expected = (
            BLOB[offset:] if length is None else BLOB[offset : offset + length]
        )
        assert window == expected

    def test_negative_offset_is_rejected(self, served_blob):
        server, instance_id, _ = served_blob
        client, transport = _client(server.address)
        with transport:
            with pytest.raises(ValidationError):
                client.load_blob_range(instance_id, -1, 10)

    @given(
        offset=st.integers(min_value=0, max_value=len(BLOB) + 100),
        length=st.one_of(
            st.none(), st.integers(min_value=0, max_value=len(BLOB))
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_fuzzed_ranges_match_slices(self, shared_served_blob, offset, length):
        client, instance_id = shared_served_blob
        window = client.load_blob_range(instance_id, offset, length)
        expected = (
            BLOB[offset:] if length is None else BLOB[offset : offset + length]
        )
        assert window == expected


@pytest.fixture(scope="module")
def shared_served_blob(tmp_path_factory):
    """One live server + client shared across hypothesis examples."""
    tmp_path = tmp_path_factory.mktemp("fuzz-blobs")
    store = FilesystemBlobStore(tmp_path / "blobs")
    dal = DataAccessLayer(InMemoryMetadataStore(), store, cache=None)
    gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(7))
    gallery.create_model("p", "demand")
    instance = gallery.upload_model(
        "p", "demand", BLOB, metadata={"model_name": "rf"}
    )
    with GalleryTcpServer(GalleryService(gallery), chunk_size=CHUNK) as server:
        with TcpTransport(*server.address) as transport:
            client = GalleryClient(transport, dialect=DIALECT_BINARY)
            yield client, instance.instance_id


class TestIntegrity:
    def _tamper(self, store_root, location):
        digest = location.removeprefix("fs://")
        path = store_root / digest[:2] / digest[2:4] / digest
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0x40
        path.write_bytes(bytes(raw))

    def test_tampered_blob_raises_typed_error(self, served_blob, tmp_path):
        server, instance_id, store = served_blob
        [location] = store.locations()
        self._tamper(tmp_path / "blobs", location)
        client, transport = _client(server.address)
        with transport:
            with pytest.raises(BlobCorruptionError):
                client.load_model_blob(instance_id)
            with pytest.raises(BlobCorruptionError):
                client.load_blob_range(instance_id, 0, 64)

    def test_tamper_after_verified_serve_is_still_caught(
        self, served_blob, tmp_path
    ):
        server, instance_id, store = served_blob
        client, transport = _client(server.address)
        with transport:
            assert client.load_model_blob(instance_id) == BLOB  # verified
            [location] = store.locations()
            self._tamper(tmp_path / "blobs", location)  # mtime changes
            with pytest.raises(BlobCorruptionError):
                client.load_model_blob(instance_id)

    def test_client_rejects_response_with_wrong_digest(self, tmp_path):
        store = FilesystemBlobStore(tmp_path / "blobs")
        dal = DataAccessLayer(InMemoryMetadataStore(), store, cache=None)
        gallery = Gallery(
            dal, clock=ManualClock(), id_factory=SeededIdFactory(7)
        )
        gallery.create_model("p", "demand")
        instance = gallery.upload_model(
            "p", "demand", BLOB, metadata={"model_name": "rf"}
        )

        real = gallery.load_instance_blob_range

        def lying_range(instance_id, offset, length):
            blob_range = real(instance_id, offset, length)
            blob_range.digest = hashlib.sha256(b"not the bytes").hexdigest()
            return blob_range

        gallery.load_instance_blob_range = lying_range
        with GalleryTcpServer(GalleryService(gallery)) as server:
            client, transport = _client(server.address)
            with transport:
                with pytest.raises(BlobCorruptionError):
                    client.load_blob_range(instance.instance_id, 0, 128)
