"""Tests for the typed error mapping across the wire.

A server-relayed failure must come back as the *same exception class* the
server raised — clients catch :class:`NotFoundError`, not a stringly-typed
:class:`ServiceError` they have to re-parse — while ``.error_type`` keeps
the wire-level name for legacy callers.
"""

import pytest

from repro import errors
from repro.errors import (
    BlobCorruptionError,
    GalleryError,
    NotFoundError,
    ServiceError,
    ValidationError,
)
from repro.service import wire


class TestErrorClassFor:
    def test_known_types_resolve_to_their_classes(self):
        assert errors.error_class_for("NotFoundError") is NotFoundError
        assert errors.error_class_for("ValidationError") is ValidationError
        assert errors.error_class_for("BlobCorruptionError") is BlobCorruptionError
        assert errors.error_class_for("ServiceError") is ServiceError
        assert errors.error_class_for("GalleryError") is GalleryError

    def test_unknown_types_resolve_to_none(self):
        assert errors.error_class_for("TotallyMadeUpError") is None
        assert errors.error_class_for("") is None

    def test_non_gallery_names_are_not_resolvable(self):
        # only the repro.errors hierarchy is addressable from the wire —
        # a malicious/buggy error_type cannot summon arbitrary classes
        assert errors.error_class_for("KeyError") is None
        assert errors.error_class_for("SystemExit") is None


def raise_from_wire(error_type, message="boom"):
    response = wire.Response(
        ok=False, error_type=error_type, error_message=message, request_id=1
    )
    with pytest.raises(Exception) as excinfo:
        response.raise_if_error()
    return excinfo.value


class TestRaiseIfError:
    def test_ok_response_returns_the_result(self):
        assert wire.Response(ok=True, result=41).raise_if_error() == 41

    @pytest.mark.parametrize(
        "error_type, exc_class",
        [
            ("NotFoundError", NotFoundError),
            ("ValidationError", ValidationError),
            ("BlobCorruptionError", BlobCorruptionError),
            ("ServiceError", ServiceError),
        ],
    )
    def test_typed_errors_raise_their_original_class(self, error_type, exc_class):
        exc = raise_from_wire(error_type, "instance ghost not found")
        assert type(exc) is exc_class
        assert "instance ghost not found" in str(exc)
        assert exc.error_type == error_type

    def test_unknown_error_type_falls_back_to_service_error(self):
        exc = raise_from_wire("ExoticFutureError", "what even")
        assert type(exc) is ServiceError
        assert "ExoticFutureError" in str(exc)  # name preserved in message
        assert exc.error_type == "ExoticFutureError"

    def test_empty_error_type_falls_back_to_service_error(self):
        exc = raise_from_wire("", "anonymous failure")
        assert type(exc) is ServiceError
        assert exc.error_type == ""

    def test_round_trip_through_encode_decode(self):
        encoded = wire.encode_response(
            wire.error_response(NotFoundError("no such instance"), request_id=9),
            wire.DIALECT_BINARY,
        )
        decoded = wire.decode_response(encoded)
        with pytest.raises(NotFoundError) as excinfo:
            decoded.raise_if_error()
        assert excinfo.value.error_type == "NotFoundError"


class TestEndToEnd:
    def test_client_catches_typed_errors_from_a_live_service(self, tmp_path):
        from repro.core.clock import ManualClock
        from repro.core.ids import SeededIdFactory
        from repro.core.registry import Gallery
        from repro.service.client import GalleryClient, InProcessTransport
        from repro.service.server import GalleryService
        from repro.store.blob import FilesystemBlobStore
        from repro.store.cache import LRUBlobCache
        from repro.store.dal import DataAccessLayer
        from repro.store.metadata_store import InMemoryMetadataStore

        dal = DataAccessLayer(
            InMemoryMetadataStore(),
            FilesystemBlobStore(tmp_path),
            LRUBlobCache(4),
        )
        gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(11))
        client = GalleryClient(InProcessTransport(GalleryService(gallery)))
        with pytest.raises(NotFoundError):
            client.call("getModelInstance", instance_id="ghost")
        client.create_gallery_model("p", "demand")
        with pytest.raises(ValidationError):
            client.create_gallery_model("p", "demand")  # duplicate
