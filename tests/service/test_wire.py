"""Tests for the wire protocol: framing, errors, blob encoding."""

import pytest

from repro.errors import NotFoundError, ServiceError, WireFormatError
from repro.service import wire
from repro.service.wire import Request, Response


class TestRequestFraming:
    def test_round_trip(self):
        request = Request(method="modelQuery", params={"constraints": []}, request_id=7)
        restored = wire.decode_request(wire.encode_request(request))
        assert restored == request

    def test_empty_method_rejected(self):
        with pytest.raises(WireFormatError):
            Request(method="")

    def test_truncated_frame_rejected(self):
        data = wire.encode_request(Request(method="m"))
        with pytest.raises(WireFormatError):
            wire.decode_request(data[:-3])

    def test_short_frame_rejected(self):
        with pytest.raises(WireFormatError):
            wire.decode_request(b"123")

    def test_non_json_body_rejected(self):
        frame = wire.encode_request(Request(method="m"))
        corrupted = frame[:8] + b"x" * (len(frame) - 8)
        with pytest.raises(WireFormatError):
            wire.decode_request(corrupted)

    def test_non_object_body_rejected(self):
        import struct

        payload = b"[1,2,3]"
        with pytest.raises(WireFormatError):
            wire.decode_request(struct.pack(">Q", len(payload)) + payload)

    def test_unserializable_params_rejected(self):
        with pytest.raises(WireFormatError):
            wire.encode_request(Request(method="m", params={"blob": b"raw"}))


class TestResponseFraming:
    def test_success_round_trip(self):
        response = Response(ok=True, result={"x": 1}, request_id=3)
        restored = wire.decode_response(wire.encode_response(response))
        assert restored.raise_if_error() == {"x": 1}
        assert restored.request_id == 3

    def test_error_reraises_original_class(self):
        response = wire.error_response(NotFoundError("no model m1"), request_id=2)
        restored = wire.decode_response(wire.encode_response(response))
        with pytest.raises(NotFoundError, match="no model m1"):
            restored.raise_if_error()

    def test_unknown_error_type_falls_back_to_service_error(self):
        response = Response(ok=False, error_type="AlienError", error_message="?")
        with pytest.raises(ServiceError):
            response.raise_if_error()


class TestBlobEncoding:
    def test_round_trip(self):
        payload = bytes(range(256))
        assert wire.decode_blob(wire.encode_blob(payload)) == payload

    def test_empty_blob(self):
        assert wire.decode_blob(wire.encode_blob(b"")) == b""

    def test_invalid_base64_rejected(self):
        with pytest.raises(WireFormatError):
            wire.decode_blob("!!! not base64 !!!")
