"""Dynamic fleet membership: registry parsing, sources, the polling
:class:`FleetRegistry`, live ``update_endpoints`` swaps, and the
ConnectionPool eviction regression (no fd leak across 100 add/remove
cycles against real TCP replicas)."""

import http.server
import os
import threading
import time

import pytest

from repro.core.registry import Gallery
from repro.errors import FleetRegistryError, ValidationError
from repro.service import wire
from repro.service.client import MethodRetryPolicies
from repro.service.endpoints import Endpoint, EndpointSet, FailoverTransport
from repro.service.membership import (
    DEFAULT_POLL_INTERVAL,
    FileRegistrySource,
    FleetRegistry,
    HttpRegistrySource,
    StaticRegistrySource,
    fleet_endpoints,
    fleet_from_url,
    parse_registry,
)
from repro.service.server import GalleryService
from repro.service.tcp import ConnectionPool, GalleryTcpServer
from repro.store.blob import InMemoryBlobStore
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore

from tests.service.test_endpoints import (
    Fleet,
    fast_policies,
    ok_frame,
    read_frame,
)


# ---------------------------------------------------------------------------
# parse_registry
# ---------------------------------------------------------------------------


class TestParseRegistry:
    def test_basic_lines_comments_and_blanks(self):
        text = """
        # the serving fleet
        10.0.0.1:9000
        10.0.0.2:9001   # canary

        10.0.0.3:9002
        """
        endpoints = parse_registry(text)
        assert [e.address for e in endpoints] == [
            "10.0.0.1:9000", "10.0.0.2:9001", "10.0.0.3:9002",
        ]

    def test_malformed_line_is_loud_with_line_number(self):
        with pytest.raises(FleetRegistryError, match="line 2"):
            parse_registry("a:1\nnot-an-endpoint\n", origin="fleet.txt")

    def test_non_numeric_port(self):
        with pytest.raises(FleetRegistryError, match="non-numeric port"):
            parse_registry("host:http")

    def test_port_out_of_range(self):
        with pytest.raises(FleetRegistryError, match="out of range"):
            parse_registry("host:70000")

    def test_missing_host(self):
        with pytest.raises(FleetRegistryError, match="must be host:port"):
            parse_registry(":9000")

    def test_duplicate_endpoint_rejected(self):
        with pytest.raises(FleetRegistryError, match="duplicate"):
            parse_registry("a:1\nb:2\na:1\n")

    def test_empty_registry_is_loud(self):
        with pytest.raises(FleetRegistryError, match="empty"):
            parse_registry("# only comments\n\n")

    def test_origin_lands_in_message(self):
        with pytest.raises(FleetRegistryError, match="fleet.txt"):
            parse_registry("", origin="fleet.txt")


# ---------------------------------------------------------------------------
# registry sources
# ---------------------------------------------------------------------------


class TestSources:
    def test_static_source(self):
        source = StaticRegistrySource([Endpoint("a", 1)])
        assert source.load() == (Endpoint("a", 1),)
        source.replace([Endpoint("b", 2), Endpoint("c", 3)])
        assert [e.address for e in source.load()] == ["b:2", "c:3"]

    def test_static_source_rejects_empty(self):
        with pytest.raises(FleetRegistryError):
            StaticRegistrySource([])

    def test_file_source_reads_and_reports_path(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text("a:1\nb:2\n")
        source = FileRegistrySource(str(path))
        assert [e.address for e in source.load()] == ["a:1", "b:2"]
        assert str(path) in source.describe()

    def test_file_source_missing_file_is_typed(self, tmp_path):
        source = FileRegistrySource(str(tmp_path / "nope.txt"))
        with pytest.raises(FleetRegistryError, match="cannot read"):
            source.load()

    def test_http_source_round_trip(self):
        class Handler(http.server.BaseHTTPRequestHandler):
            body = b"a:1\nb:2\n"
            status = 200

            def do_GET(self):
                self.send_response(self.status)
                self.end_headers()
                self.wfile.write(self.body)

            def log_message(self, *args):  # quiet
                pass

        server = http.server.HTTPServer(("127.0.0.1", 0), Handler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = "http://127.0.0.1:%d/fleet" % server.server_address[1]
            source = HttpRegistrySource(url, timeout=5.0)
            assert [e.address for e in source.load()] == ["a:1", "b:2"]
            Handler.status = 503
            Handler.body = b""
            with pytest.raises(FleetRegistryError):
                source.load()
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5.0)

    def test_http_source_unreachable_is_typed(self):
        source = HttpRegistrySource("http://127.0.0.1:1/fleet", timeout=0.2)
        with pytest.raises(FleetRegistryError, match="cannot fetch"):
            source.load()


# ---------------------------------------------------------------------------
# FleetRegistry
# ---------------------------------------------------------------------------


class TestFleetRegistry:
    def test_refresh_bumps_epoch_only_on_change(self):
        source = StaticRegistrySource([Endpoint("a", 1)])
        registry = FleetRegistry(source)
        assert registry.refresh() is True
        assert registry.epoch == 1
        assert registry.refresh() is False  # identical load: free
        assert registry.epoch == 1
        source.replace([Endpoint("a", 1), Endpoint("b", 2)])
        assert registry.refresh() is True
        assert registry.epoch == 2
        assert [e.address for e in registry.endpoints()] == ["a:1", "b:2"]

    def test_subscribers_get_endpoints_and_epoch(self):
        source = StaticRegistrySource([Endpoint("a", 1)])
        registry = FleetRegistry(source)
        seen = []
        registry.subscribe(lambda eps, epoch: seen.append((eps, epoch)))
        registry.refresh()
        source.replace([Endpoint("b", 2)])
        registry.refresh()
        assert seen == [
            ((Endpoint("a", 1),), 1),
            ((Endpoint("b", 2),), 2),
        ]

    def test_subscribe_replays_current_set(self):
        source = StaticRegistrySource([Endpoint("a", 1)])
        registry = FleetRegistry(source)
        registry.refresh()
        seen = []
        registry.subscribe(lambda eps, epoch: seen.append(epoch), replay=True)
        assert seen == [1]
        late = []
        registry.subscribe(lambda eps, epoch: late.append(epoch), replay=False)
        assert late == []

    def test_unresolved_registry_is_loud(self):
        registry = FleetRegistry(StaticRegistrySource([Endpoint("a", 1)]))
        with pytest.raises(FleetRegistryError, match="never resolved"):
            registry.endpoints()

    def test_first_resolve_failure_raises(self, tmp_path):
        registry = FleetRegistry(FileRegistrySource(str(tmp_path / "gone")))
        with pytest.raises(FleetRegistryError):
            registry.refresh()

    def test_later_failures_keep_last_good_set(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text("a:1\n")
        registry = FleetRegistry(FileRegistrySource(str(path)))
        registry.refresh()
        path.unlink()  # registry outage
        assert registry.refresh() is False  # parked, not raised
        assert isinstance(registry.last_error, FleetRegistryError)
        assert [e.address for e in registry.endpoints()] == ["a:1"]
        path.write_text("a:1\nb:2\n")  # outage over
        assert registry.refresh() is True
        assert registry.last_error is None

    def test_poller_picks_up_file_edits(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text("a:1\n")
        registry = FleetRegistry(
            FileRegistrySource(str(path)), poll_interval=0.02
        )
        changes = []
        registry.subscribe(lambda eps, epoch: changes.append(eps))
        registry.start()
        try:
            path.write_text("a:1\nb:2\n")
            deadline = time.monotonic() + 5.0
            while len(changes) < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
            assert [e.address for e in changes[-1]] == ["a:1", "b:2"]
        finally:
            registry.stop()

    def test_bad_poll_interval(self):
        with pytest.raises(FleetRegistryError):
            FleetRegistry(
                StaticRegistrySource([Endpoint("a", 1)]), poll_interval=0
            )


# ---------------------------------------------------------------------------
# fleet_from_url / fleet_endpoints
# ---------------------------------------------------------------------------


class TestFleetUrls:
    def test_file_url_with_options(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text("a:1\nb:2\n")
        registry, endpoint_set = fleet_from_url(
            f"gallery+file://{path}?poll=0.25&routing=roundrobin&timeout=3"
        )
        assert [e.address for e in endpoint_set.endpoints] == ["a:1", "b:2"]
        assert endpoint_set.routing == "roundrobin"
        assert endpoint_set.timeout == 3.0
        assert registry._poll_interval == 0.25  # noqa: SLF001 - test probe
        assert DEFAULT_POLL_INTERVAL != 0.25

    def test_rejects_non_fleet_scheme(self):
        with pytest.raises(FleetRegistryError, match="unsupported"):
            fleet_from_url("gallery+ftp://somewhere/fleet")
        with pytest.raises(FleetRegistryError, match="not a fleet URL"):
            fleet_from_url("host:port")

    def test_rejects_bad_poll(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text("a:1\n")
        with pytest.raises(FleetRegistryError, match="not a number"):
            fleet_from_url(f"gallery+file://{path}?poll=soon")
        with pytest.raises(FleetRegistryError, match="positive"):
            fleet_from_url(f"gallery+file://{path}?poll=0")

    def test_missing_registry_path(self):
        with pytest.raises(FleetRegistryError, match="no registry path"):
            fleet_from_url("gallery+file://")

    def test_fleet_endpoints_resolves_all_shapes(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text("a:1\nb:2\n")
        assert fleet_endpoints(f"gallery+file://{path}") == ("a:1", "b:2")
        assert fleet_endpoints("gallery://x:1,y:2") == ("x:1", "y:2")
        assert fleet_endpoints("z:3") == ("z:3",)


# ---------------------------------------------------------------------------
# live membership swaps on FailoverTransport
# ---------------------------------------------------------------------------


def ep(address):
    host, port = address.rsplit(":", 1)
    return Endpoint(host, int(port))


def scripted_transport(addresses):
    fleet = Fleet({a: (lambda d: ok_frame("ok")) for a in addresses})
    endpoints = tuple(ep(a) for a in addresses)
    transport = FailoverTransport(
        EndpointSet(endpoints=endpoints, routing="roundrobin"),
        policies=fast_policies(),
        transport_factory=fleet.factory,
        sleep=lambda s: None,
    )
    return fleet, transport


class TestUpdateEndpoints:
    def test_swap_keeps_survivors_and_retires_departed(self):
        fleet = Fleet({
            "a:1": lambda d: ok_frame("a"),
            "b:2": lambda d: ok_frame("b"),
            "c:3": lambda d: ok_frame("c"),
        })
        transport = FailoverTransport(
            EndpointSet(
                endpoints=(Endpoint("a", 1), Endpoint("b", 2)),
                routing="roundrobin",
            ),
            policies=fast_policies(),
            transport_factory=fleet.factory,
            sleep=lambda s: None,
        )
        for _ in range(4):
            transport(read_frame())
        assert fleet.calls("a:1") == 2 and fleet.calls("b:2") == 2
        survivor_ewma = transport.load_report()["a:1"]["ewma_ms"]

        changed = transport.update_endpoints(
            (Endpoint("a", 1), Endpoint("c", 3))
        )
        assert changed is True
        assert transport.membership_swaps == 1
        assert transport.membership_epoch == 1
        # departed replica's connection closed immediately (it was idle)
        assert fleet.dialed["b:2"][0].closed == 1
        # the survivor kept its measured state (same EWMA, warm transport)
        assert transport.load_report()["a:1"]["ewma_ms"] == survivor_ewma
        for _ in range(4):
            transport(read_frame())
        assert len(fleet.dialed["a:1"]) == 1  # no re-dial: connection warm
        assert fleet.calls("c:3") == 2

    def test_identical_swap_is_free(self):
        _fleet, transport = scripted_transport(["a:1", "b:2"])
        assert transport.update_endpoints(
            (Endpoint("a", 1), Endpoint("b", 2))
        ) is False
        assert transport.membership_swaps == 0
        assert transport.membership_epoch == 0

    def test_empty_swap_refused(self):
        _fleet, transport = scripted_transport(["a:1"])
        with pytest.raises(ValidationError, match="empty endpoint set"):
            transport.update_endpoints(())

    def test_explicit_epoch_is_stamped(self):
        _fleet, transport = scripted_transport(["a:1"])
        transport.update_endpoints((Endpoint("b", 2),), epoch=42)
        assert transport.membership_epoch == 42

    def test_departed_endpoint_with_inflight_closes_on_finish(self):
        fleet, transport = scripted_transport(["a:1", "b:2"])
        transport(read_frame())
        transport(read_frame())  # both endpoints dialed and warm
        state_b = next(
            s for s in transport._states  # noqa: SLF001 - test probe
            if s.endpoint.address == "b:2"
        )
        state_b.begin()  # simulate a request still on the wire to b
        transport.update_endpoints((Endpoint("a", 1),))
        assert fleet.dialed["b:2"][0].closed == 0  # close deferred
        state_b.end()  # in-flight call finishes
        assert fleet.dialed["b:2"][0].closed == 1

    def test_registry_feeds_transport_live(self, tmp_path):
        path = tmp_path / "fleet.txt"
        path.write_text("a:1\n")
        fleet = Fleet({
            "a:1": lambda d: ok_frame("a"),
            "b:2": lambda d: ok_frame("b"),
        })
        registry = FleetRegistry(FileRegistrySource(str(path)))
        registry.refresh()
        transport = FailoverTransport(
            EndpointSet(endpoints=registry.endpoints(), routing="roundrobin"),
            policies=fast_policies(),
            transport_factory=fleet.factory,
            sleep=lambda s: None,
        )
        registry.subscribe(transport.update_endpoints, replay=False)
        path.write_text("a:1\nb:2\n")
        registry.refresh()
        assert [e.address for e in transport.endpoints] == ["a:1", "b:2"]
        assert transport.membership_epoch == registry.epoch
        for _ in range(2):
            transport(read_frame())
        assert fleet.calls("b:2") == 1  # the new replica serves traffic


# ---------------------------------------------------------------------------
# ConnectionPool eviction (satellite fix)
# ---------------------------------------------------------------------------


class TestConnectionPoolEviction:
    def test_close_mid_flight_evicts_instead_of_repooling(self):
        class FakeTransport:
            def __init__(self):
                self.closed = 0

            def __call__(self, data):
                pool.close()  # membership swap lands mid-call
                return b"ok"

            def close(self):
                self.closed += 1

        made = []

        def factory():
            transport = FakeTransport()
            made.append(transport)
            return transport

        pool = ConnectionPool("h", 1, size=1, transport_factory=factory)
        assert pool(b"x") == b"ok"
        # the in-flight transport was NOT returned to the pool: it is
        # closed, and the next call dials a fresh connection.
        assert made[0].closed == 1
        assert pool(b"x") == b"ok"
        assert len(made) == 2

    def test_normal_close_still_drains_idle_slots(self):
        class FakeTransport:
            def __init__(self):
                self.closed = 0

            def __call__(self, data):
                return b"ok"

            def close(self):
                self.closed += 1

        made = []

        def factory():
            transport = FakeTransport()
            made.append(transport)
            return transport

        pool = ConnectionPool("h", 1, size=2, transport_factory=factory)
        pool(b"x")
        pool.close()
        assert made[0].closed == 1


def open_fds():
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="needs /proc (Linux)"
)
def test_no_fd_leak_after_100_membership_cycles():
    """Satellite regression: 100 add/remove cycles over real TCP replicas
    must not accumulate sockets for departed endpoints."""

    def build_server():
        gallery = Gallery(
            DataAccessLayer(InMemoryMetadataStore(), InMemoryBlobStore())
        )
        return GalleryTcpServer(GalleryService(gallery)).start()

    stable, churn = build_server(), build_server()
    stable_ep = Endpoint(*stable.address)
    churn_ep = Endpoint(*churn.address)
    transport = FailoverTransport(
        EndpointSet(
            endpoints=(stable_ep,), transport="pooled", routing="roundrobin"
        ),
        policies=fast_policies(),
        sleep=lambda s: None,
    )
    try:
        transport(read_frame())  # warm the stable endpoint
        baseline = open_fds()
        for _ in range(100):
            transport.update_endpoints((stable_ep, churn_ep))
            # drive a call to each endpoint so the churned one dials
            transport(read_frame())
            transport(read_frame())
            transport.update_endpoints((stable_ep,))
        # allow a tiny slop for pool internals, but 100 leaked sockets
        # (the pre-fix behaviour) is unmistakable
        assert open_fds() <= baseline + 4, "membership churn leaked fds"
    finally:
        transport.close()
        stable.stop()
        churn.stop()
