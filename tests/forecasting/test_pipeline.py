"""Tests for the Gallery-wired training pipeline and retraining monitor."""

import pytest

from repro.core.health import DriftDetector
from repro.forecasting.features import FeatureSpec
from repro.forecasting.models import RidgeRegression, deserialize
from repro.forecasting.pipeline import (
    ForecastingPipeline,
    ModelSpecification,
    RetrainingMonitor,
)
from repro.forecasting.workload import CityProfile, generate_city_demand

SPEC = ModelSpecification(
    name="ridge",
    factory=lambda: RidgeRegression(l2=1.0),
    feature_spec=FeatureSpec(lags=(1, 2, 3, 24), rolling_windows=(6,)),
)


@pytest.fixture
def series():
    return generate_city_demand(CityProfile(name="sf", base_demand=150), 24 * 7 * 4, seed=5)


@pytest.fixture
def pipeline(memory_gallery):
    return ForecastingPipeline(memory_gallery)


class TestTrainCity:
    def test_trains_registers_and_scores(self, pipeline, series):
        trained = pipeline.train_city(series, SPEC)
        assert trained.city == "sf"
        assert 0 <= trained.validation_metrics["mape"] < 0.5
        instance = pipeline.gallery.get_instance(trained.instance.instance_id)
        assert instance.metadata["city"] == "sf"
        assert instance.metadata["model_name"] == "linear_regression"

    def test_blob_is_a_working_model(self, pipeline, series):
        trained = pipeline.train_city(series, SPEC)
        blob = pipeline.gallery.load_instance_blob(trained.instance.instance_id)
        model = deserialize(blob)
        import numpy as np

        from repro.forecasting.features import build_dataset

        dataset = build_dataset(series.values, SPEC.feature_spec)
        predictions = model.predict(dataset.features[-10:])
        assert np.all(np.isfinite(predictions))

    def test_reproducibility_metadata_complete(self, pipeline, series):
        trained = pipeline.train_city(series, SPEC)
        report = pipeline.gallery.instance_health(trained.instance.instance_id)
        assert report.completeness.reproducible

    def test_validation_metrics_recorded_in_gallery(self, pipeline, series):
        trained = pipeline.train_city(series, SPEC)
        names = {m.name for m in pipeline.gallery.metrics_of(trained.instance.instance_id)}
        assert {"mape", "mae", "bias", "r2"} <= names

    def test_model_created_once_per_spec(self, pipeline, series):
        pipeline.train_city(series, SPEC)
        pipeline.train_city(series, SPEC)
        models = pipeline.gallery.models()
        assert len(models) == 1
        assert len(pipeline.gallery.instances_of(SPEC.base_version_id())) == 2

    def test_compute_accounting(self, pipeline, series):
        pipeline.train_city(series, SPEC)
        assert pipeline.stats.fits == 1
        assert pipeline.stats.compute_units > 0

    def test_train_hours_window(self, pipeline, series):
        trained = pipeline.train_city(series, SPEC, train_hours=300)
        assert "hours-0-300" in trained.instance.metadata["training_data_version"]


class TestTrainFleet:
    def test_all_city_spec_combinations(self, pipeline):
        fleet = [
            generate_city_demand(CityProfile(name=f"c{i}", base_demand=100), 24 * 7 * 3, seed=i)
            for i in range(3)
        ]
        second_spec = ModelSpecification(
            name="ridge2",
            factory=lambda: RidgeRegression(l2=10.0),
            feature_spec=SPEC.feature_spec,
        )
        trained = pipeline.train_fleet(fleet, [SPEC, second_spec])
        assert len(trained) == 6
        assert ("c1", "ridge") in trained


class TestRetrainingMonitor:
    def make_monitor(self, pipeline):
        return RetrainingMonitor(
            pipeline=pipeline,
            detector_factory=lambda: DriftDetector(
                baseline_window=4, recent_window=2, ratio_threshold=1.5, patience=2
            ),
        )

    def test_stable_city_never_flags(self, pipeline):
        monitor = self.make_monitor(pipeline)
        for _ in range(30):
            assert not monitor.observe("sf", 0.10)

    def test_drifted_city_flags_and_retrains(self, pipeline, series):
        monitor = self.make_monitor(pipeline)
        detected = False
        for error in [0.1] * 6 + [0.3] * 4:
            detected = monitor.observe("sf", error)
        assert detected
        monitor.retrain(series, SPEC)
        assert monitor.retrained_cities == ["sf"]
        # detector reset: stable readings do not re-flag
        assert not monitor.observe("sf", 0.1)

    def test_per_city_isolation(self, pipeline):
        monitor = self.make_monitor(pipeline)
        for error in [0.1] * 6 + [0.5] * 4:
            monitor.observe("drifting", error)
        for _ in range(10):
            assert not monitor.observe("stable", 0.1)


class TestMultiQuantity:
    """Section 2: Gallery shards per city AND per quantity (supply/demand)."""

    def test_quantities_get_separate_models(self, pipeline, series):
        demand = pipeline.train_city(series, SPEC, quantity="demand")
        supply = pipeline.train_city(series, SPEC, quantity="supply")
        assert demand.instance.base_version_id == "demand_ridge"
        assert supply.instance.base_version_id == "supply_ridge"
        assert demand.instance.model_id != supply.instance.model_id
        assert len(pipeline.gallery.models()) == 2

    def test_quantity_recorded_in_domain_metadata(self, pipeline, series):
        supply = pipeline.train_city(series, SPEC, quantity="supply")
        assert supply.instance.metadata["model_domain"] == "supply"

    def test_search_separates_quantities(self, pipeline, series):
        pipeline.train_city(series, SPEC, quantity="demand")
        pipeline.train_city(series, SPEC, quantity="supply")
        hits = pipeline.gallery.model_query(
            [{"field": "modelDomain", "operator": "equal", "value": "supply"}]
        )
        assert len(hits) == 1
        assert hits[0].base_version_id == "supply_ridge"
