"""Tests for dynamic model switching (Section 4.2 mechanics)."""

import pytest

from repro.core.clock import ManualClock
from repro.errors import NotFoundError
from repro.forecasting.features import FeatureSpec
from repro.forecasting.models import RidgeRegression
from repro.forecasting.pipeline import ForecastingPipeline, ModelSpecification
from repro.forecasting.switching import (
    EventSwitchingController,
    ModelCache,
    Switchboard,
    register_switch_action,
    simulate_serving,
)
from repro.forecasting.workload import (
    CityProfile,
    EventWindow,
    HOURS_PER_DAY,
    HOURS_PER_WEEK,
    generate_city_demand,
)
from repro.rules.actions import ActionContext, ActionRegistry
from repro.rules.engine import RuleEngine


class TestSwitchboard:
    def test_assign_and_query(self):
        board = Switchboard()
        board.assign("sf", "inst-1", hour=5)
        assert board.serving("sf") == "inst-1"

    def test_noop_switch_not_recorded(self):
        board = Switchboard()
        board.assign("sf", "inst-1")
        board.assign("sf", "inst-1")
        assert board.switch_count("sf") == 1

    def test_unserved_city_raises(self):
        with pytest.raises(NotFoundError):
            Switchboard().serving("ghost")

    def test_history_records_reason_and_hour(self):
        board = Switchboard()
        board.assign("sf", "inst-1", hour=3, reason="event window")
        record = board.history[0]
        assert (record.city, record.hour, record.reason) == ("sf", 3, "event window")


class TestSwitchAction:
    def test_action_updates_switchboard(self):
        board = Switchboard()
        actions = ActionRegistry()
        register_switch_action(actions, board)
        result = actions.execute(
            ActionContext(
                rule_uuid="r1",
                action="switch_model",
                params={"city": "sf", "hour": 9},
                instance_id="inst-2",
                document={"city": "sf"},
            )
        )
        assert result.ok
        assert board.serving("sf") == "inst-2"
        assert board.history[0].hour == 9

    def test_city_falls_back_to_document(self):
        board = Switchboard()
        actions = ActionRegistry()
        register_switch_action(actions, board)
        actions.execute(
            ActionContext(
                rule_uuid="r1",
                action="switch_model",
                params={},
                instance_id="inst-3",
                document={"city": "nyc"},
            )
        )
        assert board.serving("nyc") == "inst-3"


@pytest.fixture
def switching_world(memory_gallery):
    """One city with a holiday in the serving window; base + event models."""
    # Holidays recur during training (weeks 1-2) so the event-aware model
    # learns the flag, plus one in the serving window (week 4).
    events = tuple(
        EventWindow(
            start=week * HOURS_PER_WEEK + 2 * HOURS_PER_DAY,
            end=week * HOURS_PER_WEEK + 3 * HOURS_PER_DAY,
            multiplier=1.8,
            name=f"holiday-w{week}",
        )
        for week in (1, 2, 3)
    )
    series = generate_city_demand(
        CityProfile(name="sf", base_demand=150, events=events),
        hours=4 * HOURS_PER_WEEK,
        seed=2,
    )
    pipeline = ForecastingPipeline(memory_gallery)
    base_spec = ModelSpecification(
        "ridge_base", lambda: RidgeRegression(), FeatureSpec(event_flag=False)
    )
    event_spec = ModelSpecification(
        "ridge_event", lambda: RidgeRegression(), FeatureSpec(event_flag=True)
    )
    train_hours = 3 * HOURS_PER_WEEK
    base = pipeline.train_city(series, base_spec, train_hours=train_hours)
    event = pipeline.train_city(series, event_spec, train_hours=train_hours)
    engine = RuleEngine(memory_gallery, clock=ManualClock())
    board = Switchboard()
    controller = EventSwitchingController(memory_gallery, engine, board)
    return {
        "gallery": memory_gallery,
        "series": series,
        "base": base,
        "event": event,
        "controller": controller,
        "board": board,
        "train_hours": train_hours,
        "specs": {
            base.instance.instance_id: base_spec.feature_spec,
            event.instance.instance_id: event_spec.feature_spec,
        },
    }


class TestController:
    def test_champion_prefers_event_model_during_events(self, switching_world):
        w = switching_world
        assert w["controller"].champion("sf", event_active=True) == w["event"].instance.instance_id
        assert w["controller"].champion("sf", event_active=False) == w["base"].instance.instance_id

    def test_tick_drives_switchboard(self, switching_world):
        w = switching_world
        w["controller"].tick("sf", hour=1, event_active=False)
        assert w["board"].serving("sf") == w["base"].instance.instance_id
        w["controller"].tick("sf", hour=2, event_active=True)
        assert w["board"].serving("sf") == w["event"].instance.instance_id
        assert w["board"].switch_count("sf") == 2

    def test_unknown_city_selects_nothing(self, switching_world):
        assert switching_world["controller"].champion("atlantis", False) is None

    def test_event_fallback_to_base_when_no_event_model(self, memory_gallery):
        pipeline = ForecastingPipeline(memory_gallery)
        series = generate_city_demand(
            CityProfile(name="solo", base_demand=100), 3 * HOURS_PER_WEEK, seed=3
        )
        base = pipeline.train_city(
            series,
            ModelSpecification("only_base", lambda: RidgeRegression(), FeatureSpec()),
        )
        engine = RuleEngine(memory_gallery, clock=ManualClock())
        controller = EventSwitchingController(memory_gallery, engine, Switchboard())
        assert controller.champion("solo", event_active=True) == base.instance.instance_id


class TestServingReplay:
    def test_dynamic_beats_static_on_event_hours(self, switching_world):
        w = switching_world
        cache = ModelCache(w["gallery"])
        start, end = w["train_hours"], len(w["series"].values)
        static = simulate_serving(
            w["series"],
            lambda h, e: w["base"].instance.instance_id,
            cache,
            w["specs"],
            start,
            end,
        )
        dynamic = simulate_serving(
            w["series"],
            lambda h, e: w["controller"].tick("sf", h, e),
            cache,
            w["specs"],
            start,
            end,
        )
        assert static.event_hours is not None and dynamic.event_hours is not None
        improvement = 1 - dynamic.event_hours["mape"] / static.event_hours["mape"]
        assert improvement > 0.10  # the paper's ">10% MAPE" shape
        assert dynamic.switches >= 2  # into and out of the event window

    def test_outcome_bookkeeping(self, switching_world):
        w = switching_world
        cache = ModelCache(w["gallery"])
        outcome = simulate_serving(
            w["series"],
            lambda h, e: w["base"].instance.instance_id,
            cache,
            w["specs"],
            w["train_hours"],
            len(w["series"].values),
        )
        assert outcome.switches == 0
        assert len(set(outcome.served_instances)) == 1
        assert outcome.overall["mape"] > 0

    def test_model_cache_loads_once(self, switching_world):
        w = switching_world
        cache = ModelCache(w["gallery"])
        blob_store = w["gallery"].dal.blobs
        before = blob_store.stats.gets
        iid = w["base"].instance.instance_id
        cache.get(iid)
        cache.get(iid)
        # DAL-level LRU may also intercept; the serving cache must not issue
        # more than one physical read for repeated access.
        assert blob_store.stats.gets <= before + 1
