"""Tests for real-time rule-selected champion serving (Section 3.7)."""

import numpy as np
import pytest

from repro.core.clock import ManualClock
from repro.errors import ValidationError
from repro.forecasting.features import FeatureSpec
from repro.forecasting.models import MovingAverage, RidgeRegression
from repro.forecasting.realtime import (
    RealtimeCandidate,
    RollingErrorTracker,
    SLOTS_PER_DAY,
    champion_rule,
    simulate_realtime_serving,
)
from repro.rules.engine import RuleEngine


def make_series(days=5, anomaly_start=None, anomaly_len=36, seed=0):
    """5-minute demand: daily sinusoid + noise + optional level anomaly."""
    rng = np.random.default_rng(seed)
    slots = days * SLOTS_PER_DAY
    t = np.arange(slots)
    base = 100.0 * (1.0 + 0.4 * np.sin(2 * np.pi * t / SLOTS_PER_DAY))
    values = base * rng.lognormal(0.0, 0.03, size=slots)
    if anomaly_start is not None:
        values[anomaly_start: anomaly_start + anomaly_len] *= 2.0
    return values


HEURISTIC_SPEC = FeatureSpec(lags=(1, 2, 3), rolling_windows=(), calendar=False)
COMPLEX_SPEC = FeatureSpec(
    lags=(1, 2, 3, SLOTS_PER_DAY), rolling_windows=(12,), calendar=False
)


@pytest.fixture
def realtime_world(memory_gallery):
    values = make_series(days=5, anomaly_start=4 * SLOTS_PER_DAY + 60, seed=3)
    train_slots = 3 * SLOTS_PER_DAY
    memory_gallery.create_model("rt", "demand_rt")

    from repro.forecasting.features import build_dataset
    from repro.forecasting.models import serialize

    candidates = []
    for label, spec, factory in [
        ("heuristic", HEURISTIC_SPEC, lambda: MovingAverage(window=3)),
        ("complex", COMPLEX_SPEC, lambda: RidgeRegression()),
    ]:
        dataset = build_dataset(values[:train_slots], spec)
        model = factory().fit(dataset.features, dataset.targets)
        instance = memory_gallery.upload_model(
            "rt", "demand_rt", blob=serialize(model),
            metadata={"model_name": label},
        )
        candidates.append(
            RealtimeCandidate(
                instance_id=instance.instance_id,
                model=model,
                feature_spec=spec,
                label=label,
            )
        )
    engine = RuleEngine(memory_gallery, clock=ManualClock())
    return memory_gallery, engine, values, candidates, train_slots


class TestRollingErrorTracker:
    def test_publishes_rolling_ape(self, memory_gallery):
        memory_gallery.create_model("rt", "demand_rt")
        instance = memory_gallery.upload_model("rt", "demand_rt", blob=b"m")
        tracker = RollingErrorTracker(memory_gallery, window=2)
        tracker.record(instance.instance_id, actual=100.0, predicted=110.0)
        rolling = tracker.record(instance.instance_id, actual=100.0, predicted=90.0)
        assert rolling == pytest.approx(0.1)
        assert memory_gallery.latest_metric(
            instance.instance_id, "rolling_ape"
        ) == pytest.approx(0.1)

    def test_window_bounds_memory(self, memory_gallery):
        memory_gallery.create_model("rt", "demand_rt")
        instance = memory_gallery.upload_model("rt", "demand_rt", blob=b"m")
        tracker = RollingErrorTracker(memory_gallery, window=3)
        for predicted in (200.0, 200.0, 200.0, 100.0, 100.0, 100.0):
            tracker.record(instance.instance_id, 100.0, predicted)
        assert tracker.rolling(instance.instance_id) == pytest.approx(0.0)

    def test_bad_window_rejected(self, memory_gallery):
        with pytest.raises(ValidationError):
            RollingErrorTracker(memory_gallery, window=0)


class TestChampionRule:
    def test_rule_prefers_lower_rolling_error(self):
        rule = champion_rule()
        better = {"metrics": {"rolling_ape": 0.05}}
        worse = {"metrics": {"rolling_ape": 0.20}}
        assert rule.prefers(better, worse)
        assert not rule.prefers(worse, better)

    def test_rule_excludes_catastrophic_candidates(self):
        rule = champion_rule(max_error=0.5)
        assert not rule.condition_holds({"metrics": {"rolling_ape": 0.9}})


class TestServingReplay:
    def test_static_policies_serve_one_model(self, realtime_world):
        gallery, engine, values, candidates, train_slots = realtime_world
        outcome = simulate_realtime_serving(
            gallery, engine, values, candidates,
            start_slot=train_slots, end_slot=len(values), policy="heuristic",
        )
        assert set(outcome.served_counts) == {"heuristic"}
        assert outcome.switches == 0

    def test_rule_policy_mixes_models(self, realtime_world):
        gallery, engine, values, candidates, train_slots = realtime_world
        outcome = simulate_realtime_serving(
            gallery, engine, values, candidates,
            start_slot=train_slots, end_slot=len(values), policy="rules",
        )
        # the anomaly in the serving window forces at least one switch
        assert outcome.switches >= 1
        assert sum(outcome.served_counts.values()) > 0

    def test_rule_mix_beats_or_matches_each_alone(self, realtime_world):
        gallery, engine, values, candidates, train_slots = realtime_world
        outcomes = {}
        for policy in ("heuristic", "complex", "rules"):
            outcomes[policy] = simulate_realtime_serving(
                gallery, engine, values, candidates,
                start_slot=train_slots, end_slot=len(values), policy=policy,
            )
        best_single = min(
            outcomes["heuristic"].metrics["mape"], outcomes["complex"].metrics["mape"]
        )
        # "combine the benefits of different models": the mix must not be
        # meaningfully worse than the best single model...
        assert outcomes["rules"].metrics["mape"] <= best_single * 1.05
        # ...and must beat the worst one clearly
        worst_single = max(
            outcomes["heuristic"].metrics["mape"], outcomes["complex"].metrics["mape"]
        )
        assert outcomes["rules"].metrics["mape"] < worst_single

    def test_unknown_policy_rejected(self, realtime_world):
        gallery, engine, values, candidates, train_slots = realtime_world
        with pytest.raises(ValidationError):
            simulate_realtime_serving(
                gallery, engine, values, candidates,
                start_slot=train_slots, end_slot=len(values), policy="ghost",
            )

    def test_empty_candidates_rejected(self, realtime_world):
        gallery, engine, values, _, train_slots = realtime_world
        with pytest.raises(ValidationError):
            simulate_realtime_serving(
                gallery, engine, values, [],
                start_slot=train_slots, end_slot=len(values),
            )
