"""Tests for forecast evaluation metrics and backtesting."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.forecasting.evaluation import (
    STANDARD_METRICS,
    bias,
    evaluate_forecast,
    mae,
    mape,
    mse,
    r2,
    rmse,
    rolling_backtest,
    smape,
)


class TestPointMetrics:
    ACTUAL = [100.0, 200.0, 300.0]
    PREDICTED = [110.0, 190.0, 330.0]

    def test_mae(self):
        assert mae(self.ACTUAL, self.PREDICTED) == pytest.approx((10 + 10 + 30) / 3)

    def test_mse_rmse(self):
        expected_mse = (100 + 100 + 900) / 3
        assert mse(self.ACTUAL, self.PREDICTED) == pytest.approx(expected_mse)
        assert rmse(self.ACTUAL, self.PREDICTED) == pytest.approx(np.sqrt(expected_mse))

    def test_mape(self):
        expected = (10 / 100 + 10 / 200 + 30 / 300) / 3
        assert mape(self.ACTUAL, self.PREDICTED) == pytest.approx(expected)

    def test_bias_sign(self):
        over = bias([100.0, 100.0], [120.0, 120.0])
        under = bias([100.0, 100.0], [80.0, 80.0])
        assert over == pytest.approx(0.2)
        assert under == pytest.approx(-0.2)

    def test_perfect_forecast(self):
        for name, fn in STANDARD_METRICS.items():
            value = fn(self.ACTUAL, self.ACTUAL)
            if name == "r2":
                assert value == pytest.approx(1.0)
            else:
                assert value == pytest.approx(0.0)

    def test_smape_symmetric_and_bounded(self):
        assert smape([100.0], [0.0]) == pytest.approx(2.0)
        assert smape([0.0], [100.0]) == pytest.approx(2.0)

    def test_r2_zero_for_mean_prediction(self):
        actual = [1.0, 2.0, 3.0, 4.0]
        mean_prediction = [2.5] * 4
        assert r2(actual, mean_prediction) == pytest.approx(0.0)

    def test_constant_actuals_r2(self):
        assert r2([5.0, 5.0], [5.0, 5.0]) == 1.0
        assert r2([5.0, 5.0], [4.0, 6.0]) == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            mae([1.0, 2.0], [1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            mape([], [])

    def test_evaluate_forecast_blob(self):
        blob = evaluate_forecast(self.ACTUAL, self.PREDICTED)
        assert set(blob) == set(STANDARD_METRICS)
        assert all(isinstance(v, float) for v in blob.values())


class TestRollingBacktest:
    def test_folds_cover_tail_chronologically(self):
        n = 100
        features = np.arange(n, dtype=float).reshape(-1, 1)
        targets = np.arange(n, dtype=float)
        seen_test_rows = []

        def fit_predict(train_x, train_y, test_x):
            # training data must always precede test data
            assert train_x[-1, 0] < test_x[0, 0]
            seen_test_rows.extend(test_x[:, 0].tolist())
            return test_x[:, 0]

        result = rolling_backtest(fit_predict, features, targets, n_folds=4, min_train=20)
        assert result.folds == 4
        assert seen_test_rows == sorted(seen_test_rows)
        assert len(result.predictions) == n - 20
        assert result.metrics["mape"] == pytest.approx(0.0)

    def test_bad_parameters_rejected(self):
        features = np.ones((10, 1))
        targets = np.ones(10)
        identity = lambda a, b, c: np.ones(len(c))  # noqa: E731
        with pytest.raises(ValidationError):
            rolling_backtest(identity, features, targets, n_folds=0)
        with pytest.raises(ValidationError):
            rolling_backtest(identity, features, targets, n_folds=2, min_train=10)
        with pytest.raises(ValidationError):
            rolling_backtest(identity, features, targets, n_folds=50, min_train=5)
