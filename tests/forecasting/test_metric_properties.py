"""Property-based tests for forecast metric invariants."""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.forecasting.evaluation import bias, mae, mape, mse, r2, rmse, smape

arrays = st.lists(
    st.floats(min_value=0.5, max_value=1000.0, allow_nan=False),
    min_size=1,
    max_size=30,
)

paired = st.tuples(arrays, arrays).map(
    lambda t: (t[0][: min(len(t[0]), len(t[1]))], t[1][: min(len(t[0]), len(t[1]))])
).filter(lambda t: len(t[0]) >= 1)


@given(paired)
@settings(max_examples=300)
def test_error_metrics_non_negative(pair):
    actual, predicted = pair
    assert mae(actual, predicted) >= 0
    assert mse(actual, predicted) >= 0
    assert rmse(actual, predicted) >= 0
    assert mape(actual, predicted) >= 0
    assert 0 <= smape(actual, predicted) <= 2.0


@given(arrays)
@settings(max_examples=200)
def test_perfect_prediction_zero_error(values):
    assert mae(values, values) == 0
    assert mape(values, values) == 0
    assert bias(values, values) == 0
    assert r2(values, values) == 1.0 or len(set(values)) == 1


@given(paired)
@settings(max_examples=200)
def test_rmse_dominates_mae(pair):
    """RMSE >= MAE always (Cauchy-Schwarz)."""
    actual, predicted = pair
    assert rmse(actual, predicted) >= mae(actual, predicted) - 1e-9


@given(arrays, st.floats(min_value=0.01, max_value=2.0, allow_nan=False))
@settings(max_examples=200)
def test_bias_sign_tracks_over_under_forecast(values, scale):
    inflated = [v * (1 + scale) for v in values]
    deflated = [v * max(1 - scale, 0.01) for v in values]
    assert bias(values, inflated) > 0
    assert bias(values, deflated) < 0


@given(paired)
@settings(max_examples=200)
def test_r2_never_exceeds_one(pair):
    actual, predicted = pair
    assert r2(actual, predicted) <= 1.0 + 1e-12


@given(arrays)
@settings(max_examples=100)
def test_metrics_invariant_to_numpy_vs_list(values):
    as_list = mape(values, values[::-1])
    as_array = mape(np.asarray(values), np.asarray(values[::-1]))
    assert as_list == as_array
