"""Tests for the from-scratch forecasting model families."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.forecasting.features import FeatureSpec, build_dataset
from repro.forecasting.models import (
    ExponentialSmoothing,
    GradientBoosting,
    MovingAverage,
    RandomForest,
    RegressionTree,
    RidgeRegression,
    SeasonalNaive,
    deserialize,
    serialize,
)
from repro.forecasting.workload import CityProfile, generate_city_demand

SPEC = FeatureSpec(lags=(1, 2, 3, 24), rolling_windows=(6,), calendar=True)


@pytest.fixture(scope="module")
def city_data():
    series = generate_city_demand(CityProfile(name="test", base_demand=100), 24 * 7 * 6, seed=7)
    dataset = build_dataset(series.values, SPEC)
    return dataset.split(0.8)


ALL_MODELS = [
    MovingAverage,
    SeasonalNaive,
    ExponentialSmoothing,
    RidgeRegression,
    RegressionTree,
    RandomForest,
    GradientBoosting,
]


class TestCommonContract:
    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_fit_predict_shapes(self, model_class, city_data):
        train, validation = city_data
        model = model_class().fit(train.features, train.targets)
        predictions = model.predict(validation.features)
        assert predictions.shape == validation.targets.shape
        assert np.all(np.isfinite(predictions))

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_serialization_round_trip(self, model_class, city_data):
        train, validation = city_data
        model = model_class().fit(train.features, train.targets)
        blob = serialize(model)
        restored = deserialize(blob)
        assert np.allclose(
            restored.predict(validation.features), model.predict(validation.features)
        )

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_predict_before_fit_raises(self, model_class, city_data):
        _, validation = city_data
        with pytest.raises(ValidationError):
            model_class().predict(validation.features)

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_hyperparameters_are_plain_data(self, model_class):
        import json

        hyper = model_class().hyperparameters()
        json.dumps(hyper)  # must be metadata-able

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_rejects_nan_training_data(self, model_class):
        features = np.ones((20, 5))
        targets = np.ones(20)
        targets[3] = np.nan
        with pytest.raises(ValidationError):
            model_class().fit(features, targets)

    @pytest.mark.parametrize("model_class", ALL_MODELS)
    def test_rejects_mismatched_rows(self, model_class):
        with pytest.raises(ValidationError):
            model_class().fit(np.ones((10, 3)), np.ones(9))

    def test_deserialize_rejects_foreign_pickle(self):
        import pickle

        with pytest.raises(ValidationError):
            deserialize(pickle.dumps({"not": "a model"}))


class TestAccuracyShape:
    """Learned models must beat naive baselines on seasonal demand."""

    def test_ridge_beats_moving_average(self, city_data):
        from repro.forecasting.evaluation import mape

        train, validation = city_data
        ridge = RidgeRegression().fit(train.features, train.targets)
        heuristic = MovingAverage(window=3).fit(train.features, train.targets)
        ridge_mape = mape(validation.targets, ridge.predict(validation.features))
        heuristic_mape = mape(validation.targets, heuristic.predict(validation.features))
        assert ridge_mape < heuristic_mape

    def test_forest_beats_single_tree(self, city_data):
        from repro.forecasting.evaluation import rmse

        train, validation = city_data
        tree = RegressionTree(max_depth=5, seed=1).fit(train.features, train.targets)
        forest = RandomForest(n_trees=10, max_depth=5, seed=1).fit(
            train.features, train.targets
        )
        tree_error = rmse(validation.targets, tree.predict(validation.features))
        forest_error = rmse(validation.targets, forest.predict(validation.features))
        assert forest_error <= tree_error * 1.05  # ensemble at least as good


class TestMovingAverage:
    def test_predicts_mean_of_lags(self):
        features = np.array([[1.0, 2.0, 3.0, 99.0]])
        model = MovingAverage(window=3).fit(np.ones((5, 4)), np.ones(5))
        assert model.predict(features)[0] == pytest.approx(2.0)

    def test_window_validation(self):
        with pytest.raises(ValidationError):
            MovingAverage(window=0)

    def test_window_larger_than_lags_rejected(self):
        with pytest.raises(ValidationError):
            MovingAverage(window=10).fit(np.ones((5, 3)), np.ones(5))


class TestSeasonalNaive:
    def test_reads_configured_column(self):
        model = SeasonalNaive(season_lag_column=2).fit(np.ones((5, 4)), np.ones(5))
        features = np.array([[0.0, 0.0, 42.0, 0.0]])
        assert model.predict(features)[0] == 42.0

    def test_out_of_range_column_rejected(self):
        with pytest.raises(ValidationError):
            SeasonalNaive(season_lag_column=9).fit(np.ones((5, 3)), np.ones(5))


class TestRidge:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(500, 3))
        targets = 2.0 * features[:, 0] - 1.0 * features[:, 1] + 5.0
        model = RidgeRegression(l2=1e-6).fit(features, targets)
        predictions = model.predict(features)
        assert np.allclose(predictions, targets, atol=1e-6)

    def test_constant_column_handled(self):
        features = np.column_stack([np.ones(50), np.arange(50, dtype=float)])
        targets = np.arange(50, dtype=float)
        model = RidgeRegression(l2=0.01).fit(features, targets)
        assert np.all(np.isfinite(model.predict(features)))

    def test_negative_l2_rejected(self):
        with pytest.raises(ValidationError):
            RidgeRegression(l2=-1.0)


class TestTree:
    def test_learns_step_function(self):
        features = np.linspace(0, 1, 200).reshape(-1, 1)
        targets = (features[:, 0] > 0.5).astype(float) * 10.0
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(features, targets)
        assert tree.predict(np.array([[0.1]]))[0] == pytest.approx(0.0, abs=0.5)
        assert tree.predict(np.array([[0.9]]))[0] == pytest.approx(10.0, abs=0.5)

    def test_depth_respected(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(300, 4))
        targets = rng.normal(size=300)
        tree = RegressionTree(max_depth=3).fit(features, targets)
        assert tree.depth() <= 3
        assert tree.leaf_count() <= 2 ** 3

    def test_constant_target_single_leaf(self):
        tree = RegressionTree().fit(np.random.default_rng(0).normal(size=(50, 3)), np.full(50, 7.0))
        assert tree.leaf_count() == 1
        assert np.allclose(tree.predict(np.zeros((5, 3))), 7.0)

    def test_wrong_feature_count_rejected(self):
        tree = RegressionTree().fit(np.ones((30, 4)), np.arange(30, dtype=float))
        with pytest.raises(ValidationError):
            tree.predict(np.ones((5, 3)))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(2)
        features = rng.normal(size=(200, 5))
        targets = rng.normal(size=200)
        a = RegressionTree(max_features=2, seed=9).fit(features, targets)
        b = RegressionTree(max_features=2, seed=9).fit(features, targets)
        probe = rng.normal(size=(20, 5))
        assert np.array_equal(a.predict(probe), b.predict(probe))


class TestEnsembles:
    def test_forest_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        features = rng.normal(size=(150, 4))
        targets = rng.normal(size=150)
        probe = rng.normal(size=(10, 4))
        a = RandomForest(n_trees=5, seed=4).fit(features, targets).predict(probe)
        b = RandomForest(n_trees=5, seed=4).fit(features, targets).predict(probe)
        assert np.array_equal(a, b)

    def test_boosting_improves_with_rounds(self):
        rng = np.random.default_rng(4)
        features = rng.normal(size=(400, 3))
        targets = np.sin(features[:, 0] * 3) + features[:, 1] ** 2
        few = GradientBoosting(n_rounds=2, seed=1).fit(features, targets)
        many = GradientBoosting(n_rounds=40, seed=1).fit(features, targets)
        err_few = np.mean((few.predict(features) - targets) ** 2)
        err_many = np.mean((many.predict(features) - targets) ** 2)
        assert err_many < err_few

    def test_boosting_parameter_validation(self):
        with pytest.raises(ValidationError):
            GradientBoosting(n_rounds=0)
        with pytest.raises(ValidationError):
            GradientBoosting(learning_rate=0.0)

    def test_forest_parameter_validation(self):
        with pytest.raises(ValidationError):
            RandomForest(n_trees=0)


class TestTreeEdgeCases:
    def test_duplicate_feature_values_no_degenerate_split(self):
        # a column with one repeated value offers no valid split point
        features = np.column_stack([np.ones(40), np.arange(40, dtype=float)])
        targets = np.arange(40, dtype=float)
        tree = RegressionTree(max_depth=4, min_samples_leaf=2).fit(features, targets)
        predictions = tree.predict(features)
        assert np.all(np.isfinite(predictions))
        assert tree.leaf_count() > 1  # it split on the informative column

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(5)
        features = rng.normal(size=(30, 2))
        targets = rng.normal(size=30)
        tree = RegressionTree(max_depth=10, min_samples_leaf=10).fit(features, targets)
        # with 30 rows and 10-per-leaf minimum, at most 3 leaves are possible
        assert tree.leaf_count() <= 3

    def test_tiny_dataset_single_leaf(self):
        tree = RegressionTree(min_samples_split=8).fit(
            np.ones((3, 2)), np.array([1.0, 2.0, 3.0])
        )
        assert tree.leaf_count() == 1
        assert tree.predict(np.ones((1, 2)))[0] == pytest.approx(2.0)

    def test_single_column_identical_values(self):
        # completely uninformative features -> single mean leaf
        tree = RegressionTree().fit(np.ones((50, 1)), np.arange(50, dtype=float))
        assert tree.leaf_count() == 1
