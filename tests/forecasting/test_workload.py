"""Tests for the synthetic city workload generator."""

import numpy as np
import pytest

from repro.forecasting.workload import (
    CityProfile,
    EventWindow,
    HOURS_PER_DAY,
    HOURS_PER_WEEK,
    add_unplanned_outage,
    build_city_fleet,
    generate_city_demand,
)


class TestEventWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            EventWindow(start=5, end=5, multiplier=2.0)
        with pytest.raises(ValueError):
            EventWindow(start=0, end=5, multiplier=0.0)

    def test_covers(self):
        window = EventWindow(start=10, end=20, multiplier=2.0)
        assert window.covers(10) and window.covers(19)
        assert not window.covers(9) and not window.covers(20)


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        profile = CityProfile(name="sf")
        a = generate_city_demand(profile, hours=200, seed=1)
        b = generate_city_demand(profile, hours=200, seed=1)
        assert np.array_equal(a.values, b.values)

    def test_different_seeds_differ(self):
        profile = CityProfile(name="sf")
        a = generate_city_demand(profile, hours=200, seed=1)
        b = generate_city_demand(profile, hours=200, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_different_cities_differ_under_same_seed(self):
        a = generate_city_demand(CityProfile(name="sf"), hours=200, seed=1)
        b = generate_city_demand(CityProfile(name="nyc"), hours=200, seed=1)
        assert not np.array_equal(a.values, b.values)

    def test_non_negative_and_finite(self):
        series = generate_city_demand(
            CityProfile(name="sf", noise_level=0.5), hours=1000, seed=3
        )
        assert np.all(series.values >= 0)
        assert np.all(np.isfinite(series.values))

    def test_demand_scales_with_base(self):
        small = generate_city_demand(CityProfile(name="x", base_demand=10), 500, seed=1)
        large = generate_city_demand(CityProfile(name="x", base_demand=100), 500, seed=1)
        assert large.values.mean() > small.values.mean() * 5

    def test_growth_trend(self):
        series = generate_city_demand(
            CityProfile(name="g", growth_per_week=0.10, noise_level=0.01),
            hours=HOURS_PER_WEEK * 8,
            seed=1,
        )
        first_week = series.values[:HOURS_PER_WEEK].mean()
        last_week = series.values[-HOURS_PER_WEEK:].mean()
        assert last_week > first_week * 1.5

    def test_event_multiplier_applied(self):
        event = EventWindow(start=100, end=124, multiplier=2.0, name="holiday")
        with_event = generate_city_demand(
            CityProfile(name="e", events=(event,), noise_level=0.0), 300, seed=1
        )
        without = generate_city_demand(
            CityProfile(name="e", noise_level=0.0), 300, seed=1
        )
        in_window = with_event.values[100:124] / without.values[100:124]
        assert np.allclose(in_window, 2.0)
        outside = with_event.values[130:200] / without.values[130:200]
        assert np.allclose(outside, 1.0)

    def test_event_flags_mark_scheduled_only(self):
        scheduled = EventWindow(start=10, end=20, multiplier=2.0, scheduled=True)
        unplanned = EventWindow(start=50, end=60, multiplier=2.0, scheduled=False)
        series = generate_city_demand(
            CityProfile(name="f", events=(scheduled, unplanned)), 100, seed=1
        )
        assert series.event_flags[10:20].all()
        assert not series.event_flags[50:60].any()

    def test_drift_changes_pattern_shape(self):
        stable = generate_city_demand(
            CityProfile(name="d", drift_per_week=0.0, noise_level=0.0),
            HOURS_PER_WEEK * 8, seed=1,
        )
        drifting = generate_city_demand(
            CityProfile(name="d", drift_per_week=0.5, noise_level=0.0),
            HOURS_PER_WEEK * 8, seed=1,
        )
        # first week nearly identical, last week diverged
        first_gap = np.abs(stable.values[:48] - drifting.values[:48]).mean()
        last_gap = np.abs(stable.values[-48:] - drifting.values[-48:]).mean()
        assert last_gap > first_gap * 3

    def test_hours_in_events_helper(self):
        event = EventWindow(start=5, end=8, multiplier=2.0)
        series = generate_city_demand(CityProfile(name="h", events=(event,)), 10, seed=1)
        assert series.hours_in_events() == [5, 6, 7]


class TestFleet:
    def test_fleet_size_and_uniqueness(self):
        fleet = build_city_fleet(20, hours=HOURS_PER_WEEK * 4, seed=5)
        assert len(fleet) == 20
        assert len({p.name for p in fleet}) == 20

    def test_fleet_heterogeneous_scales(self):
        fleet = build_city_fleet(8, hours=HOURS_PER_WEEK * 4, seed=5)
        bases = [p.base_demand for p in fleet]
        assert max(bases) > min(bases) * 5  # megacity vs launch city

    def test_drift_fraction(self):
        fleet = build_city_fleet(
            10, hours=HOURS_PER_WEEK * 4, seed=5, drift_fraction=0.3
        )
        drifting = [p for p in fleet if p.drift_per_week > 0]
        assert len(drifting) == 3

    def test_fleet_has_scheduled_holidays(self):
        fleet = build_city_fleet(2, hours=HOURS_PER_WEEK * 7, seed=5)
        assert all(len(p.events) >= 1 for p in fleet)
        assert all(e.scheduled for p in fleet for e in p.events)

    def test_deterministic(self):
        a = build_city_fleet(5, hours=500, seed=9)
        b = build_city_fleet(5, hours=500, seed=9)
        assert [p.base_demand for p in a] == [p.base_demand for p in b]


class TestUnplannedOutage:
    def test_adds_unscheduled_event(self):
        profile = CityProfile(name="o")
        modified = add_unplanned_outage(profile, start=100, duration=6, multiplier=3.0)
        assert len(modified.events) == 1
        outage = modified.events[0]
        assert not outage.scheduled
        assert outage.end - outage.start == 6

    def test_original_profile_untouched(self):
        profile = CityProfile(name="o")
        add_unplanned_outage(profile, start=100)
        assert profile.events == ()
