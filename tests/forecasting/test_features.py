"""Tests for feature extraction."""

import numpy as np
import pytest

from repro.forecasting.features import FeatureSpec, build_dataset


class TestFeatureSpec:
    def test_defaults(self):
        spec = FeatureSpec()
        assert spec.min_history == 168
        assert "lag_1" in spec.feature_names()
        assert "hod_sin" in spec.feature_names()
        assert "event_flag" not in spec.feature_names()

    def test_event_flag_included_when_requested(self):
        assert "event_flag" in FeatureSpec(event_flag=True).feature_names()

    def test_lags_sorted_and_validated(self):
        spec = FeatureSpec(lags=(24, 1, 3))
        assert spec.lags == (1, 3, 24)
        with pytest.raises(ValueError):
            FeatureSpec(lags=())
        with pytest.raises(ValueError):
            FeatureSpec(lags=(0,))

    def test_season_lag_column_points_at_deepest_lag(self):
        spec = FeatureSpec(lags=(1, 24, 168))
        assert spec.feature_names()[spec.season_lag_column] == "lag_168"


class TestBuildDataset:
    def test_shapes_align(self):
        values = np.arange(300, dtype=float)
        spec = FeatureSpec(lags=(1, 24), rolling_windows=(6,))
        dataset = build_dataset(values, spec)
        assert dataset.features.shape == (300 - 24, len(spec.feature_names()))
        assert len(dataset.targets) == 300 - 24
        assert dataset.hour_index[0] == 24

    def test_lag_values_correct(self):
        values = np.arange(100, dtype=float)
        spec = FeatureSpec(lags=(1, 5), rolling_windows=(), calendar=False)
        dataset = build_dataset(values, spec)
        # row 0 predicts values[5]; lag_1 = values[4], lag_5 = values[0]
        assert dataset.targets[0] == 5.0
        assert dataset.features[0, 0] == 4.0
        assert dataset.features[0, 1] == 0.0

    def test_rolling_mean_uses_history_only(self):
        values = np.arange(50, dtype=float)
        spec = FeatureSpec(lags=(1,), rolling_windows=(4,), calendar=False)
        dataset = build_dataset(values, spec)
        # row 0 predicts values[4]; rolling_mean_4 = mean(values[0:4]) = 1.5
        assert dataset.features[0, 1] == pytest.approx(1.5)

    def test_calendar_features_bounded(self):
        dataset = build_dataset(np.ones(400), FeatureSpec())
        names = list(dataset.feature_names)
        for calendar_name in ("hod_sin", "hod_cos", "dow_sin", "dow_cos"):
            column = dataset.features[:, names.index(calendar_name)]
            assert np.all(np.abs(column) <= 1.0 + 1e-12)

    def test_event_flag_column(self):
        values = np.ones(400)
        flags = np.zeros(400)
        flags[200:230] = 1.0
        spec = FeatureSpec(event_flag=True)
        dataset = build_dataset(values, spec, event_flags=flags)
        names = list(dataset.feature_names)
        column = dataset.features[:, names.index("event_flag")]
        row_of_200 = np.where(dataset.hour_index == 200)[0][0]
        assert column[row_of_200] == 1.0
        assert column[0] == 0.0

    def test_mismatched_flags_rejected(self):
        with pytest.raises(ValueError):
            build_dataset(np.ones(300), FeatureSpec(event_flag=True), event_flags=np.ones(10))

    def test_too_short_series_rejected(self):
        with pytest.raises(ValueError):
            build_dataset(np.ones(100), FeatureSpec())  # needs > 168

    def test_start_hour_offsets_index(self):
        spec = FeatureSpec(lags=(1,), rolling_windows=(), calendar=False)
        dataset = build_dataset(np.ones(10), spec, start_hour=1000)
        assert dataset.hour_index[0] == 1001

    def test_chronological_split(self):
        spec = FeatureSpec(lags=(1,), rolling_windows=(), calendar=False)
        dataset = build_dataset(np.arange(101, dtype=float), spec)
        train, validation = dataset.split(0.8)
        assert len(train) == 80 and len(validation) == 20
        assert train.hour_index[-1] < validation.hour_index[0]
        with pytest.raises(ValueError):
            dataset.split(1.5)
