"""Integration: rolling backtests with real models feeding Gallery gates."""

import numpy as np
import pytest

from repro.forecasting import FeatureSpec, build_dataset, rolling_backtest
from repro.forecasting.models import MovingAverage, RidgeRegression
from repro.forecasting.workload import CityProfile, generate_city_demand

SPEC = FeatureSpec(lags=(1, 2, 3, 24), rolling_windows=(6,))


@pytest.fixture(scope="module")
def dataset():
    series = generate_city_demand(
        CityProfile(name="bt", base_demand=120.0), hours=24 * 7 * 5, seed=21
    )
    return build_dataset(series.values, SPEC)


def fit_predict_with(model_factory):
    def _fit_predict(train_x, train_y, test_x):
        model = model_factory()
        model.fit(train_x, train_y)
        return model.predict(test_x)

    return _fit_predict


class TestBacktestWithRealModels:
    def test_ridge_backtest_produces_gateable_metrics(self, dataset):
        result = rolling_backtest(
            fit_predict_with(lambda: RidgeRegression()),
            dataset.features,
            dataset.targets,
            n_folds=4,
        )
        # the metric blob is exactly what a deploy gate consumes
        assert result.metrics["mape"] < 0.2
        assert abs(result.metrics["bias"]) < 0.1
        assert result.metrics["r2"] > 0.5

    def test_backtest_ranks_models_consistently(self, dataset):
        ridge = rolling_backtest(
            fit_predict_with(lambda: RidgeRegression()),
            dataset.features, dataset.targets, n_folds=3,
        )
        heuristic = rolling_backtest(
            fit_predict_with(lambda: MovingAverage(window=3)),
            dataset.features, dataset.targets, n_folds=3,
        )
        assert ridge.metrics["mape"] < heuristic.metrics["mape"]

    def test_predictions_cover_the_evaluation_tail(self, dataset):
        result = rolling_backtest(
            fit_predict_with(lambda: MovingAverage(window=3)),
            dataset.features, dataset.targets, n_folds=4, min_train=200,
        )
        assert len(result.predictions) == len(dataset.targets) - 200
        assert np.all(np.isfinite(result.predictions))

    def test_backtest_gates_deployment_in_gallery(self, memory_gallery, dataset):
        """The full gate: backtest metrics -> Gallery -> action rule."""
        from repro.core.clock import ManualClock
        from repro.forecasting.models import serialize
        from repro.rules import RuleEngine, action_rule

        result = rolling_backtest(
            fit_predict_with(lambda: RidgeRegression()),
            dataset.features, dataset.targets, n_folds=3,
        )
        engine = RuleEngine(memory_gallery, clock=ManualClock(), bus=memory_gallery.bus)
        engine.register(
            action_rule(
                "bt-gate", "t", "true",
                "metrics.mape < 0.2 and metrics.bias <= 0.1 and metrics.bias >= -0.1",
                ["deploy"],
            )
        )
        memory_gallery.create_model("p", "demand")
        model = RidgeRegression().fit(dataset.features, dataset.targets)
        instance = memory_gallery.upload_model("p", "demand", blob=serialize(model))
        memory_gallery.insert_metrics(instance.instance_id, dict(result.metrics))
        fired = engine.drain()
        assert [f.context.action for f in fired] == ["deploy"]
