"""Tests for the semver-breakdown baseline (Section 3.4.1)."""

import random

import pytest

from repro.baselines.semver_registry import SemverFleetRegistry, UuidFleetRegistry
from repro.core.ids import SeededIdFactory
from repro.errors import NotFoundError


def replay_fleet(registry, n_cities=50, n_operations=300, seed=0):
    rng = random.Random(seed)
    for city_index in range(n_cities):
        registry.launch(f"city-{city_index}")
    for _ in range(n_operations):
        city = f"city-{rng.randrange(n_cities)}"
        operation = rng.choices(
            ["retrain", "change_features", "change_architecture"],
            weights=[0.85, 0.12, 0.03],
        )[0]
        getattr(registry, operation)(city)
    return registry.report()


class TestSemverRegistry:
    def test_bump_rules(self):
        registry = SemverFleetRegistry()
        registry.launch("sf")
        registry.retrain("sf")
        assert registry.version_of("sf") == "1.0.1"
        registry.change_features("sf")
        assert registry.version_of("sf") == "1.1.0"
        registry.change_architecture("sf")
        assert registry.version_of("sf") == "2.0.0"

    def test_unlaunched_city_raises(self):
        with pytest.raises(NotFoundError):
            SemverFleetRegistry().retrain("ghost")

    def test_every_bump_is_a_manual_decision(self):
        registry = SemverFleetRegistry()
        registry.launch("sf")
        registry.retrain("sf")
        registry.retrain("sf")
        assert registry.manual_decisions == 2

    def test_handful_of_cities_stays_aligned(self):
        """The paper: semver 'works well ... for a handful of cities'."""
        registry = SemverFleetRegistry()
        for city in ("a", "b", "c"):
            registry.launch(city)
        for city in ("a", "b", "c"):  # synchronized retrains
            registry.retrain(city)
        report = registry.report()
        assert report.alignment == 1.0
        # identical strings refer to different artifacts even here
        assert report.ambiguous_versions >= 1

    def test_per_city_retraining_breaks_alignment(self):
        report = replay_fleet(SemverFleetRegistry())
        assert report.alignment < 0.5
        assert report.ambiguous_versions > 0
        assert report.distinct_versions > 10
        assert report.manual_decisions == 300


class TestUuidRegistry:
    def test_no_ambiguity_no_manual_decisions(self):
        report = replay_fleet(UuidFleetRegistry(SeededIdFactory(1)))
        assert report.alignment == 1.0
        assert report.ambiguous_versions == 0
        assert report.manual_decisions == 0

    def test_every_artifact_unique(self):
        registry = UuidFleetRegistry(SeededIdFactory(2))
        registry.launch("sf")
        ids = {registry.retrain("sf") for _ in range(100)}
        assert len(ids) == 100

    def test_version_of_returns_latest(self):
        registry = UuidFleetRegistry(SeededIdFactory(3))
        registry.launch("sf")
        newest = registry.retrain("sf")
        assert registry.version_of("sf") == newest

    def test_unlaunched_city_raises(self):
        with pytest.raises(NotFoundError):
            UuidFleetRegistry().version_of("ghost")


class TestSchemeComparison:
    def test_breakdown_shape(self):
        """EXP-SEMVER's headline: semver loses meaning, UUIDs don't."""
        semver = replay_fleet(SemverFleetRegistry(), seed=9)
        uuid = replay_fleet(UuidFleetRegistry(SeededIdFactory(9)), seed=9)
        assert semver.alignment < uuid.alignment
        assert semver.ambiguous_versions > uuid.ambiguous_versions
        assert semver.manual_decisions > uuid.manual_decisions
