"""Tests for the Table 1 capability probe and comparison systems."""

import pytest

from repro.baselines.capabilities import Capability, feature_matrix, probe, render_matrix
from repro.baselines.systems import (
    GalleryAdapter,
    MiniRegistry,
    table1_systems,
)
from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.rules.engine import RuleEngine
from repro.store.blob import InMemoryBlobStore
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore

#: The paper's Table 1 rows (baseline systems only — Gallery is probed live).
PAPER_ROWS = {
    "ModelDB": "YYYNYYN",
    "ModelHUB": "YYYYNYN",
    "Metadata Tracking": "NNYYYNY",
    "Velox": "YYYNYYY",
    "Clipper": "YYNNYYY",
    "MLFlow": "YYYYYYN",
    "TFX": "YYYNYYY",
    "Azure ML": "YYNNYNY",
    "SageMaker": "YYNYNYY",
}


@pytest.fixture
def stack():
    dal = DataAccessLayer(InMemoryMetadataStore(), InMemoryBlobStore(), None)
    gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(1))
    engine = RuleEngine(gallery, clock=ManualClock(), bus=gallery.bus)
    return gallery, engine


def flags_string(row):
    yn = row.as_yn()
    return "".join(yn[c.value] for c in Capability)


class TestProbe:
    def test_full_registry_probes_all_yes(self):
        row = probe(MiniRegistry())
        assert flags_string(row) == "Y" * 7

    def test_probe_reflects_behaviour_not_signatures(self):
        class Liar(MiniRegistry):
            name = "Liar"

            def search(self, field, value):  # method exists but is broken
                raise NotImplementedError

        row = probe(Liar())
        assert row.flags[Capability.SEARCHING] is False
        assert row.flags[Capability.SAVING] is True


class TestTable1Reproduction:
    def test_baseline_rows_match_paper(self, stack):
        rows = feature_matrix(table1_systems(*stack))
        by_name = {row.system: row for row in rows}
        for system, expected in PAPER_ROWS.items():
            assert flags_string(by_name[system]) == expected, system

    def test_gallery_probes_all_capabilities(self, stack):
        """Gallery's row comes from the real implementation.

        Note: the supplied paper text prints Gallery's Searching cell as N,
        which contradicts Section 3.5 ("Model metadata searchability is
        critical") and is a table-extraction artifact; the probe of the real
        system yields Y on all seven axes.
        """
        rows = feature_matrix(table1_systems(*stack))
        gallery_row = [r for r in rows if r.system == "Gallery"][0]
        assert flags_string(gallery_row) == "Y" * 7

    def test_row_order_matches_paper(self, stack):
        rows = feature_matrix(table1_systems(*stack))
        assert [r.system for r in rows] == list(PAPER_ROWS) + ["Gallery"]

    def test_render_matrix_contains_all_rows(self, stack):
        rows = feature_matrix(table1_systems(*stack))
        rendered = render_matrix(rows)
        for system in PAPER_ROWS:
            assert system in rendered
        assert rendered.splitlines()[0].startswith("Systems")


class TestGalleryAdapter:
    def test_save_load_round_trip(self, stack):
        adapter = GalleryAdapter(*stack)
        ref = adapter.save_model("probe", b"bytes")
        assert adapter.load_model(ref) == b"bytes"

    def test_search_finds_saved_model(self, stack):
        adapter = GalleryAdapter(*stack)
        adapter.save_model("probe", b"bytes")
        assert len(adapter.search("model_name", "probe")) == 1

    def test_orchestrate_fires_real_engine(self, stack):
        gallery, engine = stack
        adapter = GalleryAdapter(gallery, engine)
        ref = adapter.save_model("probe", b"bytes")
        adapter.record_metric(ref, "mape", 0.01)
        results = adapter.orchestrate({"WHEN": "metrics.mape < 0.2", "action": "alert"})
        assert len(results) >= 1
        assert len(engine.actions.sent("alert")) >= 1
