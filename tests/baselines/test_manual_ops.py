"""Tests for the manual-vs-Gallery operations cost model."""

import pytest

from repro.baselines.manual_ops import (
    Actor,
    DeploymentLedger,
    GALLERY_DEPLOYMENT_STEPS,
    MANUAL_DAILY_STEPS,
    MANUAL_DEPLOYMENT_STEPS,
    WorkflowStep,
    cost_of,
)


class TestCalibration:
    def test_manual_deployment_near_two_hours(self):
        """Section 4.2: 'two hours of engineering work per model'."""
        cost = cost_of(MANUAL_DEPLOYMENT_STEPS)
        assert 1.5 <= cost.engineer_hours <= 2.5
        assert cost.engineer_steps == len(MANUAL_DEPLOYMENT_STEPS)

    def test_gallery_deployment_zero_engineer_work(self):
        cost = cost_of(GALLERY_DEPLOYMENT_STEPS)
        assert cost.engineer_minutes == 0.0
        assert cost.engineer_steps == 0
        assert cost.automation_steps == len(GALLERY_DEPLOYMENT_STEPS)

    def test_daily_care_one_to_two_hours(self):
        """Section 4: '1-2 hours a day' for ~100 models."""
        cost = cost_of(MANUAL_DAILY_STEPS)
        assert 1.0 <= cost.engineer_hours <= 2.0

    def test_all_manual_steps_are_engineer_steps(self):
        assert all(s.actor is Actor.ENGINEER for s in MANUAL_DEPLOYMENT_STEPS)

    def test_all_gallery_steps_are_automation(self):
        assert all(s.actor is Actor.AUTOMATION for s in GALLERY_DEPLOYMENT_STEPS)


class TestLedger:
    def test_fleet_accumulation(self):
        manual = DeploymentLedger(MANUAL_DEPLOYMENT_STEPS)
        manual.deploy(100)
        assert manual.deployments == 100
        assert manual.engineer_hours_per_model == pytest.approx(
            cost_of(MANUAL_DEPLOYMENT_STEPS).engineer_hours
        )

    def test_gallery_ledger_zero_per_model(self):
        ledger = DeploymentLedger(GALLERY_DEPLOYMENT_STEPS)
        ledger.deploy(100)
        assert ledger.engineer_hours_per_model == 0.0

    def test_empty_ledger(self):
        assert DeploymentLedger(MANUAL_DEPLOYMENT_STEPS).engineer_hours_per_model == 0.0

    def test_negative_minutes_rejected(self):
        with pytest.raises(ValueError):
            WorkflowStep("bad", Actor.ENGINEER, -5.0)
