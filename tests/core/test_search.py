"""Tests for constraint search (Listing 5)."""

import pytest

from repro.core.search import (
    Constraint,
    ConstraintSet,
    Operator,
    flatten_instance_document,
)
from repro.errors import ValidationError


class TestOperator:
    def test_parse_known_operators(self):
        assert Operator.parse("equal") is Operator.EQUAL
        assert Operator.parse("smaller_than") is Operator.SMALLER_THAN
        assert Operator.parse(Operator.IN) is Operator.IN

    def test_parse_unknown_rejected(self):
        with pytest.raises(ValidationError):
            Operator.parse("roughly_equal")


class TestConstraint:
    def test_from_paper_dict_shape(self):
        constraint = Constraint.from_dict(
            {"field": "metricValue", "operator": "smaller_than", "value": 0.25}
        )
        assert constraint.is_metric_constraint
        assert constraint.operator is Operator.SMALLER_THAN

    def test_missing_key_rejected(self):
        with pytest.raises(ValidationError):
            Constraint.from_dict({"field": "x", "value": 1})

    def test_alias_resolution(self):
        assert Constraint("projectName", Operator.EQUAL, "p").resolved_field == "project"
        assert Constraint("modelName", Operator.EQUAL, "rf").resolved_field == "model_name"
        assert Constraint("custom_field", Operator.EQUAL, 1).resolved_field == "custom_field"

    def test_dict_round_trip(self):
        constraint = Constraint("city", Operator.IN, ["sf", "nyc"])
        assert Constraint.from_dict(constraint.to_dict()) == constraint


class TestDocumentMatching:
    DOC = {"project": "p", "model_name": "rf", "city": "sf", "created_time": 5.0}

    def match(self, *constraints):
        return ConstraintSet(list(constraints)).matches_document(self.DOC)

    def test_equal(self):
        assert self.match({"field": "projectName", "operator": "equal", "value": "p"})
        assert not self.match({"field": "projectName", "operator": "equal", "value": "q"})

    def test_not_equal(self):
        assert self.match({"field": "city", "operator": "not_equal", "value": "nyc"})

    def test_ordered_comparisons(self):
        assert self.match({"field": "created_time", "operator": "greater_than", "value": 4})
        assert self.match({"field": "created_time", "operator": "smaller_equal", "value": 5})
        assert not self.match({"field": "created_time", "operator": "smaller_than", "value": 5})

    def test_numeric_string_coercion(self):
        assert self.match({"field": "created_time", "operator": "greater_equal", "value": "5.0"})

    def test_contains_and_prefix(self):
        doc_set = ConstraintSet(
            [{"field": "model_name", "operator": "contains", "value": "r"}]
        )
        assert doc_set.matches_document(self.DOC)
        prefix = ConstraintSet(
            [{"field": "city", "operator": "prefix", "value": "s"}]
        )
        assert prefix.matches_document(self.DOC)

    def test_in_operator(self):
        assert self.match({"field": "city", "operator": "in", "value": ["sf", "la"]})
        assert not self.match({"field": "city", "operator": "in", "value": ["la"]})

    def test_missing_field_never_matches(self):
        assert not self.match({"field": "ghost", "operator": "equal", "value": None})
        assert not self.match({"field": "ghost", "operator": "smaller_than", "value": 1})

    def test_and_semantics(self):
        assert self.match(
            {"field": "city", "operator": "equal", "value": "sf"},
            {"field": "model_name", "operator": "equal", "value": "rf"},
        )
        assert not self.match(
            {"field": "city", "operator": "equal", "value": "sf"},
            {"field": "model_name", "operator": "equal", "value": "linear"},
        )


class TestMetricCorrelation:
    """Metric constraints must be satisfied by a single metric record."""

    METRICS = [
        {"name": "bias", "value": 0.5, "scope": "Validation"},
        {"name": "mape", "value": 0.05, "scope": "Validation"},
    ]

    def test_correlated_match_required(self):
        constraints = ConstraintSet(
            [
                {"field": "metricName", "operator": "equal", "value": "bias"},
                {"field": "metricValue", "operator": "smaller_than", "value": 0.25},
            ]
        )
        # bias is 0.5 (too big); mape is small but is not bias: no single
        # record satisfies both constraints.
        assert not constraints.matches_metrics(self.METRICS)

    def test_single_record_satisfies(self):
        constraints = ConstraintSet(
            [
                {"field": "metricName", "operator": "equal", "value": "mape"},
                {"field": "metricValue", "operator": "smaller_than", "value": 0.25},
            ]
        )
        assert constraints.matches_metrics(self.METRICS)

    def test_scope_constraint(self):
        constraints = ConstraintSet(
            [
                {"field": "metricName", "operator": "equal", "value": "mape"},
                {"field": "metricScope", "operator": "equal", "value": "Production"},
            ]
        )
        assert not constraints.matches_metrics(self.METRICS)

    def test_no_metric_constraints_vacuously_true(self):
        assert ConstraintSet([]).matches_metrics([])


class TestFlattenDocument:
    def test_instance_metadata_wins_over_model(self):
        instance = {"instance_id": "i", "metadata": {"city": "sf"}}
        model = {"model_id": "m", "project": "p", "metadata": {"city": "global"}}
        doc = flatten_instance_document(instance, model)
        assert doc["city"] == "sf"
        assert doc["project"] == "p"
        assert doc["instance_id"] == "i"

    def test_model_optional(self):
        doc = flatten_instance_document({"instance_id": "i", "metadata": {}})
        assert doc["instance_id"] == "i"
