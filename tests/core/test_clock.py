"""Tests for the injectable clocks."""

import time

import pytest

from repro.core.clock import Clock, ManualClock


class TestSystemClock:
    def test_tracks_wall_time(self):
        clock = Clock()
        before = time.time()
        reading = clock.now()
        after = time.time()
        assert before <= reading <= after


class TestManualClock:
    def test_strictly_increasing_readings(self):
        clock = ManualClock(start=100.0, tick=1.0)
        readings = [clock.now() for _ in range(5)]
        assert readings == sorted(readings)
        assert len(set(readings)) == 5

    def test_starts_at_configured_time(self):
        assert ManualClock(start=42.0).now() == 42.0

    def test_advance_jumps_forward(self):
        clock = ManualClock(start=0.0, tick=1.0)
        clock.advance(100.0)
        assert clock.now() >= 100.0

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)

    def test_peek_does_not_consume(self):
        clock = ManualClock(start=10.0)
        assert clock.peek() == 10.0
        assert clock.now() == 10.0
