"""Property-based tests for the search-constraint algebra."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.search import Constraint, ConstraintSet, Operator

field_names = st.sampled_from(["model_name", "city", "created_time", "score"])

scalar_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.text(max_size=8),
)

documents = st.dictionaries(field_names, scalar_values, max_size=4)


@given(documents, field_names, scalar_values)
@settings(max_examples=300)
def test_equal_and_not_equal_partition_present_fields(document, field, value):
    equal = ConstraintSet([Constraint(field, Operator.EQUAL, value)])
    not_equal = ConstraintSet([Constraint(field, Operator.NOT_EQUAL, value)])
    if document.get(field) is None:
        # absent fields match neither (missing data is never a match)
        assert not equal.matches_document(document)
        assert not not_equal.matches_document(document)
    else:
        assert equal.matches_document(document) != not_equal.matches_document(document)


@given(documents, field_names, st.floats(min_value=-100, max_value=100, allow_nan=False))
@settings(max_examples=300)
def test_ordered_operators_partition_numbers(document, field, threshold):
    value = document.get(field)
    if not isinstance(value, (int, float)):
        return
    smaller = ConstraintSet([Constraint(field, Operator.SMALLER_THAN, threshold)])
    greater_equal = ConstraintSet([Constraint(field, Operator.GREATER_EQUAL, threshold)])
    assert smaller.matches_document(document) != greater_equal.matches_document(document)


@given(documents, st.lists(st.tuples(field_names, scalar_values), max_size=3))
@settings(max_examples=200)
def test_and_semantics_monotone(document, pairs):
    """Adding constraints can only shrink the match set."""
    constraints = [Constraint(f, Operator.EQUAL, v) for f, v in pairs]
    for cut in range(len(constraints) + 1):
        prefix = ConstraintSet(constraints[:cut])
        full = ConstraintSet(constraints)
        if full.matches_document(document):
            assert prefix.matches_document(document)


@given(st.lists(st.tuples(field_names, scalar_values), min_size=1, max_size=4))
@settings(max_examples=200)
def test_constraint_dict_round_trip(pairs):
    constraints = [Constraint(f, Operator.EQUAL, v) for f, v in pairs]
    restored = [Constraint.from_dict(c.to_dict()) for c in constraints]
    assert restored == constraints


@given(documents)
@settings(max_examples=100)
def test_empty_constraint_set_matches_everything(document):
    assert ConstraintSet([]).matches(document, [])
