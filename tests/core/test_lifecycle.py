"""Tests for the lifecycle state machine (Figure 1)."""

import pytest

from repro.core.lifecycle import (
    LifecycleStage,
    LifecycleTracker,
    can_transition,
)
from repro.errors import LifecycleError


class TestTransitionTable:
    def test_happy_path_through_figure1(self):
        path = [
            LifecycleStage.EXPLORATION,
            LifecycleStage.TRAINING,
            LifecycleStage.EVALUATION,
            LifecycleStage.DEPLOYED,
            LifecycleStage.MONITORING,
            LifecycleStage.RETRAINING,
            LifecycleStage.EVALUATION,
        ]
        for current, target in zip(path, path[1:]):
            assert can_transition(current, target), f"{current} -> {target}"

    def test_evaluation_can_loop_back_to_training(self):
        assert can_transition(LifecycleStage.EVALUATION, LifecycleStage.TRAINING)

    def test_every_stage_can_deprecate(self):
        for stage in LifecycleStage:
            if stage is LifecycleStage.DEPRECATED:
                continue
            assert can_transition(stage, LifecycleStage.DEPRECATED)

    def test_deprecated_is_terminal(self):
        for stage in LifecycleStage:
            assert not can_transition(LifecycleStage.DEPRECATED, stage)

    def test_no_skipping_evaluation(self):
        assert not can_transition(LifecycleStage.TRAINING, LifecycleStage.DEPLOYED)

    def test_parse(self):
        assert LifecycleStage.parse("deployed") is LifecycleStage.DEPLOYED
        assert LifecycleStage.parse(LifecycleStage.TRAINING) is LifecycleStage.TRAINING
        with pytest.raises(LifecycleError):
            LifecycleStage.parse("shipping")


class TestLifecycleTracker:
    def test_register_and_query(self):
        tracker = LifecycleTracker()
        tracker.register("i1", stage=LifecycleStage.TRAINING, timestamp=1.0)
        assert tracker.stage_of("i1") is LifecycleStage.TRAINING
        assert "i1" in tracker
        assert len(tracker) == 1

    def test_double_register_rejected(self):
        tracker = LifecycleTracker()
        tracker.register("i1")
        with pytest.raises(LifecycleError):
            tracker.register("i1")

    def test_legal_transition_recorded_in_history(self):
        tracker = LifecycleTracker()
        tracker.register("i1", stage=LifecycleStage.EVALUATION, timestamp=1.0)
        tracker.transition("i1", LifecycleStage.DEPLOYED, timestamp=2.0, reason="gate passed")
        history = tracker.history("i1")
        assert len(history) == 2
        assert history[-1].from_stage is LifecycleStage.EVALUATION
        assert history[-1].to_stage is LifecycleStage.DEPLOYED
        assert history[-1].reason == "gate passed"

    def test_illegal_transition_rejected_and_state_unchanged(self):
        tracker = LifecycleTracker()
        tracker.register("i1", stage=LifecycleStage.TRAINING)
        with pytest.raises(LifecycleError):
            tracker.transition("i1", LifecycleStage.DEPLOYED)
        assert tracker.stage_of("i1") is LifecycleStage.TRAINING

    def test_unknown_instance_raises(self):
        tracker = LifecycleTracker()
        with pytest.raises(LifecycleError):
            tracker.stage_of("ghost")
        with pytest.raises(LifecycleError):
            tracker.history("ghost")

    def test_instances_in_stage(self):
        tracker = LifecycleTracker()
        tracker.register("b", stage=LifecycleStage.TRAINING)
        tracker.register("a", stage=LifecycleStage.TRAINING)
        tracker.register("c", stage=LifecycleStage.EVALUATION)
        assert tracker.instances_in(LifecycleStage.TRAINING) == ["a", "b"]
        assert tracker.instances_in("evaluation") == ["c"]
