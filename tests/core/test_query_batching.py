"""The read path issues O(1) store queries, not O(candidates).

``Gallery.model_query`` historically fetched each candidate's metrics (and
parent model) one query at a time — the classic N+1 pattern.  These tests
wrap the metadata store in a call-counting proxy and pin the rewritten
contract: one batched metrics query per search, one batched model fetch per
cold document batch, and zero per-candidate lookups.
"""

from __future__ import annotations

import pytest

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.store.blob import InMemoryBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import MetadataStore


class CountingStore(MetadataStore):
    """Transparent proxy that counts calls per MetadataStore method."""

    def __init__(self, inner: MetadataStore) -> None:
        self._inner = inner
        self.calls: dict[str, int] = {}

    def _forward(self, method_name, /, *args, **kwargs):
        self.calls[method_name] = self.calls.get(method_name, 0) + 1
        return getattr(self._inner, method_name)(*args, **kwargs)

    def reset(self) -> None:
        self.calls.clear()

    def count(self, name: str) -> int:
        return self.calls.get(name, 0)


def _make_forwarder(name):
    def method(self, *args, **kwargs):
        return self._forward(name, *args, **kwargs)

    method.__name__ = name
    return method


for _name in MetadataStore.__abstractmethods__:
    setattr(CountingStore, _name, _make_forwarder(_name))
CountingStore.__abstractmethods__ = frozenset()


N_CANDIDATES = 40


@pytest.fixture
def counted(metadata_store):
    """A Gallery over a counting proxy, populated with many candidates."""
    store = CountingStore(metadata_store)
    dal = DataAccessLayer(store, InMemoryBlobStore(), LRUBlobCache(1 << 20))
    gallery = Gallery(
        dal, clock=ManualClock(), id_factory=SeededIdFactory(7)
    )
    gallery.create_model("p", "demand")
    for index in range(N_CANDIDATES):
        instance = gallery.upload_model(
            "p",
            "demand",
            blob=b"m",
            metadata={"model_name": "rf", "city": "sf"},
        )
        gallery.insert_metrics(
            instance.instance_id, {"mape": index / 100, "bias": 0.01}
        )
    store.reset()
    return gallery, store


CITY_QUERY = [
    {"field": "city", "operator": "equal", "value": "sf"},
    {"field": "metricName", "operator": "equal", "value": "mape"},
    {"field": "metricValue", "operator": "smaller_than", "value": 0.2},
]


class TestModelQueryIsBatched:
    def test_metric_queries_are_constant_not_per_candidate(self, counted):
        gallery, store = counted
        hits = gallery.model_query(CITY_QUERY)
        assert len(hits) == 20
        assert store.count("metrics_of_instance") == 0, "N+1 metric reads are back"
        assert store.count("metrics_for_instances") == 1
        # candidate narrowing is one indexed lookup, not a full scan
        assert store.count("find_instances_by_field") == 1
        assert store.count("iter_instances") == 0

    def test_model_fetches_batched_then_cached(self, counted):
        gallery, store = counted
        gallery.model_query(CITY_QUERY)
        assert store.count("get_model") == 0, "per-candidate model reads are back"
        assert store.count("get_models") == 1
        store.reset()
        # warm document cache: the second query re-fetches no models at all
        gallery.model_query(CITY_QUERY)
        assert store.count("get_models") == 0
        assert store.count("metrics_for_instances") == 1

    def test_document_only_query_touches_no_metric_tables(self, counted):
        gallery, store = counted
        hits = gallery.model_query(
            [{"field": "city", "operator": "equal", "value": "sf"}]
        )
        assert len(hits) == N_CANDIDATES
        assert store.count("metrics_for_instances") == 0
        assert store.count("metrics_of_instance") == 0


class TestDocumentCacheInvalidation:
    def test_deprecate_instance_invalidates_document(self, counted):
        gallery, store = counted
        hits = gallery.model_query(CITY_QUERY)
        victim = hits[0].instance_id
        gallery.deprecate_instance(victim)
        remaining = gallery.model_query(CITY_QUERY)
        assert victim not in {i.instance_id for i in remaining}
        # but it resurfaces when deprecated instances are included
        included = gallery.model_query(CITY_QUERY, include_deprecated=True)
        doc_hit = next(i for i in included if i.instance_id == victim)
        assert doc_hit.deprecated

    def test_model_change_invalidates_member_documents(self, counted):
        gallery, store = counted
        gallery.model_query(CITY_QUERY)  # warm the cache
        model = gallery.find_model("p", "demand")
        gallery.deprecate_model(model.model_id)
        store.reset()
        gallery.model_query(CITY_QUERY)
        # every cached document was dropped, so models are re-fetched once
        assert store.count("get_models") == 1

    def test_rule_candidates_see_fresh_metrics(self, counted):
        gallery, store = counted
        docs = gallery.candidate_documents("production")
        assert len(docs) == N_CANDIDATES
        # batched: one metrics query for the whole candidate pool
        assert store.count("metrics_for_instances") == 1
        assert store.count("metrics_of_instance") == 0
        target = docs[0].instance_id
        gallery.insert_metric(target, "fresh", 1.23, scope="Production")
        updated = gallery.candidate_documents("production", instance_id=target)
        assert updated[0].document["metrics"]["fresh"] == 1.23


class TestEnablementCacheInvalidation:
    """PR9 regression: enable/disable/assign_serving must drop the cached
    search document exactly the way deprecate/evolve do — a stale document
    would keep reporting the pre-flip ``enabled`` to queries and rules."""

    def test_disable_refreshes_cached_document(self, counted):
        gallery, store = counted
        victim = gallery.model_query(CITY_QUERY)[0].instance_id
        gallery.disable_instance(victim)
        refreshed = next(
            i for i in gallery.model_query(CITY_QUERY) if i.instance_id == victim
        )
        assert refreshed.enabled is False, "query served a stale cached document"
        gallery.enable_instance(victim)
        refreshed = next(
            i for i in gallery.model_query(CITY_QUERY) if i.instance_id == victim
        )
        assert refreshed.enabled is True

    def test_enablement_flip_rebuilds_exactly_one_document(self, counted):
        gallery, store = counted
        gallery.model_query(CITY_QUERY)  # warm the cache
        victim = gallery.model_query(CITY_QUERY)[0].instance_id
        store.reset()
        gallery.model_query(CITY_QUERY)
        assert store.count("get_models") == 0, "cache was already warm"
        gallery.disable_instance(victim)
        store.reset()
        gallery.model_query(CITY_QUERY)
        # only the flipped instance's document was dropped and rebuilt
        assert store.count("get_models") == 1

    def test_noop_flip_invalidates_nothing(self, counted):
        gallery, _store = counted
        gallery.model_query(CITY_QUERY)
        victim = gallery.model_query(CITY_QUERY)[0].instance_id
        before = gallery.document_cache_stats()["invalidations"]
        gallery.enable_instance(victim)  # already enabled
        assert gallery.document_cache_stats()["invalidations"] == before

    def test_assign_serving_invalidates_target_document(self, counted):
        gallery, store = counted
        gallery.model_query(CITY_QUERY)  # warm the cache
        victim = gallery.model_query(CITY_QUERY)[0].instance_id
        before = gallery.document_cache_stats()["invalidations"]
        gallery.assign_serving("sf", victim, reason="cutover")
        assert gallery.document_cache_stats()["invalidations"] == before + 1
        store.reset()
        gallery.model_query(CITY_QUERY)
        assert store.count("get_models") == 1, "assignment target must rebuild"
