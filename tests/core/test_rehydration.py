"""Tests for registry rehydration: a fresh front-end over existing storage.

Section 4: Gallery is a *stateless* microservice — any number of service
instances can be pointed at the same storage.  These tests build state
through one Gallery object, then open a second one over the same SQLite +
filesystem backends and check that every index reconstructed.
"""

import pytest

from repro import build_gallery
from repro.core import LifecycleStage, ManualClock, SeededIdFactory


def open_gallery(tmp_path, seed=1, start=1_000_000.0):
    return build_gallery(
        metadata_backend="sqlite",
        blob_backend="fs",
        data_dir=tmp_path,
        clock=ManualClock(start=start),
        id_factory=SeededIdFactory(seed),
    )


class TestRehydration:
    def test_coordinate_lookup_restored(self, tmp_path):
        first = open_gallery(tmp_path)
        model = first.create_model("p", "demand", owner="alice")
        second = open_gallery(tmp_path, seed=2)
        assert second.find_model("p", "demand").model_id == model.model_id

    def test_duplicate_detection_across_sessions(self, tmp_path):
        from repro.errors import ValidationError

        open_gallery(tmp_path).create_model("p", "demand")
        second = open_gallery(tmp_path, seed=2)
        with pytest.raises(ValidationError):
            second.create_model("p", "demand")

    def test_lineage_restored_with_parents(self, tmp_path):
        first = open_gallery(tmp_path)
        first.create_model("p", "demand")
        a = first.upload_model("p", "demand", blob=b"a")
        b = first.upload_model(
            "p", "demand", blob=b"b", parent_instance_id=a.instance_id
        )
        second = open_gallery(tmp_path, seed=2)
        chain = second.lineage.lineage("demand")
        assert [e.instance_id for e in chain] == [a.instance_id, b.instance_id]
        assert second.lineage.ancestors(b.instance_id) == [a.instance_id]

    def test_instance_versions_continue(self, tmp_path):
        first = open_gallery(tmp_path)
        first.create_model("p", "demand")
        first.upload_model("p", "demand", blob=b"a")  # 1.1
        first.upload_model("p", "demand", blob=b"b")  # 1.2
        second = open_gallery(tmp_path, seed=2, start=2_000_000.0)
        fresh = second.upload_model("p", "demand", blob=b"c")
        assert fresh.instance_version == "1.3"

    def test_lifecycle_stage_restored(self, tmp_path):
        first = open_gallery(tmp_path)
        first.create_model("p", "demand")
        live = first.upload_model("p", "demand", blob=b"a")
        dead = first.upload_model("p", "demand", blob=b"b")
        first.deprecate_instance(dead.instance_id)
        second = open_gallery(tmp_path, seed=2)
        assert second.lifecycle.stage_of(live.instance_id) is LifecycleStage.EVALUATION
        assert second.lifecycle.stage_of(dead.instance_id) is LifecycleStage.DEPRECATED

    def test_dependency_edges_restored(self, tmp_path):
        first = open_gallery(tmp_path)
        b = first.create_model("p", "b")
        a = first.create_model("p", "a", upstream_model_ids=[b.model_id])
        second = open_gallery(tmp_path, seed=2, start=2_000_000.0)
        assert second.dependencies.upstream(a.model_id) == {b.model_id}
        # propagation still works through the rebuilt graph
        second.upload_model("p", "b", blob=b"x")
        assert second.dependencies.latest_version(a.model_id).minor >= 1

    def test_evolution_chain_resolves_to_successor(self, tmp_path):
        first = open_gallery(tmp_path)
        old = first.create_model("p", "demand")
        new = first.evolve_model(old.model_id, description="rewrite")
        second = open_gallery(tmp_path, seed=2)
        assert second.find_model("p", "demand").model_id == new.model_id

    def test_blobs_served_after_reopen(self, tmp_path):
        first = open_gallery(tmp_path)
        first.create_model("p", "demand")
        instance = first.upload_model("p", "demand", blob=b"durable-bytes")
        second = open_gallery(tmp_path, seed=2)
        assert second.load_instance_blob(instance.instance_id) == b"durable-bytes"

    def test_metrics_survive_reopen(self, tmp_path):
        first = open_gallery(tmp_path)
        first.create_model("p", "demand")
        instance = first.upload_model("p", "demand", blob=b"a")
        first.insert_metric(instance.instance_id, "mape", 0.07, scope="Production")
        second = open_gallery(tmp_path, seed=2)
        assert second.latest_metric(instance.instance_id, "mape") == 0.07

    def test_empty_store_rehydrates_to_empty(self, tmp_path):
        gallery = open_gallery(tmp_path)
        assert gallery.models() == []
        assert gallery.lineage.base_version_ids() == []
