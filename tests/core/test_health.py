"""Tests for model health: views, skew, drift, alerts (Section 3.6)."""

import pytest

from repro.core.health import (
    AlertSink,
    DriftDetector,
    health_report,
    performance_view,
    production_skew,
)
from repro.core.records import MetricRecord, MetricScope
from repro.errors import ValidationError


def metric(name, value, scope=MetricScope.VALIDATION, t=0.0, iid="i1"):
    return MetricRecord(
        metric_id=f"{name}-{scope.value}-{t}",
        instance_id=iid,
        name=name,
        value=value,
        scope=scope,
        created_time=t,
    )


class TestPerformanceView:
    def test_latest_per_scope_and_name(self):
        view = performance_view(
            [
                metric("mape", 0.10, t=1.0),
                metric("mape", 0.08, t=2.0),
                metric("mape", 0.20, MetricScope.PRODUCTION, t=3.0),
            ]
        )
        assert view.value("mape", "Validation") == 0.08
        assert view.value("mape", MetricScope.PRODUCTION) == 0.20
        assert view.value("mape", MetricScope.TRAINING) is None

    def test_scopes_with(self):
        view = performance_view(
            [metric("mape", 0.1), metric("mape", 0.2, MetricScope.PRODUCTION)]
        )
        assert view.scopes_with("mape") == ["Production", "Validation"]


class TestHealthReport:
    FULL_METADATA = {
        "training_data_path": "x",
        "training_data_version": "v",
        "training_framework": "f",
        "training_code_pointer": "c",
        "hyperparameters": {"a": 1},
        "features": ["lag_1"],
        "random_seed": 1,
    }

    def test_healthy_when_complete_and_reporting(self):
        report = health_report(
            "i1",
            self.FULL_METADATA,
            [metric("mape", 0.1), metric("mape", 0.12, MetricScope.PRODUCTION)],
        )
        assert report.healthy
        assert report.issues == ()

    def test_missing_metadata_flagged(self):
        report = health_report(
            "i1",
            {},
            [metric("mape", 0.1), metric("mape", 0.12, MetricScope.PRODUCTION)],
        )
        assert not report.healthy
        assert any("reproducibility" in issue for issue in report.issues)

    def test_missing_scope_flagged(self):
        report = health_report("i1", self.FULL_METADATA, [metric("mape", 0.1)])
        assert not report.healthy
        assert any("Production" in issue for issue in report.issues)


class TestProductionSkew:
    def test_skew_detected_beyond_threshold(self):
        report = production_skew(
            [
                metric("mape", 0.10, MetricScope.VALIDATION),
                metric("mape", 0.14, MetricScope.PRODUCTION),
            ],
            "mape",
            relative_threshold=0.25,
        )
        assert report is not None
        assert report.skewed
        assert report.relative_skew == pytest.approx(0.4)
        assert report.absolute_skew == pytest.approx(0.04)

    def test_small_gap_not_skewed(self):
        report = production_skew(
            [
                metric("mape", 0.10, MetricScope.VALIDATION),
                metric("mape", 0.11, MetricScope.PRODUCTION),
            ],
            "mape",
        )
        assert report is not None and not report.skewed

    def test_missing_side_returns_none(self):
        assert production_skew([metric("mape", 0.1)], "mape") is None
        assert production_skew([], "mape") is None


class TestDriftDetector:
    def test_stable_series_never_detects(self):
        detector = DriftDetector(baseline_window=5, recent_window=3, ratio_threshold=1.5)
        report = detector.observe_many([0.10] * 40)
        assert not report.detected

    def test_sustained_degradation_detected(self):
        detector = DriftDetector(
            baseline_window=5, recent_window=3, ratio_threshold=1.5, patience=2
        )
        report = detector.observe_many([0.10] * 10 + [0.30] * 6)
        assert report.detected
        assert report.detected_at is not None
        assert report.degradation_ratio > 1.5

    def test_single_spike_not_drift(self):
        detector = DriftDetector(
            baseline_window=5, recent_window=1, ratio_threshold=1.5, patience=3
        )
        report = detector.observe_many([0.10] * 10 + [0.50] + [0.10] * 10)
        assert not report.detected

    def test_higher_is_better_mode(self):
        detector = DriftDetector(
            baseline_window=5,
            recent_window=3,
            ratio_threshold=1.5,
            patience=2,
            higher_is_worse=False,
        )
        report = detector.observe_many([0.90] * 10 + [0.40] * 6)
        assert report.detected

    def test_reset_forgets_history(self):
        detector = DriftDetector(baseline_window=3, recent_window=2, patience=1)
        detector.observe_many([0.1] * 5 + [0.9] * 3)
        assert detector.observe(0.9).detected
        detector.reset()
        assert not detector.observe_many([0.1] * 6).detected

    def test_insufficient_history_is_not_drift(self):
        detector = DriftDetector(baseline_window=10, recent_window=5)
        assert not detector.observe_many([0.1, 0.9, 0.9]).detected

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            DriftDetector(baseline_window=0)
        with pytest.raises(ValidationError):
            DriftDetector(ratio_threshold=0)
        with pytest.raises(ValidationError):
            DriftDetector(patience=0)


class TestAlertSink:
    def test_collects_and_filters(self):
        sink = AlertSink()
        sink.emit("i1", "drift", "mape doubled", timestamp=5.0)
        sink.emit("i2", "skew", "prod gap", timestamp=6.0)
        assert len(sink) == 2
        assert sink.of_kind("drift")[0]["instance_id"] == "i1"
        assert sink.of_kind("missing") == []
