"""Graceful degradation: model_query served from cache when the store dies."""

import pytest

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.errors import MetadataStoreError
from repro.reliability import FaultInjector, FaultKind, FaultyMetadataStore
from repro.store.blob import InMemoryBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore

NAME_CONSTRAINT = [{"field": "modelName", "operator": "equal", "value": "rf"}]
METRIC_CONSTRAINTS = [
    {"field": "metricName", "operator": "equal", "value": "bias"},
    {"field": "metricValue", "operator": "smaller_than", "value": 1.0},
]


@pytest.fixture
def degradable():
    """Gallery whose metadata store can be taken down on command."""
    injector = FaultInjector(seed=5, rate=0.0, armed=False, kinds=(FaultKind.ERROR,))
    metadata = FaultyMetadataStore(InMemoryMetadataStore(), injector)
    dal = DataAccessLayer(metadata, InMemoryBlobStore(), LRUBlobCache(1 << 20))
    gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(9))
    gallery.create_model("p", "demand")
    instance = gallery.upload_model("p", "demand", b"w", metadata={"model_name": "rf"})
    gallery.insert_metric(instance.instance_id, "bias", 0.05)
    # Warm the document cache with a live query, then cut the store's cord.
    assert [i.instance_id for i in gallery.model_query(NAME_CONSTRAINT)] == [
        instance.instance_id
    ]
    injector.rate = 1.0
    injector.arm()
    return gallery, instance, injector


class TestDegradedQueries:
    def test_store_outage_serves_stale_results_from_cache(self, degradable):
        gallery, instance, _ = degradable
        hits = gallery.model_query(NAME_CONSTRAINT)
        assert [i.instance_id for i in hits] == [instance.instance_id]
        assert hits[0].metadata["stale"] is True
        assert gallery.stale_query_count == 1
        assert gallery.document_cache_stats()["stale_queries"] == 1

    def test_live_results_are_never_marked_stale(self, degradable):
        gallery, _, injector = degradable
        injector.disarm()
        hits = gallery.model_query(NAME_CONSTRAINT)
        assert "stale" not in hits[0].metadata
        assert gallery.stale_query_count == 0

    def test_allow_stale_false_reraises(self, degradable):
        gallery, _, _ = degradable
        with pytest.raises(MetadataStoreError):
            gallery.model_query(NAME_CONSTRAINT, allow_stale=False)

    def test_metric_constraints_cannot_degrade(self, degradable):
        # Metric values are not cached; a silently wrong champion would be
        # worse than an error, so these queries re-raise.
        gallery, _, _ = degradable
        with pytest.raises(MetadataStoreError):
            gallery.model_query(METRIC_CONSTRAINTS)
        assert gallery.stale_query_count == 0

    def test_degraded_results_respect_deprecation(self, degradable):
        gallery, instance, injector = degradable
        injector.disarm()
        gallery.deprecate_instance(instance.instance_id)
        gallery.model_query(NAME_CONSTRAINT, include_deprecated=True)  # re-warm
        injector.arm()
        assert gallery.model_query(NAME_CONSTRAINT) == []
        deprecated_hits = gallery.model_query(NAME_CONSTRAINT, include_deprecated=True)
        assert [i.instance_id for i in deprecated_hits] == [instance.instance_id]
