"""Property-based tests for dependency-graph version propagation.

Invariants, over random DAGs and update sequences:
* versions never decrease;
* one direct update bumps exactly the transitive downstream closure (+ the
  updated model), each exactly once;
* production versions never move without an explicit promote;
* the graph stays acyclic (topological_order never raises).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.dependencies import DependencyGraph
from repro.core.versioning import InstanceVersion
from repro.errors import DependencyCycleError, DuplicateError

N_MODELS = 6
MODELS = [f"m{i}" for i in range(N_MODELS)]

#: Edges only point from lower to higher index -> construction can't cycle.
edges = st.lists(
    st.tuples(st.integers(0, N_MODELS - 1), st.integers(0, N_MODELS - 1)).filter(
        lambda t: t[0] < t[1]
    ),
    max_size=10,
    unique=True,
)

updates = st.lists(st.sampled_from(MODELS), max_size=8)


def build_graph(edge_list):
    graph = DependencyGraph()
    for model in MODELS:
        graph.add_model(model, "1.0")
    for upstream_idx, downstream_idx in edge_list:
        try:
            graph.add_dependency(MODELS[downstream_idx], MODELS[upstream_idx], bump=False)
        except DuplicateError:
            pass
    return graph


@given(edges, updates)
@settings(max_examples=200)
def test_versions_monotonic_and_production_pinned(edge_list, update_sequence):
    graph = build_graph(edge_list)
    previous = {m: graph.latest_version(m) for m in MODELS}
    for model in update_sequence:
        graph.record_instance_update(model)
        for m in MODELS:
            current = graph.latest_version(m)
            assert current >= previous[m], "version decreased"
            previous[m] = current
        # production untouched by propagation
        assert all(str(graph.production_version(m)) == "1.0" for m in MODELS)
    graph.topological_order()  # still a DAG


@given(edges, st.sampled_from(MODELS))
@settings(max_examples=200)
def test_one_update_bumps_exactly_the_closure(edge_list, updated):
    graph = build_graph(edge_list)
    closure = graph.downstream(updated, transitive=True)
    events = graph.record_instance_update(updated)
    touched = [e.model_id for e in events]
    assert sorted(touched) == sorted(closure | {updated})
    assert len(touched) == len(set(touched)), "a model was bumped twice"


@given(edges)
@settings(max_examples=100)
def test_upstream_downstream_are_inverse_relations(edge_list):
    graph = build_graph(edge_list)
    for model in MODELS:
        for upstream in graph.upstream(model):
            assert model in graph.downstream(upstream)
        for downstream in graph.downstream(model):
            assert model in graph.upstream(downstream)


@given(edges)
@settings(max_examples=100)
def test_transitive_closures_contain_direct_neighbours(edge_list):
    graph = build_graph(edge_list)
    for model in MODELS:
        assert graph.upstream(model) <= graph.upstream(model, transitive=True)
        assert graph.downstream(model) <= graph.downstream(model, transitive=True)


@given(edges)
@settings(max_examples=100)
def test_closing_edge_rejected_as_cycle(edge_list):
    """Adding the reverse of a reachable path must raise."""
    graph = build_graph(edge_list)
    for upstream_idx, downstream_idx in edge_list:
        downstream, upstream = MODELS[downstream_idx], MODELS[upstream_idx]
        if upstream in graph.upstream(downstream, transitive=True):
            try:
                graph.add_dependency(upstream, downstream)
            except (DependencyCycleError, DuplicateError):
                continue
            raise AssertionError("cycle-closing edge was accepted")


@given(st.lists(st.sampled_from(["minor", "major"]), max_size=10))
@settings(max_examples=100)
def test_instance_version_ordering_total(bumps):
    version = InstanceVersion(1, 0)
    history = [version]
    for bump in bumps:
        version = version.bump_minor() if bump == "minor" else version.bump_major()
        history.append(version)
    assert history == sorted(history)
    assert len(set(history)) == len(history)
