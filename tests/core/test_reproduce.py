"""Tests for the model reproducibility service (Section 6.2)."""

import numpy as np
import pytest

from repro.core.records import MetricScope
from repro.core.reproduce import (
    ReproducibilityReport,
    TrainerRegistry,
    reproduce_instance,
)
from repro.errors import NotFoundError, ValidationError
from repro.forecasting import FeatureSpec, ForecastingPipeline, ModelSpecification
from repro.forecasting.pipeline import make_trainer
from repro.forecasting.models import RidgeRegression
from repro.forecasting.workload import CityProfile, generate_city_demand

SPEC = ModelSpecification(
    "ridge",
    lambda: RidgeRegression(l2=1.0),
    FeatureSpec(lags=(1, 2, 3, 24), rolling_windows=(6,)),
)


@pytest.fixture
def trained_world(memory_gallery):
    """A trained instance plus the resolver that can replay its data."""
    series = generate_city_demand(
        CityProfile(name="sf", base_demand=120.0), hours=24 * 7 * 3, seed=9
    )
    pipeline = ForecastingPipeline(memory_gallery)
    trained = pipeline.train_city(series, SPEC)

    def resolver(path, version):
        assert path == "synthetic://sf/demand"
        hours = int(version.rsplit("-", 1)[-1])
        return series.values[:hours], series.event_flags[:hours]

    trainers = TrainerRegistry()
    trainers.register("repro.forecasting.pipeline:ridge", make_trainer(SPEC, resolver))
    return memory_gallery, trained, trainers


class TestTrainerRegistry:
    def test_register_and_resolve(self):
        registry = TrainerRegistry()
        trainer = lambda metadata: (b"", {})  # noqa: E731
        registry.register("code:ptr", trainer)
        assert registry.resolve("code:ptr") is trainer
        assert "code:ptr" in registry

    def test_duplicate_needs_replace(self):
        registry = TrainerRegistry()
        registry.register("p", lambda m: (b"", {}))
        with pytest.raises(ValidationError):
            registry.register("p", lambda m: (b"", {}))
        registry.register("p", lambda m: (b"x", {}), replace=True)

    def test_unknown_pointer_raises(self):
        with pytest.raises(NotFoundError):
            TrainerRegistry().resolve("ghost")


class TestReplay:
    def test_deterministic_training_reproduces_exactly(self, trained_world):
        gallery, trained, trainers = trained_world
        report = reproduce_instance(gallery, trained.instance.instance_id, trainers)
        assert report.reproduced
        assert report.blob_identical  # ridge on the same data is bit-stable
        assert report.max_relative_delta == pytest.approx(0.0, abs=1e-9)

    def test_replay_registered_as_sibling_with_lineage(self, trained_world):
        gallery, trained, trainers = trained_world
        report = reproduce_instance(gallery, trained.instance.instance_id, trainers)
        replayed = gallery.get_instance(report.replayed_instance_id)
        assert replayed.metadata["replay_of"] == trained.instance.instance_id
        assert replayed.parent_instance_id == trained.instance.instance_id
        assert gallery.lineage.ancestors(report.replayed_instance_id) == [
            trained.instance.instance_id
        ]

    def test_replay_records_validation_metrics(self, trained_world):
        gallery, trained, trainers = trained_world
        report = reproduce_instance(gallery, trained.instance.instance_id, trainers)
        metrics = gallery.metric_history(report.replayed_instance_id, "mape")
        assert metrics and metrics[0].scope is MetricScope.VALIDATION

    def test_dry_run_mode(self, trained_world):
        gallery, trained, trainers = trained_world
        before = gallery.dal.metadata.counts()["instances"]
        report = reproduce_instance(
            gallery, trained.instance.instance_id, trainers, record_replay=False
        )
        assert report.reproduced
        assert gallery.dal.metadata.counts()["instances"] == before

    def test_incomplete_metadata_refuses_replay(self, memory_gallery):
        memory_gallery.create_model("p", "demand")
        instance = memory_gallery.upload_model("p", "demand", blob=b"m", metadata={})
        with pytest.raises(ValidationError, match="not reproducible"):
            reproduce_instance(memory_gallery, instance.instance_id, TrainerRegistry())

    def test_divergent_trainer_reported(self, trained_world):
        gallery, trained, trainers = trained_world

        def drifting_trainer(metadata):
            return b"different-bytes", {"mape": 0.9, "bias": 0.5}

        trainers.register(
            "repro.forecasting.pipeline:ridge", drifting_trainer, replace=True
        )
        report = reproduce_instance(
            gallery, trained.instance.instance_id, trainers, metric_tolerance=0.05
        )
        assert not report.reproduced
        assert not report.blob_identical
        assert report.max_relative_delta > 0.05

    def test_nondeterministic_but_close_counts_as_reproduced(self, trained_world):
        gallery, trained, trainers = trained_world
        recorded = {
            m.name: m.value
            for m in gallery.metrics_of(trained.instance.instance_id)
        }

        def jittery_trainer(metadata):
            # different bytes (e.g. a new RNG stream) but metrics within 1%
            jittered = {name: value * 1.01 for name, value in recorded.items()}
            return b"other-seed-bytes", jittered

        trainers.register(
            "repro.forecasting.pipeline:ridge", jittery_trainer, replace=True
        )
        report = reproduce_instance(
            gallery, trained.instance.instance_id, trainers, metric_tolerance=0.05
        )
        assert report.reproduced and not report.blob_identical

    def test_report_str_readable(self, trained_world):
        gallery, trained, trainers = trained_world
        report = reproduce_instance(gallery, trained.instance.instance_id, trainers)
        assert "REPRODUCED" in str(report)
