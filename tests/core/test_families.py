"""Registry-level tests for families, enablement, and serving assignments.

The PR9 API surface: ``create_model(..., family=)``, the enablement review
gate, family membership queries, durable serving assignments, and
``switch_family`` routing — all enablement-gated and event-publishing.
Runs against both metadata backends via the ``gallery`` fixture.
"""

import pytest

from repro.errors import NotFoundError, ValidationError
from repro.rules.events import EventKind


def seed_family(gallery, family="sf:rf", n=3, metric_values=None):
    """Create a model and *n* instances in *family*; returns the instances."""
    gallery.create_model("p", "demand", family="demand_rf")
    instances = []
    for index in range(n):
        instance = gallery.upload_model(
            "p",
            "demand",
            blob=f"blob-{index}".encode(),
            metadata={"model_name": "rf", "city": "sf"},
            family=family,
        )
        if metric_values is not None:
            gallery.insert_metric(instance.instance_id, "mape", metric_values[index])
        instances.append(instance)
    return instances


class TestFamilyMembership:
    def test_model_family_set_at_creation(self, gallery):
        model = gallery.create_model("p", "demand", family="demand_rf")
        assert model.family == "demand_rf"
        assert [m.model_id for m in gallery.models_in_family("demand_rf")] == [
            model.model_id
        ]

    def test_instance_inherits_model_family_by_default(self, gallery):
        gallery.create_model("p", "demand", family="demand_rf")
        instance = gallery.upload_model("p", "demand", blob=b"m")
        assert instance.family == "demand_rf"

    def test_explicit_instance_family_overrides_model(self, gallery):
        instances = seed_family(gallery, family="sf:rf", n=1)
        assert instances[0].family == "sf:rf"
        assert gallery.instances_in_family("demand_rf") == []

    def test_membership_excludes_unservable_by_default(self, gallery):
        instances = seed_family(gallery, n=3)
        gallery.disable_instance(instances[0].instance_id)
        gallery.deprecate_instance(instances[1].instance_id)
        servable = gallery.instances_in_family("sf:rf")
        assert [i.instance_id for i in servable] == [instances[2].instance_id]
        everyone = gallery.instances_in_family(
            "sf:rf", include_disabled=True, include_deprecated=True
        )
        assert len(everyone) == 3

    def test_deprecated_models_filtered_from_family(self, gallery):
        model = gallery.create_model("p", "demand", family="demand_rf")
        gallery.deprecate_model(model.model_id)
        assert gallery.models_in_family("demand_rf") == []
        assert len(gallery.models_in_family("demand_rf", include_deprecated=True)) == 1


class TestEnablementGate:
    def test_flip_round_trip(self, gallery):
        (instance,) = seed_family(gallery, n=1)
        assert instance.enabled is True
        disabled = gallery.disable_instance(instance.instance_id)
        assert disabled.enabled is False
        assert gallery.get_instance(instance.instance_id).enabled is False
        assert gallery.enable_instance(instance.instance_id).enabled is True

    def test_flip_publishes_enablement_event(self, gallery):
        (instance,) = seed_family(gallery, n=1)
        before = len(gallery.bus)
        gallery.disable_instance(instance.instance_id)
        events = [
            e
            for e in gallery.bus.history()[before:]
            if e.kind is EventKind.INSTANCE_ENABLEMENT
        ]
        assert len(events) == 1
        assert events[0].payload["enabled"] is False
        assert events[0].instance_id == instance.instance_id

    def test_noop_flip_publishes_nothing(self, gallery):
        (instance,) = seed_family(gallery, n=1)
        before = len(gallery.bus)
        gallery.enable_instance(instance.instance_id)  # already enabled
        assert len(gallery.bus) == before

    def test_upload_can_register_disabled(self, gallery):
        gallery.create_model("p", "demand")
        instance = gallery.upload_model("p", "demand", blob=b"m", enabled=False)
        assert instance.enabled is False


class TestServingAssignments:
    def test_assign_and_read_back(self, gallery):
        (instance,) = seed_family(gallery, n=1)
        assignment = gallery.assign_serving(
            "sf", instance.instance_id, reason="launch"
        )
        assert assignment.scope == "sf"
        assert assignment.family == "sf:rf"
        assert assignment.switch_count == 1
        assert gallery.serving_for("sf") == assignment
        assert [a.scope for a in gallery.serving_assignments()] == ["sf"]

    def test_unknown_scope_raises(self, gallery):
        with pytest.raises(NotFoundError):
            gallery.serving_for("ghost")

    def test_disabled_instance_cannot_win_assignment(self, gallery):
        (instance,) = seed_family(gallery, n=1)
        gallery.disable_instance(instance.instance_id)
        with pytest.raises(ValidationError):
            gallery.assign_serving("sf", instance.instance_id)

    def test_deprecated_instance_cannot_win_assignment(self, gallery):
        (instance,) = seed_family(gallery, n=1)
        gallery.deprecate_instance(instance.instance_id)
        with pytest.raises(ValidationError):
            gallery.assign_serving("sf", instance.instance_id)

    def test_unknown_instance_cannot_win_assignment(self, gallery):
        with pytest.raises(NotFoundError):
            gallery.assign_serving("sf", "ghost-instance")

    def test_switch_publishes_event_noop_does_not(self, gallery):
        a, b = seed_family(gallery, n=2)
        gallery.assign_serving("sf", a.instance_id)
        switched = [
            e for e in gallery.bus.history() if e.kind is EventKind.SERVING_SWITCHED
        ]
        assert len(switched) == 1  # first assignment is a switch
        gallery.assign_serving("sf", a.instance_id)  # no-op replay
        switched = [
            e for e in gallery.bus.history() if e.kind is EventKind.SERVING_SWITCHED
        ]
        assert len(switched) == 1, "no-op re-assignment must not publish"
        gallery.assign_serving("sf", b.instance_id, reason="cutover")
        event = [
            e for e in gallery.bus.history() if e.kind is EventKind.SERVING_SWITCHED
        ][-1]
        assert event.payload["scope"] == "sf"
        assert event.payload["previous_instance_id"] == a.instance_id
        assert event.payload["switch_count"] == 2
        assert event.payload["reason"] == "cutover"


class TestBestInFamilyAndSwitch:
    def test_best_without_metric_is_newest_servable(self, gallery):
        instances = seed_family(gallery, n=3)
        assert gallery.best_in_family("sf:rf") == instances[-1]
        gallery.disable_instance(instances[-1].instance_id)
        assert gallery.best_in_family("sf:rf") == instances[-2]

    def test_best_by_metric_min_and_max(self, gallery):
        instances = seed_family(gallery, n=3, metric_values=[0.3, 0.1, 0.2])
        best = gallery.best_in_family("sf:rf", metric="mape", mode="min")
        assert best.instance_id == instances[1].instance_id
        worst = gallery.best_in_family("sf:rf", metric="mape", mode="max")
        assert worst.instance_id == instances[0].instance_id

    def test_unmeasured_candidates_lose_to_measured(self, gallery):
        instances = seed_family(gallery, n=2)
        gallery.insert_metric(instances[0].instance_id, "mape", 0.4)
        best = gallery.best_in_family("sf:rf", metric="mape")
        assert best.instance_id == instances[0].instance_id

    def test_bad_mode_rejected(self, gallery):
        seed_family(gallery, n=1)
        with pytest.raises(ValidationError):
            gallery.best_in_family("sf:rf", metric="mape", mode="median")

    def test_empty_family_raises(self, gallery):
        with pytest.raises(NotFoundError):
            gallery.best_in_family("ghost-family")

    def test_switch_family_routes_scope_to_best(self, gallery):
        instances = seed_family(gallery, n=3, metric_values=[0.3, 0.1, 0.2])
        assignment = gallery.switch_family("sf", "sf:rf", metric="mape")
        assert assignment.instance_id == instances[1].instance_id
        assert assignment.reason == "switch_family:sf:rf"
        assert gallery.serving_for("sf").instance_id == instances[1].instance_id

    def test_switch_family_skips_unservable(self, gallery):
        instances = seed_family(gallery, n=2, metric_values=[0.1, 0.5])
        gallery.disable_instance(instances[0].instance_id)  # the metric winner
        assignment = gallery.switch_family("sf", "sf:rf", metric="mape")
        assert assignment.instance_id == instances[1].instance_id

    def test_switch_family_with_no_servable_leaves_scope_untouched(self, gallery):
        instances = seed_family(gallery, n=1)
        gallery.assign_serving("sf", instances[0].instance_id)
        gallery.disable_instance(instances[0].instance_id)
        with pytest.raises(NotFoundError):
            gallery.switch_family("sf", "ghost-family")
        # the existing assignment keeps serving while humans investigate
        assert gallery.serving_for("sf").instance_id == instances[0].instance_id
