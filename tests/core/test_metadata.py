"""Tests for metadata conventions and completeness scoring (Section 3.3.4)."""

from repro.core.metadata import (
    INDEXED_FIELDS,
    REPRODUCIBILITY_FIELDS,
    STANDARD_FIELDS,
    completeness,
    merge_metadata,
    validate_field_names,
)


def full_reproducibility_metadata():
    return {
        "training_data_path": "hdfs://data/nyc",
        "training_data_version": "v3",
        "training_framework": "repro.forecasting",
        "training_code_pointer": "git:abc123",
        "hyperparameters": {"l2": 1.0},
        "features": ["lag_1"],
        "random_seed": 7,
    }


class TestCompleteness:
    def test_full_metadata_scores_one(self):
        report = completeness(full_reproducibility_metadata())
        assert report.score == 1.0
        assert report.reproducible
        assert report.missing == ()

    def test_empty_metadata_scores_zero(self):
        report = completeness({})
        assert report.score == 0.0
        assert not report.reproducible
        assert set(report.missing) == set(REPRODUCIBILITY_FIELDS)

    def test_partial_metadata_fractional_score(self):
        metadata = full_reproducibility_metadata()
        del metadata["random_seed"]
        report = completeness(metadata)
        assert 0.0 < report.score < 1.0
        assert report.missing == ("random_seed",)

    def test_empty_string_counts_as_missing(self):
        metadata = full_reproducibility_metadata()
        metadata["training_data_path"] = "   "
        assert "training_data_path" in completeness(metadata).missing

    def test_empty_collection_counts_as_missing(self):
        metadata = full_reproducibility_metadata()
        metadata["features"] = []
        assert "features" in completeness(metadata).missing

    def test_zero_is_populated(self):
        # random_seed=0 is a real seed, not a missing value
        metadata = full_reproducibility_metadata()
        metadata["random_seed"] = 0
        assert completeness(metadata).reproducible

    def test_present_lists_identity_fields_too(self):
        metadata = full_reproducibility_metadata()
        metadata["city"] = "sf"
        assert "city" in completeness(metadata).present


class TestFieldConventions:
    def test_indexed_fields_are_standard(self):
        assert set(INDEXED_FIELDS) <= set(STANDARD_FIELDS)

    def test_reproducibility_fields_are_standard(self):
        assert set(REPRODUCIBILITY_FIELDS) <= set(STANDARD_FIELDS)

    def test_validate_field_names_filters_typos(self):
        assert validate_field_names(["model_name", "model_nmae"]) == ["model_name"]


class TestMergeMetadata:
    def test_overrides_win(self):
        merged = merge_metadata({"a": 1, "b": 2}, {"b": 3})
        assert merged == {"a": 1, "b": 3}

    def test_inputs_unchanged(self):
        base = {"a": 1}
        merge_metadata(base, {"a": 2})
        assert base == {"a": 1}
