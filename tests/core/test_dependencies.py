"""Tests for dependency tracking and version propagation (Figures 5-7)."""

import pytest

from repro.core.dependencies import ChangeCause, DependencyGraph
from repro.core.versioning import InstanceVersion
from repro.errors import DependencyCycleError, DuplicateError, NotFoundError


def build_figure5_graph() -> DependencyGraph:
    """The five-model graph of Figure 5: X,Y depend on A; A on B and C."""
    graph = DependencyGraph()
    for model, version in [("B", "2.0"), ("C", "3.0"), ("A", "4.0"), ("X", "7.0"), ("Y", "8.0")]:
        graph.add_model(model, version)
    for downstream, upstream in [("A", "B"), ("A", "C"), ("X", "A"), ("Y", "A")]:
        graph.add_dependency(downstream, upstream, bump=False)
    return graph


class TestFigureReproduction:
    def test_figure5_initial_versions(self):
        graph = build_figure5_graph()
        expected = {"A": "4.0", "B": "2.0", "C": "3.0", "X": "7.0", "Y": "8.0"}
        assert {m: str(graph.latest_version(m)) for m in graph.models()} == expected

    def test_figure6_update_b_propagates(self):
        """Updating B 2.0->2.1 bumps A, X, Y; production stays pinned."""
        graph = build_figure5_graph()
        events = graph.record_instance_update("B")
        latest = {m: str(graph.latest_version(m)) for m in graph.models()}
        assert latest == {"A": "4.1", "B": "2.1", "C": "3.0", "X": "7.1", "Y": "8.1"}
        production = {m: str(graph.production_version(m)) for m in graph.models()}
        assert production == {"A": "4.0", "B": "2.0", "C": "3.0", "X": "7.0", "Y": "8.0"}
        causes = {e.model_id: e.cause for e in events}
        assert causes["B"] is ChangeCause.DIRECT
        assert causes["A"] is ChangeCause.UPSTREAM_UPDATE

    def test_figure7_add_dependency_d(self):
        """Adding D as a dependency of A bumps A 4.1->4.2, X->7.2, Y->8.2."""
        graph = build_figure5_graph()
        graph.record_instance_update("B")
        graph.add_model("D", "1.0")
        graph.add_dependency("A", "D")
        latest = {m: str(graph.latest_version(m)) for m in graph.models()}
        assert latest == {
            "A": "4.2", "B": "2.1", "C": "3.0", "D": "1.0", "X": "7.2", "Y": "8.2",
        }

    def test_owner_opt_in_promotion(self):
        """Section 3.4.2: the owner of A can choose to upgrade."""
        graph = build_figure5_graph()
        graph.record_instance_update("B")
        assert graph.has_pending_upgrade("A")
        graph.promote("A")
        assert str(graph.production_version("A")) == "4.1"
        assert not graph.has_pending_upgrade("A")


class TestGraphStructure:
    def test_upstream_downstream_queries(self):
        graph = build_figure5_graph()
        assert graph.upstream("A") == {"B", "C"}
        assert graph.downstream("A") == {"X", "Y"}
        assert graph.upstream("X", transitive=True) == {"A", "B", "C"}
        assert graph.downstream("B", transitive=True) == {"A", "X", "Y"}

    def test_cycle_rejected(self):
        graph = build_figure5_graph()
        with pytest.raises(DependencyCycleError):
            graph.add_dependency("B", "X")  # X -> A -> B would close a loop

    def test_self_dependency_rejected(self):
        graph = build_figure5_graph()
        with pytest.raises(DependencyCycleError):
            graph.add_dependency("A", "A")

    def test_duplicate_edge_rejected(self):
        graph = build_figure5_graph()
        with pytest.raises(DuplicateError):
            graph.add_dependency("A", "B")

    def test_duplicate_model_rejected(self):
        graph = build_figure5_graph()
        with pytest.raises(DuplicateError):
            graph.add_model("A")

    def test_unknown_model_raises(self):
        graph = DependencyGraph()
        with pytest.raises(NotFoundError):
            graph.latest_version("ghost")

    def test_topological_order_respects_edges(self):
        graph = build_figure5_graph()
        order = graph.topological_order()
        assert order.index("B") < order.index("A")
        assert order.index("C") < order.index("A")
        assert order.index("A") < order.index("X")
        assert order.index("A") < order.index("Y")


class TestPropagationSemantics:
    def test_diamond_bumps_once(self):
        """A model reachable via two paths takes exactly one minor bump."""
        graph = DependencyGraph()
        for model in ("top", "left", "right", "bottom"):
            graph.add_model(model, "1.0")
        graph.add_dependency("left", "top", bump=False)
        graph.add_dependency("right", "top", bump=False)
        graph.add_dependency("bottom", "left", bump=False)
        graph.add_dependency("bottom", "right", bump=False)
        graph.record_instance_update("top")
        assert str(graph.latest_version("bottom")) == "1.1"

    def test_remove_dependency_bumps(self):
        graph = build_figure5_graph()
        events = graph.remove_dependency("A", "C")
        assert graph.upstream("A") == {"B"}
        assert str(graph.latest_version("A")) == "4.1"
        bumped = {e.model_id for e in events}
        assert bumped == {"A", "X", "Y"}

    def test_remove_missing_dependency_raises(self):
        graph = build_figure5_graph()
        with pytest.raises(NotFoundError):
            graph.remove_dependency("A", "X")

    def test_model_change_major_bump(self):
        graph = build_figure5_graph()
        graph.record_model_change("A")
        assert str(graph.latest_version("A")) == "5.0"
        assert str(graph.latest_version("X")) == "7.1"  # downstream still minor

    def test_promote_rejects_future_versions(self):
        from repro.errors import DependencyError

        graph = build_figure5_graph()
        with pytest.raises(DependencyError):
            graph.promote("A", "9.0")

    def test_events_log_is_append_only_audit(self):
        graph = build_figure5_graph()
        graph.record_instance_update("B")
        graph.record_instance_update("C")
        log = graph.events()
        # B update touches B,A,X,Y (4); C update touches C,A,X,Y (4)
        assert len(log) == 8

    def test_isolated_model_update_touches_only_itself(self):
        graph = DependencyGraph()
        graph.add_model("solo", "1.0")
        events = graph.record_instance_update("solo")
        assert len(events) == 1
        assert str(graph.latest_version("solo")) == "1.1"
