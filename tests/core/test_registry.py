"""Tests for the Gallery registry facade (runs on memory AND sqlite)."""

import pytest

from repro.core.lifecycle import LifecycleStage
from repro.core.records import MetricScope
from repro.errors import (
    DeprecatedModelError,
    NotFoundError,
    ValidationError,
)
from repro.rules.events import EventKind


def register_example(gallery, base="supply_rejection", project="example-project"):
    gallery.create_model(project, base, owner="chong")
    return gallery.upload_model(
        project,
        base,
        blob=b"model-bytes",
        metadata={
            "model_name": "random_forest",
            "model_type": "SparkML",
            "model_domain": "UberX",
            "city": "New York City",
        },
    )


class TestModelManagement:
    def test_create_and_find(self, gallery):
        model = gallery.create_model("p", "demand", owner="o", description="d")
        assert gallery.find_model("p", "demand").model_id == model.model_id
        assert gallery.get_model(model.model_id).owner == "o"

    def test_duplicate_base_version_rejected(self, gallery):
        gallery.create_model("p", "demand")
        with pytest.raises(ValidationError):
            gallery.create_model("p", "demand")

    def test_same_base_in_different_projects_ok(self, gallery):
        gallery.create_model("p1", "demand")
        gallery.create_model("p2", "demand")
        assert gallery.find_model("p1", "demand").model_id != gallery.find_model(
            "p2", "demand"
        ).model_id

    def test_model_creation_publishes_event(self, gallery):
        gallery.create_model("p", "demand")
        kinds = [e.kind for e in gallery.bus.history()]
        assert EventKind.MODEL_CREATED in kinds

    def test_evolution_links_and_major_bump(self, gallery):
        old = gallery.create_model("p", "demand")
        new = gallery.evolve_model(old.model_id, description="neural rewrite")
        assert gallery.get_model(old.model_id).next_model_id == new.model_id
        assert new.previous_model_id == old.model_id
        # the (project, base) coordinate now resolves to the successor
        assert gallery.find_model("p", "demand").model_id == new.model_id

    def test_evolving_twice_rejected(self, gallery):
        old = gallery.create_model("p", "demand")
        gallery.evolve_model(old.model_id)
        with pytest.raises(ValidationError):
            gallery.evolve_model(old.model_id)


class TestInstanceUpload:
    def test_upload_returns_stored_instance(self, gallery):
        instance = register_example(gallery)
        assert instance.blob_location
        assert gallery.load_instance_blob(instance.instance_id) == b"model-bytes"

    def test_upload_requires_registered_model(self, gallery):
        with pytest.raises(NotFoundError):
            gallery.upload_model("p", "ghost", blob=b"x")

    def test_upload_records_lineage(self, gallery):
        first = register_example(gallery)
        second = gallery.upload_model(
            "example-project",
            "supply_rejection",
            blob=b"v2",
            parent_instance_id=first.instance_id,
        )
        chain = gallery.lineage.lineage("supply_rejection")
        assert [e.instance_id for e in chain] == [
            first.instance_id,
            second.instance_id,
        ]
        assert gallery.lineage.ancestors(second.instance_id) == [first.instance_id]

    def test_instance_versions_advance(self, gallery):
        first = register_example(gallery)
        second = gallery.upload_model(
            "example-project", "supply_rejection", blob=b"v2"
        )
        assert first.instance_version == "1.1"
        assert second.instance_version == "1.2"

    def test_upload_enters_lifecycle(self, gallery):
        instance = register_example(gallery)
        assert gallery.lifecycle.stage_of(instance.instance_id) is LifecycleStage.EVALUATION

    def test_upload_to_deprecated_model_rejected(self, gallery):
        instance = register_example(gallery)
        gallery.deprecate_model(instance.model_id)
        with pytest.raises(DeprecatedModelError):
            gallery.upload_model("example-project", "supply_rejection", blob=b"v2")

    def test_latest_instance(self, gallery):
        register_example(gallery)
        second = gallery.upload_model(
            "example-project", "supply_rejection", blob=b"v2"
        )
        assert gallery.latest_instance("supply_rejection").instance_id == second.instance_id


class TestMetrics:
    def test_insert_and_fetch(self, gallery):
        instance = register_example(gallery)
        gallery.insert_metric(instance.instance_id, "bias", 0.05, scope="Validation")
        metrics = gallery.metrics_of(instance.instance_id)
        assert len(metrics) == 1
        assert metrics[0].name == "bias"
        assert metrics[0].scope is MetricScope.VALIDATION

    def test_metric_requires_existing_instance(self, gallery):
        with pytest.raises(NotFoundError):
            gallery.insert_metric("ghost", "bias", 0.05)

    def test_metric_blob_shares_batch_id(self, gallery):
        instance = register_example(gallery)
        records = gallery.insert_metrics(
            instance.instance_id, {"mape": 0.08, "bias": 0.01}
        )
        batch_ids = {r.metadata["batch_id"] for r in records}
        assert len(batch_ids) == 1

    def test_metric_publishes_event(self, gallery):
        instance = register_example(gallery)
        gallery.insert_metric(instance.instance_id, "bias", 0.05)
        events = [e for e in gallery.bus.history() if e.kind is EventKind.METRIC_UPDATED]
        assert events and events[-1].metric_name == "bias"


class TestSearch:
    def test_listing5_query_shape(self, gallery):
        instance = register_example(gallery)
        gallery.insert_metric(instance.instance_id, "bias", 0.05)
        hits = gallery.model_query(
            [
                {"field": "projectName", "operator": "equal", "value": "example-project"},
                {"field": "modelName", "operator": "equal", "value": "random_forest"},
                {"field": "metricName", "operator": "equal", "value": "bias"},
                {"field": "metricValue", "operator": "smaller_than", "value": 0.25},
            ]
        )
        assert [h.instance_id for h in hits] == [instance.instance_id]

    def test_metric_threshold_excludes(self, gallery):
        instance = register_example(gallery)
        gallery.insert_metric(instance.instance_id, "bias", 0.5)
        hits = gallery.model_query(
            [
                {"field": "metricName", "operator": "equal", "value": "bias"},
                {"field": "metricValue", "operator": "smaller_than", "value": 0.25},
            ]
        )
        assert hits == []

    def test_search_by_city_uses_index(self, gallery):
        register_example(gallery)
        hits = gallery.model_query(
            [{"field": "city", "operator": "equal", "value": "New York City"}]
        )
        assert len(hits) == 1
        assert gallery.model_query(
            [{"field": "city", "operator": "equal", "value": "Gotham"}]
        ) == []

    def test_deprecated_excluded_by_default(self, gallery):
        instance = register_example(gallery)
        gallery.deprecate_instance(instance.instance_id)
        constraint = [{"field": "modelName", "operator": "equal", "value": "random_forest"}]
        assert gallery.model_query(constraint) == []
        assert len(gallery.model_query(constraint, include_deprecated=True)) == 1


class TestDeprecation:
    def test_instance_deprecation_is_a_flag_not_a_delete(self, gallery):
        instance = register_example(gallery)
        gallery.deprecate_instance(instance.instance_id)
        fetched = gallery.get_instance(instance.instance_id)
        assert fetched.deprecated
        # blob still fetchable for consumers mid-migration (Section 3.7)
        assert gallery.load_instance_blob(instance.instance_id) == b"model-bytes"

    def test_deprecation_idempotent(self, gallery):
        instance = register_example(gallery)
        gallery.deprecate_instance(instance.instance_id)
        gallery.deprecate_instance(instance.instance_id)
        assert gallery.get_instance(instance.instance_id).deprecated

    def test_deprecation_moves_lifecycle(self, gallery):
        instance = register_example(gallery)
        gallery.deprecate_instance(instance.instance_id)
        assert gallery.lifecycle.stage_of(instance.instance_id) is LifecycleStage.DEPRECATED

    def test_instances_of_skips_deprecated(self, gallery):
        first = register_example(gallery)
        second = gallery.upload_model("example-project", "supply_rejection", blob=b"v2")
        gallery.deprecate_instance(first.instance_id)
        live = gallery.instances_of("supply_rejection")
        assert [i.instance_id for i in live] == [second.instance_id]


class TestDependenciesViaRegistry:
    def test_add_dependency_mirrors_pointers(self, gallery):
        a = gallery.create_model("p", "a")
        b = gallery.create_model("p", "b")
        gallery.add_dependency(a.model_id, b.model_id)
        assert b.model_id in gallery.get_model(a.model_id).upstream_model_ids
        assert a.model_id in gallery.get_model(b.model_id).downstream_model_ids

    def test_registration_time_wiring_no_bump(self, gallery):
        b = gallery.create_model("p", "b")
        a = gallery.create_model("p", "a", upstream_model_ids=[b.model_id])
        assert str(gallery.dependencies.latest_version(a.model_id)) == "1.0"
        assert gallery.dependencies.upstream(a.model_id) == {b.model_id}

    def test_upload_propagates_to_downstream(self, gallery):
        b = gallery.create_model("p", "b")
        a = gallery.create_model("p", "a", upstream_model_ids=[b.model_id])
        gallery.upload_model("p", "b", blob=b"x")
        assert str(gallery.dependencies.latest_version(a.model_id)) == "1.1"


class TestCandidateDocuments:
    def test_documents_include_metrics_map(self, gallery):
        instance = register_example(gallery)
        gallery.insert_metric(instance.instance_id, "mape", 0.07)
        docs = gallery.candidate_documents("production")
        assert len(docs) == 1
        assert docs[0].document["metrics"]["mape"] == 0.07
        assert docs[0].document["city"] == "New York City"

    def test_scope_preference(self, gallery):
        instance = register_example(gallery)
        gallery.insert_metric(instance.instance_id, "mape", 0.05, scope="Validation")
        gallery.insert_metric(instance.instance_id, "mape", 0.20, scope="Production")
        production = gallery.candidate_documents("production")[0]
        assert production.document["metrics"]["mape"] == 0.20
        validation = gallery.candidate_documents("validation")[0]
        assert validation.document["metrics"]["mape"] == 0.05

    def test_fallback_to_any_scope(self, gallery):
        instance = register_example(gallery)
        gallery.insert_metric(instance.instance_id, "bias", 0.01, scope="Validation")
        docs = gallery.candidate_documents("production")
        assert docs[0].document["metrics"]["bias"] == 0.01

    def test_deprecated_excluded(self, gallery):
        instance = register_example(gallery)
        gallery.deprecate_instance(instance.instance_id)
        assert gallery.candidate_documents("production") == []

    def test_single_instance_scope(self, gallery):
        first = register_example(gallery)
        gallery.upload_model("example-project", "supply_rejection", blob=b"v2")
        docs = gallery.candidate_documents("production", instance_id=first.instance_id)
        assert [d.instance_id for d in docs] == [first.instance_id]
        assert gallery.candidate_documents("production", instance_id="ghost") == []


class TestHealthIntegration:
    def test_instance_health_reads_registry_state(self, gallery):
        instance = register_example(gallery)
        report = gallery.instance_health(instance.instance_id)
        assert not report.healthy  # no reproducibility metadata, no metrics
        assert report.instance_id == instance.instance_id
