"""Tests for versioning: semver baseline, instance versions, lineage."""

import pytest

from repro.core.versioning import (
    InstanceVersion,
    LineageTracker,
    SemanticVersion,
    chain_is_time_ordered,
)
from repro.errors import NotFoundError, ValidationError


class TestSemanticVersion:
    def test_parse_and_str_round_trip(self):
        assert str(SemanticVersion.parse("1.3.10")) == "1.3.10"

    def test_parse_rejects_bad_forms(self):
        for bad in ("1.3", "a.b.c", "1.3.10.2", "-1.0.0", ""):
            with pytest.raises(ValidationError):
                SemanticVersion.parse(bad)

    def test_bump_rules_match_paper(self):
        v = SemanticVersion(1, 3, 10)
        assert str(v.bump_major()) == "2.0.0"   # architecture change
        assert str(v.bump_minor()) == "1.4.0"   # feature change
        assert str(v.bump_patch()) == "1.3.11"  # retrain

    def test_ordering(self):
        assert SemanticVersion.parse("1.3.10") < SemanticVersion.parse("1.4.0")
        assert SemanticVersion.parse("2.0.0") > SemanticVersion.parse("1.99.99")
        assert SemanticVersion(1, 0, 0) == SemanticVersion(1, 0, 0)

    def test_negative_components_rejected(self):
        with pytest.raises(ValidationError):
            SemanticVersion(-1, 0, 0)


class TestInstanceVersion:
    def test_parse_round_trip(self):
        assert str(InstanceVersion.parse("4.1")) == "4.1"

    def test_minor_bump_for_instance_updates(self):
        # Figure 6: B 2.0 -> 2.1 on retrain
        assert str(InstanceVersion.parse("2.0").bump_minor()) == "2.1"

    def test_major_bump_for_model_changes(self):
        assert str(InstanceVersion.parse("2.3").bump_major()) == "3.0"

    def test_ordering(self):
        assert InstanceVersion(4, 1) > InstanceVersion(4, 0)
        assert InstanceVersion(5, 0) > InstanceVersion(4, 9)

    def test_parse_rejects_semver_forms(self):
        with pytest.raises(ValidationError):
            InstanceVersion.parse("1.2.3")


class TestLineageTracker:
    def test_figure4_lineage_shape(self):
        """Figure 4: two base versions; one has four time-sorted instances."""
        tracker = LineageTracker()
        tracker.record("demand_conversion", "uuid-d1", created_time=1.0)
        for i, t in enumerate([2.0, 3.0, 4.0, 5.0], start=1):
            tracker.record("supply_cancellation", f"uuid-s{i}", created_time=t)
        assert tracker.base_version_ids() == [
            "demand_conversion",
            "supply_cancellation",
        ]
        chain = tracker.lineage("supply_cancellation")
        assert [e.instance_id for e in chain] == [
            "uuid-s1",
            "uuid-s2",
            "uuid-s3",
            "uuid-s4",
        ]
        assert chain_is_time_ordered(chain)
        assert tracker.latest("supply_cancellation").instance_id == "uuid-s4"

    def test_out_of_order_recording_still_sorted(self):
        tracker = LineageTracker()
        tracker.record("b", "late", created_time=10.0)
        tracker.record("b", "early", created_time=1.0)
        assert [e.instance_id for e in tracker.lineage("b")] == ["early", "late"]

    def test_duplicate_instance_rejected(self):
        tracker = LineageTracker()
        tracker.record("b", "i1", created_time=1.0)
        with pytest.raises(ValidationError):
            tracker.record("b", "i1", created_time=2.0)

    def test_base_of_reverse_lookup(self):
        tracker = LineageTracker()
        tracker.record("demand", "i1", created_time=1.0)
        assert tracker.base_of("i1") == "demand"
        with pytest.raises(NotFoundError):
            tracker.base_of("ghost")

    def test_parent_must_exist(self):
        tracker = LineageTracker()
        with pytest.raises(NotFoundError):
            tracker.record("b", "i1", created_time=1.0, parent_instance_id="ghost")

    def test_ancestors_walks_parents(self):
        tracker = LineageTracker()
        tracker.record("b", "i1", created_time=1.0)
        tracker.record("b", "i2", created_time=2.0, parent_instance_id="i1")
        tracker.record("b", "i3", created_time=3.0, parent_instance_id="i2")
        assert tracker.ancestors("i3") == ["i2", "i1"]
        assert tracker.ancestors("i1") == []

    def test_unknown_base_raises(self):
        with pytest.raises(NotFoundError):
            LineageTracker().lineage("ghost")

    def test_len_and_contains(self):
        tracker = LineageTracker()
        tracker.record("b", "i1", created_time=1.0)
        assert len(tracker) == 1
        assert "i1" in tracker
        assert "i2" not in tracker
