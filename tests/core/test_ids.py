"""Tests for identifier generation."""

import uuid

from repro.core.ids import (
    SeededIdFactory,
    SequentialIdFactory,
    is_uuid,
    random_uuid,
)


class TestRandomUuid:
    def test_returns_valid_uuid4(self):
        value = random_uuid()
        parsed = uuid.UUID(value)
        assert parsed.version == 4

    def test_unique_across_calls(self):
        assert len({random_uuid() for _ in range(100)}) == 100


class TestSeededIdFactory:
    def test_same_seed_same_sequence(self):
        a = SeededIdFactory(7)
        b = SeededIdFactory(7)
        assert [a() for _ in range(10)] == [b() for _ in range(10)]

    def test_different_seeds_differ(self):
        assert SeededIdFactory(1)() != SeededIdFactory(2)()

    def test_produces_valid_uuids(self):
        factory = SeededIdFactory(3)
        for _ in range(20):
            assert is_uuid(factory())

    def test_no_duplicates_within_run(self):
        factory = SeededIdFactory(0)
        ids = [factory() for _ in range(1000)]
        assert len(set(ids)) == 1000


class TestSequentialIdFactory:
    def test_monotonic_readable_ids(self):
        factory = SequentialIdFactory("model")
        assert factory() == "model-000001"
        assert factory() == "model-000002"

    def test_empty_prefix_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            SequentialIdFactory("")


class TestIsUuid:
    def test_accepts_canonical_form(self):
        assert is_uuid("316b3ab4-2509-4ea7-8025-1ca879dac611")

    def test_rejects_garbage(self):
        assert not is_uuid("not-a-uuid")
        assert not is_uuid("")
        assert not is_uuid(None)  # type: ignore[arg-type]
