"""Stateful property test: registry invariants under random operations.

Drives a Gallery through random sequences of the public API (create,
upload, metric, deprecate, query) while checking system invariants:

* immutability — a stored blob and created_time never change;
* lineage — instances_of is time-ordered and matches uploads;
* search — every live instance is findable by its city; deprecated ones
  only with include_deprecated;
* storage — the DAL audit stays consistent at every step;
* versioning — instance display versions strictly increase per model.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro import build_gallery
from repro.core import InstanceVersion, ManualClock, SeededIdFactory

CITIES = ["sf", "nyc", "la"]
BASES = ["demand", "supply"]


class GalleryMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.gallery = build_gallery(
            clock=ManualClock(), id_factory=SeededIdFactory(99)
        )
        self.models: set[str] = set()
        #: instance_id -> (base, blob, city, created_time, deprecated)
        self.shadow: dict[str, dict] = {}
        self.counter = 0

    # -- operations ------------------------------------------------------------

    @rule(base=st.sampled_from(BASES))
    def create_model(self, base):
        if base in self.models:
            return
        self.gallery.create_model("prop", base)
        self.models.add(base)

    @precondition(lambda self: self.models)
    @rule(base=st.sampled_from(BASES), city=st.sampled_from(CITIES))
    def upload(self, base, city):
        if base not in self.models:
            return
        self.counter += 1
        blob = f"blob-{self.counter}".encode()
        instance = self.gallery.upload_model(
            "prop", base, blob=blob, metadata={"city": city}
        )
        self.shadow[instance.instance_id] = {
            "base": base,
            "blob": blob,
            "city": city,
            "created_time": instance.created_time,
            "deprecated": False,
            "version": instance.instance_version,
        }

    @precondition(lambda self: self.shadow)
    @rule(data=st.data())
    def record_metric(self, data):
        instance_id = data.draw(st.sampled_from(sorted(self.shadow)))
        value = data.draw(st.floats(0.0, 1.0, allow_nan=False))
        self.gallery.insert_metric(instance_id, "mape", value)

    @precondition(lambda self: any(not s["deprecated"] for s in self.shadow.values()))
    @rule(data=st.data())
    def deprecate(self, data):
        live = sorted(k for k, s in self.shadow.items() if not s["deprecated"])
        instance_id = data.draw(st.sampled_from(live))
        self.gallery.deprecate_instance(instance_id)
        self.shadow[instance_id]["deprecated"] = True

    # -- invariants ----------------------------------------------------------

    @invariant()
    def blobs_immutable(self):
        for instance_id, expected in self.shadow.items():
            assert self.gallery.load_instance_blob(instance_id) == expected["blob"]

    @invariant()
    def created_times_immutable(self):
        for instance_id, expected in self.shadow.items():
            record = self.gallery.get_instance(instance_id)
            assert record.created_time == expected["created_time"]

    @invariant()
    def lineage_matches_uploads(self):
        for base in self.models:
            expected = sorted(
                (s["created_time"], iid)
                for iid, s in self.shadow.items()
                if s["base"] == base
            )
            chain = self.gallery.lineage.lineage(base) if expected else []
            assert [e.instance_id for e in chain] == [iid for _, iid in expected]

    @invariant()
    def search_respects_deprecation(self):
        for city in CITIES:
            live_expected = {
                iid
                for iid, s in self.shadow.items()
                if s["city"] == city and not s["deprecated"]
            }
            hits = self.gallery.model_query(
                [{"field": "city", "operator": "equal", "value": city}]
            )
            assert {h.instance_id for h in hits} == live_expected

    @invariant()
    def storage_always_consistent(self):
        assert self.gallery.dal.audit_consistency().consistent

    @invariant()
    def versions_strictly_increase_per_model(self):
        for base in self.models:
            versions = [
                InstanceVersion.parse(s["version"])
                for s in self.shadow.values()
                if s["base"] == base
            ]
            assert len(set(versions)) == len(versions)


GalleryMachine.TestCase.settings = settings(
    max_examples=30, stateful_step_count=20, deadline=None
)
TestGalleryMachine = GalleryMachine.TestCase
