"""Tests for the core record types (Section 3.3 data model)."""

import dataclasses

import pytest

from repro.core.records import (
    MetricRecord,
    MetricScope,
    Model,
    ModelInstance,
    ServingAssignment,
)
from repro.errors import ValidationError

#: Documents exactly as pre-PR9 ``to_dict`` produced them: no ``family``,
#: no ``enabled``.  Old stores and old wire peers still send these.
PRE_PR9_MODEL_DOC = {
    "model_id": "m-legacy",
    "project": "example-project",
    "base_version_id": "supply_rejection",
    "owner": "chong",
    "description": "",
    "created_time": 1.0,
    "deprecated": False,
    "previous_model_id": None,
    "next_model_id": None,
    "upstream_model_ids": [],
    "downstream_model_ids": [],
    "metadata": {"team": "marketplace"},
}
PRE_PR9_INSTANCE_DOC = {
    "instance_id": "i-legacy",
    "model_id": "m-legacy",
    "base_version_id": "supply_rejection",
    "instance_version": "1.0",
    "blob_location": "mem://b/1",
    "parent_instance_id": None,
    "created_time": 2.0,
    "deprecated": False,
    "metadata": {"city": "sf"},
}


def make_model(**overrides):
    defaults = dict(
        model_id="m-1",
        project="example-project",
        base_version_id="supply_rejection",
        owner="chong",
        created_time=1.0,
    )
    defaults.update(overrides)
    return Model(**defaults)


def make_instance(**overrides):
    defaults = dict(
        instance_id="i-1",
        model_id="m-1",
        base_version_id="supply_rejection",
        created_time=2.0,
    )
    defaults.update(overrides)
    return ModelInstance(**defaults)


class TestModel:
    def test_records_are_frozen(self):
        model = make_model()
        with pytest.raises(dataclasses.FrozenInstanceError):
            model.owner = "someone-else"  # type: ignore[misc]

    def test_required_fields_validated(self):
        with pytest.raises(ValidationError):
            make_model(model_id="")
        with pytest.raises(ValidationError):
            make_model(project="")
        with pytest.raises(ValidationError):
            make_model(base_version_id="")

    def test_metadata_defensively_copied(self):
        source = {"model_name": "rf"}
        model = make_model(metadata=source)
        source["model_name"] = "mutated"
        assert model.metadata["model_name"] == "rf"

    def test_metadata_keys_must_be_strings(self):
        with pytest.raises(ValidationError):
            make_model(metadata={1: "x"})

    def test_evolved_links_predecessor(self):
        old = make_model()
        new = old.evolved("m-2", description="neural net rewrite")
        assert new.previous_model_id == "m-1"
        assert new.next_model_id is None
        assert new.base_version_id == old.base_version_id
        assert new.description == "neural net rewrite"

    def test_with_next_sets_forward_pointer(self):
        assert make_model().with_next("m-2").next_model_id == "m-2"

    def test_deprecate_is_nondestructive(self):
        model = make_model()
        flagged = model.deprecate()
        assert flagged.deprecated and not model.deprecated

    def test_dict_round_trip(self):
        model = make_model(
            metadata={"k": "v"}, upstream_model_ids=("u1",), downstream_model_ids=("d1",)
        )
        assert Model.from_dict(model.to_dict()) == model

    def test_from_dict_ignores_unknown_keys(self):
        data = make_model().to_dict()
        data["unknown_future_field"] = 123
        assert Model.from_dict(data) == make_model()


class TestModelInstance:
    def test_validation(self):
        with pytest.raises(ValidationError):
            make_instance(instance_id="")
        with pytest.raises(ValidationError):
            make_instance(model_id="")

    def test_dict_round_trip(self):
        instance = make_instance(
            blob_location="mem://b/1",
            instance_version="4.1",
            metadata={"city": "sf"},
        )
        assert ModelInstance.from_dict(instance.to_dict()) == instance

    def test_deprecate(self):
        instance = make_instance()
        assert instance.deprecate().deprecated
        assert not instance.deprecated

    def test_metadata_read_only_view(self):
        instance = make_instance(metadata={"city": "sf"})
        assert instance.metadata.get("city") == "sf"
        assert instance.metadata.get("missing") is None


class TestPrePR9Compatibility:
    """Documents written before family/enabled existed must still load."""

    def test_pre_pr9_model_doc_loads_with_defaults(self):
        model = Model.from_dict(PRE_PR9_MODEL_DOC)
        assert model.family == ""
        assert model.enabled is True
        assert model.metadata["team"] == "marketplace"

    def test_pre_pr9_instance_doc_loads_servable(self):
        instance = ModelInstance.from_dict(PRE_PR9_INSTANCE_DOC)
        assert instance.family == ""
        assert instance.enabled is True, "legacy instances must keep serving"
        assert not instance.deprecated

    def test_pre_pr9_model_round_trips_stably(self):
        # Old doc -> record -> doc -> record reaches a fixed point: the
        # second generation carries the defaulted fields explicitly.
        first = Model.from_dict(PRE_PR9_MODEL_DOC)
        second = Model.from_dict(first.to_dict())
        assert second == first
        assert first.to_dict()["family"] == ""
        assert first.to_dict()["enabled"] is True

    def test_pre_pr9_instance_round_trips_stably(self):
        first = ModelInstance.from_dict(PRE_PR9_INSTANCE_DOC)
        second = ModelInstance.from_dict(first.to_dict())
        assert second == first

    def test_new_docs_round_trip_family_and_enablement(self):
        instance = make_instance(family="sf:ridge_event", enabled=False)
        restored = ModelInstance.from_dict(instance.to_dict())
        assert restored.family == "sf:ridge_event"
        assert restored.enabled is False
        model = make_model(family="demand_ridge", enabled=False)
        assert Model.from_dict(model.to_dict()) == model


class TestServingAssignment:
    def make(self, **overrides):
        defaults = dict(scope="sf", instance_id="i-1")
        defaults.update(overrides)
        return ServingAssignment(**defaults)

    def test_validation(self):
        with pytest.raises(ValidationError):
            self.make(scope="")
        with pytest.raises(ValidationError):
            self.make(instance_id="")

    def test_records_are_frozen(self):
        assignment = self.make()
        with pytest.raises(dataclasses.FrozenInstanceError):
            assignment.instance_id = "i-2"  # type: ignore[misc]

    def test_dict_round_trip(self):
        assignment = self.make(
            family="sf:ridge_event",
            assigned_time=3.5,
            previous_instance_id="i-0",
            reason="event window",
            switch_count=2,
        )
        assert ServingAssignment.from_dict(assignment.to_dict()) == assignment

    def test_from_dict_ignores_unknown_keys(self):
        data = self.make().to_dict()
        data["future_field"] = "x"
        assert ServingAssignment.from_dict(data) == self.make()


class TestMetricRecord:
    def make(self, **overrides):
        defaults = dict(
            metric_id="mt-1", instance_id="i-1", name="bias", value=0.05
        )
        defaults.update(overrides)
        return MetricRecord(**defaults)

    def test_scope_parsing_case_insensitive(self):
        assert self.make(scope="validation").scope is MetricScope.VALIDATION
        assert self.make(scope="PRODUCTION").scope is MetricScope.PRODUCTION

    def test_unknown_scope_rejected(self):
        with pytest.raises(ValidationError):
            self.make(scope="nonsense")

    def test_value_coerced_to_float(self):
        assert self.make(value="0.25").value == 0.25
        assert isinstance(self.make(value=1).value, float)

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValidationError):
            self.make(value="not-a-number")

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            self.make(name="")

    def test_dict_round_trip_preserves_scope(self):
        metric = self.make(scope=MetricScope.PRODUCTION, metadata={"window": "1h"})
        restored = MetricRecord.from_dict(metric.to_dict())
        assert restored == metric
        assert restored.scope is MetricScope.PRODUCTION
