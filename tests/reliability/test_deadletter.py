"""Tests for the dead-letter queue: park, query, re-drive."""

import pytest

from repro.reliability import DeadLetterQueue, RetryPolicy
from repro.rules.actions import ActionContext, ActionRegistry


def make_context(action="deploy", rule="rule-1", instance="i-1", ts=100.0):
    return ActionContext(
        rule_uuid=rule,
        action=action,
        params={},
        instance_id=instance,
        document={"instance_id": instance},
        timestamp=ts,
    )


@pytest.fixture
def registry():
    return ActionRegistry(include_defaults=True)


class FlakyAction:
    """Fails until ``healthy`` is flipped — a transient dependency."""

    def __init__(self):
        self.healthy = False
        self.calls = 0

    def __call__(self, context):
        self.calls += 1
        if not self.healthy:
            raise ConnectionError("deploy endpoint unreachable")
        return f"deployed:{context.instance_id}"


class TestParkAndQuery:
    def test_only_failures_are_accepted(self, registry):
        queue = DeadLetterQueue()
        ok = registry.execute(make_context("alert"))
        assert ok.ok
        with pytest.raises(ValueError):
            queue.append(ok)

    def test_letters_preserve_error_type_and_traceback(self, registry):
        registry.register("explode", lambda ctx: 1 / 0)
        queue = DeadLetterQueue()
        result = registry.execute(make_context("explode"))
        letter = queue.append(result)
        assert letter.error_type == "ZeroDivisionError"
        assert "ZeroDivisionError" in letter.traceback
        assert letter.first_failed_at == 100.0

    def test_query_filters(self, registry):
        registry.register("explode", lambda ctx: 1 / 0)
        registry.register("fail2", lambda ctx: [][1])
        queue = DeadLetterQueue()
        queue.append(registry.execute(make_context("explode", rule="r-a")))
        queue.append(registry.execute(make_context("fail2", rule="r-b")))
        assert len(queue.entries()) == 2
        assert [x.context.action for x in queue.entries(rule_uuid="r-a")] == ["explode"]
        assert [x.error_type for x in queue.entries(action="fail2")] == ["IndexError"]
        assert len(queue.entries(error_type="ZeroDivisionError")) == 1

    def test_bounded_queue_evicts_oldest(self, registry):
        registry.register("explode", lambda ctx: 1 / 0)
        queue = DeadLetterQueue(max_entries=2)
        for n in range(3):
            queue.append(registry.execute(make_context("explode", instance=f"i-{n}")))
        assert len(queue) == 2
        assert queue.evicted == 1
        assert [x.context.instance_id for x in queue.entries()] == ["i-1", "i-2"]


class TestRedrive:
    def test_redrive_succeeds_after_transient_fault_clears(self, registry):
        flaky = FlakyAction()
        registry.register("deploy", flaky, replace=True)
        queue = DeadLetterQueue()
        failure = registry.execute(make_context("deploy"))
        assert not failure.ok
        queue.append(failure)

        flaky.healthy = True  # the outage ends
        results = queue.redrive(registry)
        assert [r.ok for r in results] == [True]
        assert results[0].result == "deployed:i-1"
        assert len(queue) == 0
        assert queue.redriven_ok == 1

    def test_refailed_letters_stay_with_bumped_delivery_count(self, registry):
        flaky = FlakyAction()
        registry.register("deploy", flaky, replace=True)
        queue = DeadLetterQueue()
        queue.append(registry.execute(make_context("deploy")))

        results = queue.redrive(registry)  # still down
        assert [r.ok for r in results] == [False]
        assert len(queue) == 1
        assert queue.entries()[0].deliveries == 2

    def test_redrive_subset_by_letter_id(self, registry):
        flaky = FlakyAction()
        registry.register("deploy", flaky, replace=True)
        queue = DeadLetterQueue()
        first = queue.append(registry.execute(make_context("deploy", instance="i-1")))
        queue.append(registry.execute(make_context("deploy", instance="i-2")))
        flaky.healthy = True
        queue.redrive(registry, letter_ids={first.letter_id})
        assert [x.context.instance_id for x in queue.entries()] == ["i-2"]

    def test_redrive_honours_retry_policy(self, registry):
        calls = {"n": 0}

        def intermittent(context):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("blip")
            return "ok"

        registry.register("deploy", intermittent, replace=True)
        queue = DeadLetterQueue()
        queue.append(registry.execute(make_context("deploy")))  # call 1 fails
        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None)
        results = queue.redrive(registry, policy=policy)  # calls 2 (fail) + 3 (ok)
        assert results[0].ok
        assert results[0].attempts == 2

    def test_purge(self, registry):
        registry.register("explode", lambda ctx: 1 / 0)
        queue = DeadLetterQueue()
        a = queue.append(registry.execute(make_context("explode")))
        queue.append(registry.execute(make_context("explode")))
        assert queue.purge({a.letter_id}) == 1
        assert queue.purge() == 1
        assert len(queue) == 0
