"""Tests for the fault injector and its store/transport wrappers."""

import pytest

from repro.errors import (
    BlobCorruptionError,
    BlobStoreError,
    MetadataStoreError,
    NotFoundError,
    ServiceError,
)
from repro.reliability import (
    FaultInjector,
    FaultKind,
    FaultyBlobStore,
    FaultyMetadataStore,
    FaultyTransport,
    corrupt_blob_at_rest,
)
from repro.store.blob import FilesystemBlobStore, InMemoryBlobStore
from repro.store.metadata_store import InMemoryMetadataStore


class TestFaultInjector:
    def test_zero_rate_never_injects(self):
        injector = FaultInjector(seed=1, rate=0.0)
        assert all(injector.decide("op") is None for _ in range(100))

    def test_full_rate_always_injects(self):
        injector = FaultInjector(seed=1, rate=1.0)
        assert all(injector.decide("op") is not None for _ in range(20))

    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=42, rate=0.3, kinds=tuple(FaultKind))
        b = FaultInjector(seed=42, rate=0.3, kinds=tuple(FaultKind))
        assert [a.decide("x") for _ in range(200)] == [
            b.decide("x") for _ in range(200)
        ]

    def test_disarmed_injector_is_silent_until_armed(self):
        injector = FaultInjector(seed=1, rate=1.0, armed=False)
        assert injector.decide("op") is None
        injector.arm()
        assert injector.decide("op") is not None

    def test_op_filter(self):
        injector = FaultInjector(seed=1, rate=1.0, ops={"get"})
        assert injector.decide("put") is None
        assert injector.decide("get") is not None

    def test_scripted_faults_jump_the_queue(self):
        injector = FaultInjector(seed=1, rate=0.0)
        injector.inject_next("put", FaultKind.TORN_WRITE)
        assert injector.decide("put") is FaultKind.TORN_WRITE
        assert injector.decide("put") is None

    def test_injection_counters(self):
        injector = FaultInjector(seed=1, rate=1.0, kinds=(FaultKind.ERROR,))
        for _ in range(5):
            injector.decide("op")
        assert injector.total_injected() == 5
        assert injector.total_injected(FaultKind.ERROR) == 5
        assert injector.total_injected(FaultKind.TIMEOUT) == 0


class TestFaultyMetadataStore:
    def test_transparent_when_quiet(self):
        store = FaultyMetadataStore(
            InMemoryMetadataStore(), FaultInjector(seed=1, rate=0.0)
        )
        assert store.counts()["models"] == 0

    def test_injected_errors_are_metadata_store_errors(self):
        injector = FaultInjector(seed=1, rate=0.0)
        store = FaultyMetadataStore(InMemoryMetadataStore(), injector)
        injector.inject_next("counts", FaultKind.TIMEOUT)
        with pytest.raises(MetadataStoreError, match="injected timeout"):
            store.counts()
        assert store.counts()["models"] == 0  # next call goes through

    def test_non_callable_attributes_pass_through(self):
        inner = InMemoryMetadataStore()
        store = FaultyMetadataStore(inner, FaultInjector(rate=0.0))
        assert store.inner is inner


class TestFaultyBlobStore:
    def test_torn_write_leaves_only_orphan_debris(self, tmp_path):
        inner = FilesystemBlobStore(tmp_path)
        injector = FaultInjector(seed=1, rate=0.0)
        store = FaultyBlobStore(inner, injector)
        payload = b"model-bytes" * 100
        injector.inject_next("put", FaultKind.TORN_WRITE)
        with pytest.raises(BlobStoreError, match="torn write"):
            store.put(payload)
        # the caller never got a location; whatever landed is orphan debris
        # and every stored blob is still internally consistent
        for location in store.locations():
            assert inner.get(location)  # readable, passes integrity check
        location = store.put(payload)  # clean retry succeeds
        assert store.get(location) == payload

    def test_corrupt_read_is_detected_not_served(self, tmp_path):
        inner = FilesystemBlobStore(tmp_path)
        injector = FaultInjector(seed=1, rate=0.0)
        store = FaultyBlobStore(inner, injector)
        location = store.put(b"precious-weights")
        injector.inject_next("get", FaultKind.CORRUPT_READ)
        with pytest.raises(BlobCorruptionError):
            store.get(location)

    def test_plain_error_faults(self):
        injector = FaultInjector(seed=1, rate=0.0)
        store = FaultyBlobStore(InMemoryBlobStore(), injector)
        injector.inject_next("get", FaultKind.TIMEOUT)
        location = store.put(b"x")
        with pytest.raises(BlobStoreError, match="timeout"):
            store.get(location)
        assert store.get(location) == b"x"


class TestCorruptAtRest:
    def test_filesystem_corruption_raises_typed_error(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(b"weights-v1")
        corrupt_blob_at_rest(store, location)
        with pytest.raises(BlobCorruptionError):
            store.get(location)

    def test_unwraps_chaos_wrappers(self, tmp_path):
        inner = FilesystemBlobStore(tmp_path)
        wrapped = FaultyBlobStore(inner, FaultInjector(rate=0.0))
        location = wrapped.put(b"weights-v2")
        corrupt_blob_at_rest(wrapped, location)
        with pytest.raises(BlobCorruptionError):
            inner.get(location)

    def test_missing_blob(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        with pytest.raises(NotFoundError):
            corrupt_blob_at_rest(store, "fs://" + "0" * 64)


class TestFaultyTransport:
    def test_drop_never_reaches_the_server(self):
        delivered = []
        injector = FaultInjector(seed=1, rate=0.0)
        transport = FaultyTransport(lambda data: delivered.append(data) or b"ok", injector)
        injector.inject_next("call", FaultKind.DROP)
        with pytest.raises(ServiceError):
            transport(b"frame")
        assert delivered == []
        assert transport(b"frame") == b"ok"

    def test_lost_response_executes_then_raises(self):
        delivered = []
        injector = FaultInjector(seed=1, rate=0.0)
        transport = FaultyTransport(lambda data: delivered.append(data) or b"ok", injector)
        injector.inject_next("call", FaultKind.LOST_RESPONSE)
        with pytest.raises(ServiceError, match="response lost"):
            transport(b"frame")
        assert delivered == [b"frame"]  # the server DID process the request
