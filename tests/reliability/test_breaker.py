"""Tests for CircuitBreaker state transitions."""

import pytest

from repro.errors import CircuitOpenError
from repro.reliability import BreakerState, CircuitBreaker


class ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(failure_threshold=3, reset_timeout=10.0, clock=clock)


class TestStates:
    def test_starts_closed_and_allows(self, breaker):
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()  # does not raise

    def test_opens_after_consecutive_failures(self, breaker):
        for _ in range(3):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        assert breaker.rejections == 1

    def test_success_resets_the_failure_streak(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_after_reset_timeout(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_admits_one_probe_only(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        breaker.allow()  # the probe
        with pytest.raises(CircuitOpenError):
            breaker.allow()  # concurrent caller rejected until probe reports

    def test_successful_probe_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()

    def test_failed_probe_reopens_and_restarts_timer(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.now = 10.0
        breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        clock.now = 19.0  # only 9s since reopen
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.now = 20.0
        assert breaker.state is BreakerState.HALF_OPEN

    def test_manual_reset(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state is BreakerState.CLOSED
        breaker.allow()

    def test_error_message_names_the_breaker(self, clock):
        named = CircuitBreaker(
            failure_threshold=1, reset_timeout=5.0, clock=clock, name="metadata"
        )
        named.record_failure()
        with pytest.raises(CircuitOpenError, match="metadata"):
            named.allow()
