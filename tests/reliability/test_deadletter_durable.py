"""Tests for :class:`DurableDeadLetterQueue` — the store-backed twin of
the in-memory queue.

The contract mirrors ``tests/reliability/test_deadletter.py`` (park,
query, re-drive, purge, bounded) with the two properties only durability
can add: letters survive a full restart, and every queue built over the
same store sees the same letters.
"""

import pytest

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.reliability import DeadLetterQueue, DurableDeadLetterQueue
from repro.rules.actions import ActionContext, ActionRegistry
from repro.rules.engine import RuleEngine
from repro.store.blob import FilesystemBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore, SQLiteMetadataStore


def make_context(action="deploy", rule="rule-1", instance="i-1", ts=100.0):
    return ActionContext(
        rule_uuid=rule,
        action=action,
        params={},
        instance_id=instance,
        document={"instance_id": instance},
        timestamp=ts,
    )


def build_dal(tmp_path, name="gallery.db"):
    return DataAccessLayer(
        SQLiteMetadataStore(str(tmp_path / name)),
        FilesystemBlobStore(tmp_path / "blobs"),
        LRUBlobCache(4),
    )


@pytest.fixture
def registry():
    return ActionRegistry(include_defaults=True)


@pytest.fixture
def dal(tmp_path):
    return build_dal(tmp_path)


@pytest.fixture
def queue(dal):
    return DurableDeadLetterQueue(dal)


class FlakyAction:
    """Fails until ``healthy`` is flipped — a transient dependency."""

    def __init__(self):
        self.healthy = False

    def __call__(self, context):
        if not self.healthy:
            raise ConnectionError("deploy endpoint unreachable")
        return f"deployed:{context.instance_id}"


class TestParkAndQuery:
    def test_only_failures_are_accepted(self, registry, queue):
        ok = registry.execute(make_context("alert"))
        with pytest.raises(ValueError):
            queue.append(ok)

    def test_letters_round_trip_through_json(self, registry, queue):
        registry.register("explode", lambda ctx: 1 / 0)
        parked = queue.append(
            registry.execute(make_context("explode", instance="i-9"))
        )
        assert parked.letter_id > 0
        (letter,) = queue.entries()
        assert letter.letter_id == parked.letter_id
        assert letter.error_type == "ZeroDivisionError"
        assert "ZeroDivisionError" in letter.traceback
        assert letter.context.instance_id == "i-9"
        assert letter.context.document == {"instance_id": "i-9"}
        assert letter.first_failed_at == 100.0
        assert letter.deliveries == 1

    def test_query_filters(self, registry, queue):
        registry.register("explode", lambda ctx: 1 / 0)
        registry.register("fail2", lambda ctx: [][1])
        queue.append(registry.execute(make_context("explode", rule="r-a")))
        queue.append(registry.execute(make_context("fail2", rule="r-b")))
        assert len(queue.entries()) == 2
        assert [x.context.action for x in queue.entries(rule_uuid="r-a")] == [
            "explode"
        ]
        assert [x.error_type for x in queue.entries(action="fail2")] == [
            "IndexError"
        ]
        assert len(queue.entries(error_type="ZeroDivisionError")) == 1

    def test_bounded_queue_evicts_oldest(self, registry, dal):
        registry.register("explode", lambda ctx: 1 / 0)
        queue = DurableDeadLetterQueue(dal, max_entries=2)
        for n in range(3):
            queue.append(registry.execute(make_context("explode", instance=f"i-{n}")))
        assert len(queue) == 2
        assert queue.evicted == 1
        assert [x.context.instance_id for x in queue.entries()] == ["i-1", "i-2"]


class TestRedrive:
    def test_redrive_succeeds_after_transient_fault_clears(self, registry, queue):
        flaky = FlakyAction()
        registry.register("deploy", flaky, replace=True)
        queue.append(registry.execute(make_context("deploy")))
        flaky.healthy = True
        results = queue.redrive(registry)
        assert [r.ok for r in results] == [True]
        assert len(queue) == 0
        assert queue.redriven_ok == 1

    def test_refailed_letters_stay_with_bumped_delivery_count(self, registry, queue):
        flaky = FlakyAction()
        registry.register("deploy", flaky, replace=True)
        queue.append(registry.execute(make_context("deploy")))
        results = queue.redrive(registry)  # still down
        assert [r.ok for r in results] == [False]
        assert len(queue) == 1
        assert queue.entries()[0].deliveries == 2

    def test_redrive_subset_by_letter_id(self, registry, queue):
        flaky = FlakyAction()
        registry.register("deploy", flaky, replace=True)
        first = queue.append(registry.execute(make_context("deploy", instance="i-1")))
        queue.append(registry.execute(make_context("deploy", instance="i-2")))
        flaky.healthy = True
        queue.redrive(registry, letter_ids={first.letter_id})
        assert [x.context.instance_id for x in queue.entries()] == ["i-2"]

    def test_purge(self, registry, queue):
        registry.register("explode", lambda ctx: 1 / 0)
        a = queue.append(registry.execute(make_context("explode")))
        queue.append(registry.execute(make_context("explode")))
        assert queue.purge({a.letter_id}) == 1
        assert queue.purge() == 1
        assert len(queue) == 0
        assert not queue


class TestDurability:
    def test_letters_survive_a_full_restart(self, registry, tmp_path):
        registry.register("explode", lambda ctx: 1 / 0)
        dal = build_dal(tmp_path)
        queue = DurableDeadLetterQueue(dal)
        parked = queue.append(registry.execute(make_context("explode")))
        dal.metadata.close()

        # "restart": a brand-new store + DAL + queue over the same file
        revived = DurableDeadLetterQueue(build_dal(tmp_path))
        (letter,) = revived.entries()
        assert letter.letter_id == parked.letter_id
        assert letter.error_type == "ZeroDivisionError"

    def test_every_queue_over_one_store_sees_the_same_letters(
        self, registry, dal
    ):
        registry.register("explode", lambda ctx: 1 / 0)
        replica_a = DurableDeadLetterQueue(dal)
        replica_b = DurableDeadLetterQueue(dal)
        replica_a.append(registry.execute(make_context("explode")))
        assert len(replica_b) == 1
        replica_b.purge()
        assert len(replica_a) == 0


class TestEngineAutoSelection:
    def test_engine_over_durable_gallery_gets_a_durable_queue(self, tmp_path):
        dal = build_dal(tmp_path)
        gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(5))
        engine = RuleEngine(gallery)
        assert isinstance(engine.dead_letters, DurableDeadLetterQueue)

    def test_engine_over_memory_gallery_keeps_the_in_memory_queue(self, tmp_path):
        dal = DataAccessLayer(
            InMemoryMetadataStore(),
            FilesystemBlobStore(tmp_path / "blobs"),
            LRUBlobCache(4),
        )
        gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(5))
        engine = RuleEngine(gallery)
        assert isinstance(engine.dead_letters, DeadLetterQueue)

    def test_explicit_queue_wins(self, tmp_path):
        dal = build_dal(tmp_path)
        gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(5))
        mine = DeadLetterQueue()
        engine = RuleEngine(gallery, dead_letters=mine)
        assert engine.dead_letters is mine
