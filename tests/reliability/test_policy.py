"""Tests for RetryPolicy: backoff shape, jitter determinism, deadlines."""

import pytest

from repro.errors import MetadataStoreError, RetryBudgetExceededError
from repro.reliability import RetryPolicy


def no_sleep_policy(**kwargs):
    defaults = dict(sleep=lambda _s: None)
    defaults.update(kwargs)
    return RetryPolicy(**defaults)


class TestBackoffSchedule:
    def test_exponential_growth_capped_at_max(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=1.0, max_delay=4.0, multiplier=2.0, jitter=0.0
        )
        assert list(policy.delays()) == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_is_deterministic_per_seed(self):
        a = RetryPolicy(max_attempts=5, jitter=0.5, seed=7)
        b = RetryPolicy(max_attempts=5, jitter=0.5, seed=7)
        c = RetryPolicy(max_attempts=5, jitter=0.5, seed=8)
        assert list(a.delays()) == list(b.delays())
        assert list(a.delays()) != list(c.delays())

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=1.0, max_delay=1.0, jitter=0.25, seed=3
        )
        for delay in policy.delays():
            assert 1.0 <= delay <= 1.25

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)


class TestCall:
    def test_success_needs_no_retry(self):
        policy = no_sleep_policy(max_attempts=3)
        calls = []
        assert policy.call(lambda: calls.append(1) or "ok") == "ok"
        assert len(calls) == 1

    def test_transient_failures_then_success(self):
        policy = no_sleep_policy(max_attempts=4)
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise MetadataStoreError("transient")
            return "recovered"

        assert policy.call(flaky) == "recovered"
        assert attempts["n"] == 3

    def test_max_attempts_respected_and_original_error_reraised(self):
        policy = no_sleep_policy(max_attempts=3)
        attempts = {"n": 0}

        def always_fails():
            attempts["n"] += 1
            raise MetadataStoreError(f"boom {attempts['n']}")

        with pytest.raises(MetadataStoreError, match="boom 3"):
            policy.call(always_fails)
        assert attempts["n"] == 3

    def test_non_retryable_errors_propagate_immediately(self):
        policy = no_sleep_policy(max_attempts=5)
        attempts = {"n": 0}

        def wrong_kind():
            attempts["n"] += 1
            raise ValueError("not transient")

        with pytest.raises(ValueError):
            policy.call(wrong_kind, retry_on=(MetadataStoreError,))
        assert attempts["n"] == 1

    def test_on_retry_callback_sees_attempt_numbers(self):
        policy = no_sleep_policy(max_attempts=3)
        seen = []

        def fails_twice():
            if len(seen) < 2:
                raise MetadataStoreError("x")
            return "done"

        policy.call(fails_twice, on_retry=lambda n, exc: seen.append(n))
        assert seen == [2, 3]


class TestDeadline:
    def test_deadline_abandons_backoff_that_would_overrun(self):
        clock = {"now": 0.0}

        def fake_clock():
            return clock["now"]

        def fake_sleep(seconds):
            clock["now"] += seconds

        policy = RetryPolicy(
            max_attempts=10,
            base_delay=1.0,
            max_delay=1.0,
            jitter=0.0,
            deadline=2.5,
            sleep=fake_sleep,
            clock=fake_clock,
        )
        attempts = {"n": 0}

        def always_fails():
            attempts["n"] += 1
            raise MetadataStoreError("down")

        with pytest.raises(MetadataStoreError):
            policy.call(always_fails)
        # attempts at t=0, 1, 2; the next backoff would land at t=3 > 2.5
        assert attempts["n"] == 3

    def test_exhausted_deadline_before_first_attempt(self):
        policy = RetryPolicy(deadline=0.0, clock=lambda: 100.0, sleep=lambda _s: None)
        with pytest.raises(RetryBudgetExceededError):
            policy.call(lambda: "never runs")
