"""Shared fixtures: deterministic clocks/ids and Gallery assemblies.

Storage-backend parametrization: any test taking the ``gallery`` fixture
runs against both the in-memory and the SQLite metadata store, so every
registry behaviour is exercised on the MySQL stand-in too.
"""

from __future__ import annotations

import pytest

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.store.blob import InMemoryBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore, SQLiteMetadataStore


@pytest.fixture
def clock() -> ManualClock:
    return ManualClock(start=1_000_000.0, tick=1.0)


@pytest.fixture
def id_factory() -> SeededIdFactory:
    return SeededIdFactory(seed=42)


@pytest.fixture(params=["memory", "sqlite"])
def metadata_store(request):
    if request.param == "memory":
        yield InMemoryMetadataStore()
    else:
        store = SQLiteMetadataStore(":memory:")
        yield store
        store.close()


@pytest.fixture
def dal(metadata_store) -> DataAccessLayer:
    return DataAccessLayer(
        metadata_store, InMemoryBlobStore(), LRUBlobCache(1024 * 1024)
    )


@pytest.fixture
def gallery(dal, clock, id_factory) -> Gallery:
    return Gallery(dal, clock=clock, id_factory=id_factory)


@pytest.fixture
def memory_gallery(clock, id_factory) -> Gallery:
    """A fast single-backend Gallery for tests that don't probe storage."""
    dal = DataAccessLayer(
        InMemoryMetadataStore(), InMemoryBlobStore(), LRUBlobCache(1024 * 1024)
    )
    return Gallery(dal, clock=clock, id_factory=id_factory)
