"""Tests for the exception hierarchy contract."""

import inspect

import pytest

from repro import errors


def all_error_classes():
    return [
        obj
        for _, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception)
    ]


class TestHierarchy:
    def test_every_library_error_is_a_gallery_error(self):
        for exc_class in all_error_classes():
            assert issubclass(exc_class, errors.GalleryError), exc_class

    def test_storage_family(self):
        for exc_class in (
            errors.BlobStoreError,
            errors.MetadataStoreError,
            errors.ConsistencyError,
        ):
            assert issubclass(exc_class, errors.StorageError)

    def test_rule_family(self):
        for exc_class in (
            errors.RuleSyntaxError,
            errors.RuleEvaluationError,
            errors.RuleReviewError,
            errors.ActionError,
        ):
            assert issubclass(exc_class, errors.RuleError)

    def test_service_family(self):
        for exc_class in (errors.WireFormatError, errors.UnknownMethodError):
            assert issubclass(exc_class, errors.ServiceError)

    def test_single_except_catches_everything(self):
        for exc_class in all_error_classes():
            with pytest.raises(errors.GalleryError):
                raise exc_class("boom")

    def test_messages_preserved(self):
        try:
            raise errors.NotFoundError("no model m1")
        except errors.GalleryError as exc:
            assert "no model m1" in str(exc)
