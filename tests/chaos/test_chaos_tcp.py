"""Chaos suite: the full TCP stack under seeded fault injection.

Scenarios from the reliability ISSUE:

* the server is killed and restarted mid-workload (same service object,
  same port — only the process's listener "dies", state survives);
* every client talks through a seeded :class:`FaultyTransport` (drops,
  timeouts, lost responses) and the server's metadata store is itself
  flaky;
* a stored blob rots at rest.

Invariants asserted:

* **no lost updates** — every acknowledged write is present afterwards;
* **no duplicated writes** — request-id dedup means at-least-once delivery
  still yields exactly-once effect (and ``dedup.hits`` proves replays
  actually happened);
* **bounded recovery** — every client finishes; no thread is wedged;
* **integrity** — every blob read returns correct bytes or raises
  :class:`BlobCorruptionError`; corruption is never served silently.

The slow, concurrent scenarios are marked ``chaos`` and excluded from the
default (tier-1) run; ``make chaos`` runs them.  One fast unmarked test
keeps the harness itself covered in tier-1.
"""

import threading
import time

import pytest

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.errors import BlobCorruptionError, GalleryError, ServiceError
from repro.reliability import (
    FaultInjector,
    FaultKind,
    FaultyMetadataStore,
    FaultyTransport,
    RetryPolicy,
    corrupt_blob_at_rest,
)
from repro.service.client import GalleryClient, RetryingTransport
from repro.service.server import GalleryService
from repro.service.tcp import GalleryTcpServer, PipelinedTcpTransport, TcpTransport
from repro.store.blob import FilesystemBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore

CLIENTS = 8
ITEMS_PER_CLIENT = 12
FAULT_RATE = 0.10
WIRE_FAULTS = (
    FaultKind.DROP,
    FaultKind.TIMEOUT,
    FaultKind.ERROR,
    FaultKind.LOST_RESPONSE,
)


def build_stack(tmp_path, store_injector=None):
    """Service over a filesystem blob store + (optionally flaky) metadata."""
    metadata = InMemoryMetadataStore()
    if store_injector is not None:
        metadata = FaultyMetadataStore(metadata, store_injector)
    # A 1-byte cache never holds a blob, so every read hits the disk and
    # the integrity check — exactly what the corruption scenarios need.
    dal = DataAccessLayer(metadata, FilesystemBlobStore(tmp_path), LRUBlobCache(1))
    gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(7))
    service = GalleryService(gallery)
    return gallery, service


def chaos_client(host, port, client_id, injector, seed, pipelined=False):
    """A Gallery client whose wire is flaky but whose retries are armed.

    ``pipelined=True`` routes every frame through the overhauled
    :class:`PipelinedTcpTransport` instead of the serial transport, so the
    chaos suite exercises BOTH client paths against the event-loop server.
    """
    if pipelined:
        inner = PipelinedTcpTransport(host, port, timeout=5.0)
    else:
        inner = TcpTransport(host, port, timeout=5.0)
    transport = RetryingTransport(
        FaultyTransport(inner, injector),
        policy=RetryPolicy(
            max_attempts=8,
            base_delay=0.05,
            max_delay=1.0,
            jitter=0.1,
            seed=seed,
        ),
    )
    return GalleryClient(transport, client_id=client_id), transport


def test_harness_smoke_dedup_and_restart(tmp_path):
    """Tier-1 coverage of the chaos machinery itself (fast, deterministic)."""
    gallery, service = build_stack(tmp_path)
    server = GalleryTcpServer(service).start()
    host, port = server.address
    injector = FaultInjector(seed=1, rate=0.0)
    client, transport = chaos_client(host, port, "smoke-client", injector, seed=1)
    try:
        client.create_gallery_model("p", "demand")
        # Lost response on a write: the retry must be answered from the
        # dedup cache, not executed twice.
        injector.inject_next("call", FaultKind.LOST_RESPONSE)
        client.upload_model("p", "demand", b"v1", metadata={"tag": "one"})
        assert len(gallery.instances_of("demand")) == 1
        assert service.dedup.hits == 1
        # Kill and restart the listener on the same port: the next call
        # rides through on a fresh connection.
        server.stop()
        server = GalleryTcpServer(service, host=host, port=port).start()
        client.upload_model("p", "demand", b"v2", metadata={"tag": "two"})
        assert len(gallery.instances_of("demand")) == 2
    finally:
        transport.close()
        server.stop()


def test_harness_smoke_pipelined_dedup_and_restart(tmp_path):
    """The pipelined transport under the same lost-response + restart drill."""
    gallery, service = build_stack(tmp_path)
    server = GalleryTcpServer(service).start()
    host, port = server.address
    injector = FaultInjector(seed=2, rate=0.0)
    client, transport = chaos_client(
        host, port, "smoke-pipelined", injector, seed=2, pipelined=True
    )
    try:
        client.create_gallery_model("p", "demand")
        injector.inject_next("call", FaultKind.LOST_RESPONSE)
        client.upload_model("p", "demand", b"v1", metadata={"tag": "one"})
        assert len(gallery.instances_of("demand")) == 1
        assert service.dedup.hits == 1
        server.stop()
        server = GalleryTcpServer(service, host=host, port=port).start()
        client.upload_model("p", "demand", b"v2", metadata={"tag": "two"})
        assert len(gallery.instances_of("demand")) == 2
    finally:
        transport.close()
        server.stop()


@pytest.mark.chaos
class TestConcurrentChaos:
    def test_no_lost_or_duplicated_updates_under_chaos(self, tmp_path):
        store_injector = FaultInjector(
            seed=99,
            rate=FAULT_RATE,
            kinds=(FaultKind.ERROR, FaultKind.TIMEOUT),
            ops={"insert_instance", "insert_metric", "get_instance"},
            armed=False,
        )
        gallery, service = build_stack(tmp_path, store_injector=store_injector)
        server = GalleryTcpServer(service).start()
        host, port = server.address

        setup = GalleryClient(TcpTransport(host, port))
        for ci in range(CLIENTS):
            setup.create_gallery_model("p", f"demand-{ci}")
        setup._transport.close()  # noqa: SLF001 - test fixture teardown

        acked: dict[str, str] = {}  # tag -> instance_id, acknowledged writes
        acked_metrics: set[str] = set()
        failures: list[str] = []
        lock = threading.Lock()

        def worker(ci: int) -> None:
            injector = FaultInjector(seed=100 + ci, rate=FAULT_RATE, kinds=WIRE_FAULTS)
            # Odd-numbered clients ride the pipelined transport so the
            # chaos invariants are enforced on both client paths at once.
            client, transport = chaos_client(
                host, port, f"chaos-{ci}", injector, seed=ci, pipelined=ci % 2 == 1
            )
            if ci == 0:
                # Guarantee at least one dedup-protected replay regardless
                # of what the random schedule serves up.
                injector.inject_next("call", FaultKind.LOST_RESPONSE)
            try:
                for j in range(ITEMS_PER_CLIENT):
                    tag = f"c{ci}-i{j}"
                    try:
                        instance = client.upload_model(
                            "p",
                            f"demand-{ci}",
                            f"weights-{tag}".encode() * 50,
                            metadata={"tag": tag},
                        )
                    except (ServiceError, GalleryError):
                        with lock:
                            failures.append(f"upload:{tag}")
                        continue
                    with lock:
                        acked[tag] = instance["instance_id"]
                    try:
                        client.insert_model_instance_metric(
                            instance["instance_id"], "bias", j * 0.01
                        )
                    except (ServiceError, GalleryError):
                        with lock:
                            failures.append(f"metric:{tag}")
                    else:
                        with lock:
                            acked_metrics.add(instance["instance_id"])
            finally:
                transport.close()

        threads = [
            threading.Thread(target=worker, args=(ci,), name=f"chaos-{ci}")
            for ci in range(CLIENTS)
        ]
        started = time.monotonic()
        store_injector.arm()
        for thread in threads:
            thread.start()

        # Kill the server mid-workload, then bring it back on the SAME port
        # with the SAME service — a process restart in front of durable
        # state.  The dedup cache lives in the service, so replays of
        # pre-restart writes still hit it.
        time.sleep(0.5)
        server.stop()
        time.sleep(0.25)
        server = GalleryTcpServer(service, host=host, port=port).start()

        for thread in threads:
            thread.join(timeout=90.0)
        elapsed = time.monotonic() - started
        store_injector.disarm()
        wedged = [t.name for t in threads if t.is_alive()]
        server.stop()

        # -- bounded recovery ------------------------------------------------
        assert wedged == [], f"threads never recovered: {wedged}"
        assert elapsed < 90.0

        # -- no lost updates, no duplicates ----------------------------------
        for ci in range(CLIENTS):
            instances = gallery.instances_of(f"demand-{ci}")
            by_tag: dict[str, int] = {}
            for instance in instances:
                tag = instance.metadata.get("tag", "?")
                by_tag[tag] = by_tag.get(tag, 0) + 1
            duplicated = {tag: n for tag, n in by_tag.items() if n > 1}
            assert duplicated == {}, f"duplicated writes: {duplicated}"
            for j in range(ITEMS_PER_CLIENT):
                tag = f"c{ci}-i{j}"
                if tag in acked:
                    assert by_tag.get(tag) == 1, f"acked write lost: {tag}"

        # Metrics: an acknowledged metric insert landed exactly once.
        metadata_store = gallery.dal.metadata
        if isinstance(metadata_store, FaultyMetadataStore):
            metadata_store = metadata_store.inner
        for instance_id in acked_metrics:
            rows = metadata_store.metrics_of_instance(instance_id)
            assert len(rows) == 1, f"metric duplicated or lost for {instance_id}"

        # -- the chaos was real, and dedup really fired ----------------------
        assert service.dedup.hits >= 1
        total_ops = CLIENTS * ITEMS_PER_CLIENT * 2
        assert len(acked) + len(acked_metrics) >= int(total_ops * 0.8), (
            f"too little progress under chaos: {len(failures)} failures "
            f"of {total_ops} ops"
        )

        # -- storage integrity ----------------------------------------------
        audit = gallery.dal.audit_consistency()
        # Orphan blobs are legitimate debris of interrupted uploads; an
        # instance whose blob is missing would be actual data loss.
        assert list(audit.dangling_instances) == []

        # Every acknowledged blob reads back correct, byte for byte.
        for tag, instance_id in acked.items():
            blob = gallery.dal.load_blob(instance_id)
            assert blob == f"weights-{tag}".encode() * 50

    def test_corrupted_blob_is_detected_never_served(self, tmp_path):
        gallery, service = build_stack(tmp_path)
        server = GalleryTcpServer(service).start()
        host, port = server.address
        injector = FaultInjector(seed=7, rate=0.0)
        client, transport = chaos_client(host, port, "corrupt-probe", injector, seed=7)
        try:
            client.create_gallery_model("p", "demand")
            instances = [
                client.upload_model(
                    "p", "demand", f"payload-{j}".encode() * 100,
                    metadata={"tag": f"i{j}"},
                )
                for j in range(4)
            ]
            victim = instances[1]
            record = gallery.get_instance(victim["instance_id"])
            corrupt_blob_at_rest(gallery.dal.blobs, record.blob_location)

            # The corrupted blob is *detected*, and the typed error crosses
            # the wire to the client instead of silently wrong bytes.
            with pytest.raises(BlobCorruptionError):
                client.load_model_blob(victim["instance_id"])

            # Everyone else still reads back exactly what they stored.
            for j, instance in enumerate(instances):
                if instance["instance_id"] == victim["instance_id"]:
                    continue
                blob = client.load_model_blob(instance["instance_id"])
                assert blob == f"payload-{j}".encode() * 100
        finally:
            transport.close()
            server.stop()
