"""Chaos suite: N serving replicas over one shared store, clients
failing over between them.

This is the deployment the paper describes in Section 4 — a stateless
service tier, horizontally scaled, in front of a shared storage layer —
driven through :func:`repro.service.connect`:

* every replica is a full stack (its own **sharded** metadata store —
  :func:`repro.store.sharding.open_sharded_store` over a shared 3-shard
  layout, exercising PR 6's partitioned metadata plane under kill/restart
  — plus DAL, :class:`Gallery`, :class:`GalleryService`, TCP server) over
  one shard directory + one blob tree;
* clients hold a single ``gallery://`` URL naming every replica; the
  :class:`FailoverTransport` rotates reads, skips tripped breakers, and
  replays interrupted mutations against a different replica;
* the replay is safe because all replicas share the durable
  ``dedup_entries`` claim table — the second replica answers from the
  table instead of executing the mutation twice.

Invariants (mirroring the single-server chaos suite, now across a
replica kill + restart):

* **no lost acked writes** — every acknowledged upload/metric exists;
* **no duplicates** — at-least-once delivery, exactly-once effect;
* **bounded recovery** — every client finishes inside one retry budget;
* **durability** — dedup state survives a full restart of *all* replicas.

The concurrent scenario is marked ``chaos`` (run via ``make failover``);
the smoke test below keeps the harness covered in tier-1.
"""

import threading
import time

import pytest

from repro.core.registry import Gallery
from repro.errors import GalleryError, ServiceError
from repro.reliability import RetryPolicy
from repro.service import connect, wire
from repro.service.client import MethodRetryPolicies
from repro.service.server import DurableRequestDedupCache, GalleryService
from repro.service.tcp import GalleryTcpServer, TcpTransport
from repro.store.blob import FilesystemBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.sharding import open_sharded_store

CLIENTS = 8
ITEMS_PER_CLIENT = 12
SHARDS = 3


class Replica:
    """One full serving stack over the shared shard layout + blob tree."""

    def __init__(self, tmp_path, host="127.0.0.1", port=0):
        self.store = open_sharded_store(str(tmp_path / "shards"), SHARDS)
        self.dal = DataAccessLayer(
            self.store,
            FilesystemBlobStore(tmp_path / "blobs"),
            LRUBlobCache(8),
        )
        self.gallery = Gallery(self.dal)
        self.service = GalleryService(self.gallery)
        self.server = GalleryTcpServer(self.service, host=host, port=port).start()

    @property
    def address(self):
        host, port = self.server.address
        return f"{host}:{port}"

    def stop(self):
        self.server.stop()
        self.store.close()


def start_replicas(tmp_path, count=3):
    return [Replica(tmp_path) for _ in range(count)]


def url_for(replicas, **params):
    query = "&".join(f"{k}={v}" for k, v in params.items())
    return (
        "gallery://" + ",".join(r.address for r in replicas)
        + (f"?{query}" if query else "")
    )


def verification_gallery(tmp_path):
    """A fresh, replica-independent view of the shared store."""
    store = open_sharded_store(str(tmp_path / "shards"), SHARDS)
    dal = DataAccessLayer(
        store, FilesystemBlobStore(tmp_path / "blobs"), LRUBlobCache(8)
    )
    return Gallery(dal), store


def robust_policies(seed=0):
    def policy(attempts, deadline):
        # Budgets must outlast the dedup table's 5s stale-claim takeover:
        # a mutation interrupted mid-execution by the kill stays "pending"
        # until a retry adopts it, so the retry schedule has to still be
        # going at that point.
        return RetryPolicy(
            max_attempts=attempts,
            base_delay=0.05,
            max_delay=1.5,
            jitter=0.1,
            seed=seed,
            deadline=deadline,
        )

    return MethodRetryPolicies(
        read=policy(10, 20.0), blob=policy(10, 30.0), mutation=policy(10, 20.0)
    )


def replay_frame(request_id=4242, client_id="replay-probe", tag="replayed"):
    """A raw mutation frame with PINNED identity: byte-identical resends
    of this frame model a client retrying across replicas/restarts."""
    return wire.encode_request(
        wire.Request(
            method="uploadModel",
            params={
                "project": "p",
                "base_version_id": "demand-replay",
                "blob": b"replay-weights",
                "metadata": {"tag": tag},
            },
            request_id=request_id,
            client_id=client_id,
        ),
        wire.DIALECT_BINARY,
    )


def test_failover_smoke_replicas_share_state_and_dedup(tmp_path):
    """Tier-1 coverage of the replica harness (fast, deterministic)."""
    replicas = start_replicas(tmp_path, count=3)
    # roundrobin keeps this test's failover assertions deterministic (the
    # default p2c router may route *around* a corpse without ever dialing
    # it) and covers the ?routing= baseline escape hatch.
    client = connect(
        url_for(replicas, routing="roundrobin"),
        client_id="smoke",
        reset_timeout=0.2,
    )
    try:
        # file-backed store => every replica auto-selected durable dedup
        for replica in replicas:
            assert isinstance(replica.service.dedup, DurableRequestDedupCache)

        client.create_gallery_model("p", "demand")
        for n in range(3):
            client.upload_model("p", "demand", b"w%d" % n, metadata={"n": n})
        # reads rotate across replicas yet all see the shared store
        for _ in range(3):
            assert len(client.call("instancesOf", base_version_id="demand")) == 3

        # -- byte-identical mutation replay across DIFFERENT replicas ------
        client.create_gallery_model("p", "demand-replay")
        frame = replay_frame()
        direct_b = TcpTransport(*replicas[1].server.address)
        direct_c = TcpTransport(*replicas[2].server.address)
        try:
            first = direct_b(frame)
            replayed = direct_c(frame)  # never executed twice
        finally:
            direct_b.close()
            direct_c.close()
        assert replayed == first
        assert len(replicas[0].gallery.instances_of("demand-replay")) == 1

        # -- kill one replica: calls reroute without surfacing an error ----
        replicas[0].server.stop()
        for n in range(4):
            client.upload_model("p", "demand", b"x%d" % n, metadata={"kill": n})
        assert len(client.call("instancesOf", base_version_id="demand")) == 7
        assert client._transport.failovers >= 1  # noqa: SLF001 - test probe

        # -- full restart of every replica over the same file --------------
        for replica in replicas:
            replica.stop()
        revived = start_replicas(tmp_path, count=2)
        try:
            direct = TcpTransport(*revived[0].server.address)
            try:
                after_restart = direct(frame)  # same bytes, third send
            finally:
                direct.close()
            response = wire.decode_response(after_restart)
            assert response.ok  # replayed from the durable claim table
            check, check_store = verification_gallery(tmp_path)
            assert len(check.instances_of("demand-replay")) == 1
            assert len(check.instances_of("demand")) == 7
            check_store.close()
        finally:
            for replica in revived:
                replica.stop()
    finally:
        client.close()
        for replica in replicas:
            replica.server.stop()


@pytest.mark.chaos
class TestReplicaKillChaos:
    def test_replica_kill_and_restart_under_load(self, tmp_path):
        replicas = start_replicas(tmp_path, count=3)
        url = url_for(replicas)

        setup = connect(url, client_id="setup")
        for ci in range(CLIENTS):
            setup.create_gallery_model("p", f"demand-{ci}")
        setup.close()

        acked: dict[str, str] = {}  # tag -> instance_id
        acked_metrics: set[str] = set()
        failures: list[str] = []
        failovers = [0] * CLIENTS
        lock = threading.Lock()
        midway = threading.Event()

        def worker(ci: int) -> None:
            client = connect(
                url,
                client_id=f"chaos-{ci}",
                policies=robust_policies(seed=ci),
                reset_timeout=0.5,
            )
            try:
                for j in range(ITEMS_PER_CLIENT):
                    if j == 4:
                        midway.set()
                    tag = f"c{ci}-i{j}"
                    try:
                        instance = client.upload_model(
                            "p",
                            f"demand-{ci}",
                            f"weights-{tag}".encode() * 50,
                            metadata={"tag": tag},
                        )
                    except (ServiceError, GalleryError):
                        with lock:
                            failures.append(f"upload:{tag}")
                        continue
                    with lock:
                        acked[tag] = instance["instance_id"]
                    try:
                        client.insert_model_instance_metric(
                            instance["instance_id"], "bias", j * 0.01
                        )
                    except (ServiceError, GalleryError):
                        with lock:
                            failures.append(f"metric:{tag}")
                    else:
                        with lock:
                            acked_metrics.add(instance["instance_id"])
                    time.sleep(0.01)  # keep the workload alive past the kill
            finally:
                failovers[ci] = client._transport.failovers  # noqa: SLF001
                client.close()

        threads = [
            threading.Thread(target=worker, args=(ci,), name=f"failover-{ci}")
            for ci in range(CLIENTS)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()

        # Kill replica 0 mid-workload, then REBUILD it from the shared
        # file on the same port — a true process restart, not a listener
        # blip: fresh store connections, fresh Gallery, fresh service.
        # In-flight calls against it fail over; replays of its acked
        # writes are answered from the shared dedup table.
        assert midway.wait(timeout=30.0), "workload never reached midway"
        host, port = replicas[0].server.address
        replicas[0].stop()
        time.sleep(0.3)
        replicas[0] = Replica(tmp_path, host=host, port=port)

        for thread in threads:
            thread.join(timeout=60.0)
        elapsed = time.monotonic() - started
        wedged = [t.name for t in threads if t.is_alive()]
        for replica in replicas:
            replica.stop()

        # -- bounded recovery (reroute within one retry budget) -------------
        assert wedged == [], f"threads never recovered: {wedged}"
        assert elapsed < 60.0
        assert failures == [], f"ops failed despite two live replicas: {failures}"
        assert sum(failovers) >= 1, "the kill was never even noticed"

        # -- no lost acked writes, no duplicates -----------------------------
        check, check_store = verification_gallery(tmp_path)
        try:
            for ci in range(CLIENTS):
                instances = check.instances_of(f"demand-{ci}")
                by_tag: dict[str, int] = {}
                for instance in instances:
                    tag = instance.metadata.get("tag", "?")
                    by_tag[tag] = by_tag.get(tag, 0) + 1
                duplicated = {tag: n for tag, n in by_tag.items() if n > 1}
                assert duplicated == {}, f"duplicated writes: {duplicated}"
                for j in range(ITEMS_PER_CLIENT):
                    tag = f"c{ci}-i{j}"
                    if tag in acked:
                        assert by_tag.get(tag) == 1, f"acked write lost: {tag}"

            # an acknowledged metric insert landed exactly once
            for instance_id in acked_metrics:
                rows = check_store.metrics_of_instance(instance_id)
                assert len(rows) == 1, f"metric duplicated or lost: {instance_id}"

            # every acked blob reads back byte for byte
            for tag, instance_id in acked.items():
                assert check.dal.load_blob(instance_id) == (
                    f"weights-{tag}".encode() * 50
                )
        finally:
            check_store.close()
