"""Chaos suite: graceful drain + dynamic fleet membership under live load.

The zero-downtime-deploy scenario the membership layer exists for
(ROADMAP item 2): replicas leave and join a serving fleet *while 8
clients hammer it*, coordinated only through a registry file — no client
is ever restarted, reconfigured, or even told.

Timeline of the chaos scenario:

1. 3 replicas over one shared sharded store; a registry file lists them;
   every client connects via ``gallery+file://`` and polls the file.
2. Mid-workload, replica 0 is **drained**: it finishes in-flight
   requests, refuses new work with the typed retryable
   :class:`~repro.errors.ReplicaDrainingError`, and clients re-route
   without surfacing a single error.
3. The drained replica is **killed** and removed from the registry —
   safe, because the drain already emptied it.
4. A **rebuilt** replica starts in the draining state, is added to the
   registry (clients pick it up live), and is then **undrained** — from
   that poll on it serves traffic.
5. After the workload: the original survivors are drained, and a client
   that connected *before the rebuilt replica existed* must still
   complete reads — proof the new replica serves its traffic with no
   client restart.

Invariants: zero lost acked writes, zero duplicates, zero client-visible
errors through the whole churn.

The concurrent scenario is marked ``chaos`` (run via ``make drain``);
the smoke test keeps the registry + drain harness covered in tier-1.
"""

import threading
import time

import pytest

from repro.errors import GalleryError, ServiceError
from repro.service import connect

from tests.chaos.test_failover_replicas import (
    CLIENTS,
    ITEMS_PER_CLIENT,
    Replica,
    robust_policies,
    verification_gallery,
)


def write_registry(path, replicas):
    """Atomically publish the fleet (write-then-rename: pollers never see
    a torn file)."""
    tmp = path.with_suffix(".tmp")
    tmp.write_text(
        "# serving fleet\n"
        + "\n".join(r.address for r in replicas)
        + "\n"
    )
    tmp.replace(path)


def registry_url(path, **params):
    query = "&".join(f"{k}={v}" for k, v in params.items())
    return f"gallery+file://{path}" + (f"?{query}" if query else "")


def wait_for_membership(client, addresses, timeout=10.0):
    """Block until *client*'s transport routes over exactly *addresses*."""
    want = sorted(addresses)
    deadline = time.monotonic() + timeout
    transport = client._transport  # noqa: SLF001 - test probe
    while time.monotonic() < deadline:
        if sorted(e.address for e in transport.endpoints) == want:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"membership never converged to {want}: "
        f"{[e.address for e in transport.endpoints]}"
    )


def test_drain_smoke_registry_feeds_clients_live(tmp_path):
    """Tier-1 coverage of the registry + drain harness (fast, no churn
    threads): drain re-routing, a registry edit removing a replica, and a
    rebuilt replica serving a pre-existing client."""
    replicas = [Replica(tmp_path) for _ in range(3)]
    registry = tmp_path / "fleet.txt"
    write_registry(registry, replicas)
    # roundrobin makes the drain deterministic to exercise: rotation is
    # guaranteed to dial the draining replica, while the default p2c
    # router may simply route around it (covered by unit tests).
    client = connect(
        registry_url(registry, poll="0.05", routing="roundrobin"),
        client_id="drain-smoke",
        reset_timeout=0.2,
    )
    new = None
    try:
        client.create_gallery_model("p", "m")
        for n in range(3):
            client.upload_model("p", "m", b"w%d" % n, metadata={"n": n})

        # -- drain one replica: zero client-visible errors ----------------
        assert replicas[0].server.drain(wait_timeout=5.0) is True
        assert replicas[0].server.draining
        for n in range(3, 6):
            client.upload_model("p", "m", b"w%d" % n, metadata={"n": n})
        assert len(client.call("instancesOf", base_version_id="m")) == 6

        # -- registry edit removes the drained replica --------------------
        write_registry(registry, replicas[1:])
        wait_for_membership(client, [r.address for r in replicas[1:]])
        replicas[0].stop()

        # -- a rebuilt replica joins via the registry, no client restart --
        new = Replica(tmp_path)
        write_registry(registry, replicas[1:] + [new])
        wait_for_membership(
            client, [r.address for r in replicas[1:]] + [new.address]
        )
        # drain the originals: only the new replica can answer now
        for replica in replicas[1:]:
            assert replica.server.drain(wait_timeout=5.0) is True
        assert len(client.call("instancesOf", base_version_id="m")) == 6
        transport = client._transport  # noqa: SLF001 - test probe
        assert transport.membership_swaps >= 2
        assert transport.drain_reroutes >= 1
    finally:
        client.close()
        for replica in replicas[1:]:
            replica.stop()
        if new is not None:
            new.stop()


@pytest.mark.chaos
class TestDrainFleetChaos:
    def test_drain_kill_rebuild_under_live_load(self, tmp_path):
        replicas = [Replica(tmp_path) for _ in range(3)]
        registry = tmp_path / "fleet.txt"
        write_registry(registry, replicas)
        # roundrobin => every client is guaranteed to dial the draining
        # replica at least once, making `drain_reroutes >= 1` deterministic
        url = registry_url(registry, poll="0.1", routing="roundrobin")

        setup = connect(
            url, client_id="setup", policies=robust_policies(seed=99)
        )
        for ci in range(CLIENTS):
            setup.create_gallery_model("p", f"demand-{ci}")

        acked: dict[str, str] = {}  # tag -> instance_id
        failures: list[str] = []
        drain_reroutes = [0] * CLIENTS
        lock = threading.Lock()
        midway = threading.Event()

        def worker(ci: int) -> None:
            client = connect(
                url,
                client_id=f"drain-{ci}",
                policies=robust_policies(seed=ci),
                reset_timeout=0.5,
            )
            try:
                for j in range(ITEMS_PER_CLIENT):
                    if j == 4:
                        midway.set()
                    tag = f"c{ci}-i{j}"
                    try:
                        instance = client.upload_model(
                            "p",
                            f"demand-{ci}",
                            f"weights-{tag}".encode() * 50,
                            metadata={"tag": tag},
                        )
                    except (ServiceError, GalleryError):
                        with lock:
                            failures.append(f"upload:{tag}")
                        continue
                    with lock:
                        acked[tag] = instance["instance_id"]
                    time.sleep(0.01)  # keep the workload alive past the churn
            finally:
                drain_reroutes[ci] = (
                    client._transport.drain_reroutes  # noqa: SLF001
                )
                client.close()

        threads = [
            threading.Thread(target=worker, args=(ci,), name=f"drain-{ci}")
            for ci in range(CLIENTS)
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()

        rebuilt = None
        try:
            # -- mid-workload: drain replica 0, then kill it --------------
            assert midway.wait(timeout=30.0), "workload never reached midway"
            assert replicas[0].server.drain(wait_timeout=10.0) is True
            # the drain emptied it, so the kill loses nothing
            write_registry(registry, replicas[1:])
            time.sleep(0.3)  # let pollers drop it before the port dies
            replicas[0].stop()

            # -- a rebuilt replica joins draining, then is undrained ------
            rebuilt = Replica(tmp_path)
            rebuilt.server.drain(wait_timeout=1.0)
            write_registry(registry, replicas[1:] + [rebuilt])
            time.sleep(0.3)
            rebuilt.server.undrain()

            for thread in threads:
                thread.join(timeout=60.0)
            elapsed = time.monotonic() - started
            wedged = [t.name for t in threads if t.is_alive()]
            assert wedged == [], f"threads never recovered: {wedged}"
            assert elapsed < 60.0

            # -- zero client-visible errors through the whole churn -------
            assert failures == [], f"client-visible errors: {failures}"
            assert sum(drain_reroutes) >= 1, "the drain was never exercised"

            # -- the rebuilt replica serves a PRE-EXISTING client ---------
            wait_for_membership(
                setup, [r.address for r in replicas[1:]] + [rebuilt.address]
            )
            for replica in replicas[1:]:
                assert replica.server.drain(wait_timeout=10.0) is True
            assert (
                len(setup.call("instancesOf", base_version_id="demand-0")) > 0
            )
            report = setup._transport.load_report()  # noqa: SLF001
            assert report[rebuilt.address]["breaker"] == "closed"
        finally:
            setup.close()
            for replica in replicas[1:]:
                replica.stop()
            if rebuilt is not None:
                rebuilt.stop()

        # -- no lost acked writes, no duplicates --------------------------
        check, check_store = verification_gallery(tmp_path)
        try:
            for ci in range(CLIENTS):
                instances = check.instances_of(f"demand-{ci}")
                by_tag: dict[str, int] = {}
                for instance in instances:
                    tag = instance.metadata.get("tag", "?")
                    by_tag[tag] = by_tag.get(tag, 0) + 1
                duplicated = {t: n for t, n in by_tag.items() if n > 1}
                assert duplicated == {}, f"duplicated writes: {duplicated}"
                for j in range(ITEMS_PER_CLIENT):
                    tag = f"c{ci}-i{j}"
                    if tag in acked:
                        assert by_tag.get(tag) == 1, f"acked write lost: {tag}"
            for tag, instance_id in acked.items():
                assert check.dal.load_blob(instance_id) == (
                    f"weights-{tag}".encode() * 50
                ), f"blob corrupted: {tag}"
        finally:
            check_store.close()
