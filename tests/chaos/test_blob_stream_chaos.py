"""Chaos: a replica dies mid-sendfile-stream.

The PR8 invariant: a blob stream cut anywhere — between chunk frames or
inside one, on the sendfile path or the copy fallback — surfaces as a
typed transport/wire error at the client and is NEVER accepted as a
truncated blob.  With a failover client in front of two replicas the cut
is invisible: the blob read retries on the survivor and returns exact
bytes.

The deterministic single-server scenario runs in tier-1 (it controls the
cut point precisely, so it is fast and repeatable); the replicated
kill-under-load scenario is marked ``chaos`` (run via ``make chaos``).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.errors import ServiceError, WireFormatError
from repro.service import connect, tcp, wire
from repro.service.server import GalleryService
from repro.service.tcp import GalleryTcpServer
from repro.store.blob import FilesystemBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore
from repro.store.sharding import open_sharded_store

BLOB = bytes(range(256)) * (64 * 1024)  # 16 MiB — far beyond socket buffers


def _file_backed_service(tmp_path):
    store = FilesystemBlobStore(tmp_path / "blobs")
    dal = DataAccessLayer(InMemoryMetadataStore(), store, cache=None)
    gallery = Gallery(dal, clock=ManualClock(), id_factory=SeededIdFactory(7))
    gallery.create_model("p", "demand")
    instance = gallery.upload_model(
        "p", "demand", BLOB, metadata={"model_name": "rf"}
    )
    return GalleryService(gallery), instance.instance_id


@pytest.mark.parametrize("force_fallback", [False, True])
def test_mid_stream_kill_is_a_typed_error_never_truncation(
    tmp_path, monkeypatch, force_fallback
):
    """Kill the server with most of the stream undelivered.

    The client has read nothing when the server dies, and 16 MiB cannot
    hide in loopback socket buffers, so the cut is guaranteed to land
    mid-stream.  Draining what *was* delivered through the real receiver
    must end in a typed error — a completed (truncated) response would be
    the corruption bug this suite exists to catch.
    """
    if force_fallback:
        monkeypatch.setattr(tcp, "_sendfile", None)
    service, instance_id = _file_backed_service(tmp_path)
    server = GalleryTcpServer(service, chunk_size=64 * 1024).start()
    try:
        import socket as socket_module

        sock = socket_module.create_connection(server.address)
        try:
            request = wire.Request(
                method="loadModelBlob",
                params={"instance_id": instance_id},
                request_id=1,
            )
            sock.sendall(wire.encode_request(request, wire.DIALECT_BINARY))
            # Wait until the server has started streaming (its send buffer
            # fills because we are not reading), then kill it mid-chunk.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if sock.recv(1, socket_module.MSG_PEEK):
                    break
                time.sleep(0.005)
        finally:
            server.stop()
        try:
            receiver = tcp._FrameReceiver(sock)  # noqa: SLF001 - the real path
            with pytest.raises((ServiceError, ConnectionError, OSError)) as exc:
                while True:
                    frame = receiver.next_response()
                    response = wire.decode_response(frame)
                    # A complete response off a cut stream must not parse
                    # into a full-length blob.
                    assert response.ok
                    assert len(response.result) != len(BLOB), (
                        "truncated stream was accepted as a complete blob"
                    )
            if isinstance(exc.value, ServiceError):
                assert isinstance(exc.value, WireFormatError)
        finally:
            sock.close()
    finally:
        server.stop()


class _Replica:
    """A serving stack over a shared shard layout + shared blob tree."""

    def __init__(self, tmp_path):
        self.store = open_sharded_store(str(tmp_path / "shards"), 3)
        self.dal = DataAccessLayer(
            self.store,
            FilesystemBlobStore(tmp_path / "blobs"),
            LRUBlobCache(8),
        )
        self.gallery = Gallery(self.dal)
        self.service = GalleryService(self.gallery)
        self.server = GalleryTcpServer(
            self.service, chunk_size=256 * 1024
        ).start()

    @property
    def address(self):
        host, port = self.server.address
        return f"{host}:{port}"

    def stop(self):
        self.server.stop()
        self.store.close()


@pytest.mark.chaos
def test_failover_hides_a_replica_killed_mid_stream(tmp_path):
    """Two replicas, one killed while blob fetches are in flight.

    Every ``load_model_blob`` through the failover client must return the
    exact bytes — the interrupted stream is retried on the survivor, and
    the kill shows up only in the transport's failover counter.
    """
    replicas = [_Replica(tmp_path), _Replica(tmp_path)]
    client = connect(
        "gallery://"
        + ",".join(r.address for r in replicas)
        + "?routing=roundrobin",
        client_id="stream-chaos",
        reset_timeout=0.2,
    )
    try:
        client.create_gallery_model("p", "demand")
        instance = client.upload_model(
            "p", "demand", BLOB, metadata={"model_name": "rf"}
        )
        instance_id = instance["instance_id"]
        assert client.load_model_blob(instance_id) == BLOB  # warm both paths

        killer = threading.Timer(0.02, replicas[0].server.stop)
        killer.start()
        try:
            for _ in range(8):
                assert client.load_model_blob(instance_id) == BLOB
        finally:
            killer.join()
        # The dead replica was dialed at least once after (or during) the
        # kill — round-robin guarantees it — and the client recovered.
        assert client._transport.failovers >= 1  # noqa: SLF001 - test probe
    finally:
        client.close()
        for replica in replicas:
            replica.stop()
