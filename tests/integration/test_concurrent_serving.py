"""Concurrent serving: one TCP server, many client threads, SQLite in WAL.

The tentpole claim of the read-path overhaul: a file-backed SQLite store
opens one connection per thread (WAL mode), so the threaded TCP server's
readers proceed in parallel while writers stay serialized.  These tests
hammer a single :class:`GalleryTcpServer` from ≥8 threads mixing reads and
metric writes and assert no lost updates, no duplicate ids, and that the
insert-only immutability invariants still hold under load.
"""

from __future__ import annotations

import dataclasses
import threading

import pytest

from repro import build_gallery
from repro.core import ManualClock
from repro.errors import MetadataStoreError
from repro.service.client import GalleryClient
from repro.service.server import GalleryService
from repro.service.tcp import GalleryTcpServer, TcpTransport

N_THREADS = 8
N_OPS = 12


@pytest.fixture
def serving(tmp_path):
    """A file-backed (WAL) SQLite gallery behind a live TCP server."""
    gallery = build_gallery(
        metadata_backend="sqlite",
        blob_backend="memory",
        data_dir=tmp_path,
        clock=ManualClock(),
    )
    service = GalleryService(gallery)
    with GalleryTcpServer(service) as server:
        yield gallery, server
    gallery.dal.metadata.close()


def run_threads(worker, n_threads=N_THREADS):
    errors: list[Exception] = []

    def wrapped(index):
        try:
            worker(index)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert errors == [], errors


def client_for(server) -> GalleryClient:
    host, port = server.address
    return GalleryClient(TcpTransport(host, port))


class TestWalMode:
    def test_file_backed_store_runs_wal_per_thread(self, serving):
        gallery, _server = serving
        info = gallery.dal.metadata.connection_info()
        assert info["journal_mode"] == "wal"
        assert not info["serialized"]


class TestConcurrentServing:
    def test_mixed_reads_and_metric_writes(self, serving):
        gallery, server = serving
        seed_client = client_for(server)
        seed_client.create_gallery_model("p", "demand")
        instances = [
            seed_client.upload_model(
                "p",
                "demand",
                blob=f"blob-{i}".encode(),
                metadata={"model_name": "rf", "city": f"city-{i % 3}"},
            )
            for i in range(6)
        ]

        def worker(index):
            client = client_for(server)
            try:
                target = instances[index % len(instances)]
                for i in range(N_OPS):
                    # write: single metric + a bulk batch
                    client.insert_model_instance_metric(
                        target["instance_id"], f"m-{index}-{i}", float(i)
                    )
                    client.insert_model_instance_metrics(
                        target["instance_id"],
                        {f"batch-{index}-{i}-a": 0.1, f"batch-{index}-{i}-b": 0.2},
                    )
                    # reads: search, latest, blob fetch, batched metrics
                    hits = client.model_query(
                        [{"field": "city", "operator": "equal", "value": "city-0"}]
                    )
                    assert hits, "narrowed search must keep finding instances"
                    latest = client.latest_instance("demand")
                    assert latest["instance_id"] == instances[-1]["instance_id"]
                    blob = client.load_model_blob(target["instance_id"])
                    assert blob == f"blob-{instances.index(target)}".encode()
                    grouped = client.metrics_for_instances(
                        [target["instance_id"]]
                    )
                    assert target["instance_id"] in grouped
            finally:
                client._transport.close()  # noqa: SLF001 - test teardown

        run_threads(worker)

        # no lost updates: every thread wrote N_OPS singles + 2*N_OPS batched
        expected = {}
        for index in range(N_THREADS):
            iid = instances[index % len(instances)]["instance_id"]
            expected[iid] = expected.get(iid, 0) + 3 * N_OPS
        grouped = gallery.metrics_for_instances(list(expected))
        for iid, count in expected.items():
            assert len(grouped[iid]) == count, f"lost metrics on {iid}"
        # no duplicate ids anywhere
        all_ids = [m.metric_id for records in grouped.values() for m in records]
        assert len(all_ids) == len(set(all_ids))
        assert gallery.dal.audit_consistency().consistent

    def test_concurrent_uploads_unique_ids_and_versions(self, serving):
        gallery, server = serving
        seed_client = client_for(server)
        seed_client.create_gallery_model("p", "demand")
        per_thread = 10

        def worker(index):
            client = client_for(server)
            try:
                for i in range(per_thread):
                    client.upload_model("p", "demand", blob=f"{index}/{i}".encode())
            finally:
                client._transport.close()  # noqa: SLF001

        run_threads(worker)
        total = N_THREADS * per_thread
        instances = gallery.instances_of("demand")
        assert len(instances) == total
        assert len({i.instance_id for i in instances}) == total
        assert len({i.instance_version for i in instances}) == total

    def test_immutability_still_enforced_under_concurrency(self, serving):
        gallery, server = serving
        client = client_for(server)
        client.create_gallery_model("p", "demand")
        uploaded = client.upload_model("p", "demand", blob=b"m")
        record = gallery.get_instance(uploaded["instance_id"])

        violations: list[Exception] = []

        def worker(index):
            if index % 2 == 0:
                # legal: deprecation flag flips are idempotent bookkeeping
                gallery.deprecate_instance(record.instance_id)
            else:
                # illegal: blob_location is immutable — must raise every time
                try:
                    gallery.dal.metadata.replace_instance(
                        dataclasses.replace(record, blob_location="mem://moved")
                    )
                except MetadataStoreError as exc:
                    violations.append(exc)

        run_threads(worker)
        assert len(violations) == N_THREADS // 2
        stored = gallery.get_instance(record.instance_id)
        assert stored.blob_location == record.blob_location
        assert stored.deprecated
