"""Integration: the full Section 3.6/3.7 health loop.

drift -> monitor signal -> rule-engine retrain request -> challenger
shadow deployment -> promotion -> deprecation of the old champion,
everything through public APIs and the event bus.
"""

import pytest

from repro import build_gallery
from repro.core import DriftDetector, ManualClock, SeededIdFactory
from repro.core.records import MetricScope
from repro.monitoring import (
    DeprecationPolicy,
    DeprecationSweeper,
    HealthMonitor,
    MonitorConfig,
    ShadowDeployment,
    ShadowState,
    register_promote_action,
)
from repro.rules import RuleEngine, action_rule


@pytest.fixture
def world():
    gallery = build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(44))
    engine = RuleEngine(gallery, clock=ManualClock(), bus=gallery.bus)
    engine.register(
        action_rule(
            uuid="retrain-on-drift",
            team="forecasting",
            given="true",
            when='metrics["drift_ratio:mape"] > 1.5',
            actions=["retrain"],
        )
    )
    monitor = HealthMonitor(
        gallery,
        MonitorConfig(
            watch_metrics=("mape",),
            detector_factory=lambda: DriftDetector(
                baseline_window=4, recent_window=2, ratio_threshold=1.5, patience=1
            ),
        ),
    )
    return gallery, engine, monitor


def test_full_health_loop(world):
    gallery, engine, monitor = world

    # 1. deploy a champion
    gallery.create_model("p", "demand", owner="team")
    champion = gallery.upload_model("p", "demand", blob=b"champion")
    champion_id = champion.instance_id

    # 2. healthy period, then degradation
    for value in [0.10] * 5:
        gallery.insert_metric(champion_id, "mape", value, scope="Production")
    monitor.sweep([champion_id])
    assert engine.drain() == []

    for value in [0.30] * 3:
        gallery.insert_metric(champion_id, "mape", value, scope="Production")
    snapshot = monitor.sweep([champion_id])[0]
    assert "mape" in snapshot.drifting_metrics

    # 3. the drift signal flows through Gallery metrics into the rule engine
    fired = engine.drain()
    assert [f.context.action for f in fired] == ["retrain"]
    assert engine.actions.sent("retrain")[0].instance_id == champion_id

    # 4. a challenger is trained and shadow-deployed
    challenger = gallery.upload_model(
        "p", "demand", blob=b"challenger", parent_instance_id=champion_id
    )
    serving = {"city": champion_id}
    register_promote_action(engine.actions, serving)
    shadow = ShadowDeployment(
        gallery, engine.actions, champion_id, challenger.instance_id, patience=2
    )
    shadow.observe_window(champion_value=0.30, challenger_value=0.10)
    shadow.observe_window(champion_value=0.31, challenger_value=0.11)
    assert shadow.state is ShadowState.PROMOTED
    assert serving["city"] == challenger.instance_id

    # 5. the sweeper retires the beaten champion (challenger now has
    #    production metrics as the serving model)
    for value in [0.10, 0.11]:
        gallery.insert_metric(
            challenger.instance_id, "mape", value, scope=MetricScope.PRODUCTION
        )
    sweeper = DeprecationSweeper(
        gallery, DeprecationPolicy(metric="mape", patience=2, margin=0.1)
    )
    sweeper.sweep()
    outcome = sweeper.sweep()
    assert champion_id in outcome.deprecated
    assert gallery.get_instance(champion_id).deprecated
    # the lineage lives on: deprecated champion still fetchable by id
    assert gallery.load_instance_blob(champion_id) == b"champion"
    # and the live pool now serves only the challenger
    live = gallery.instances_of("demand")
    assert [record.instance_id for record in live] == [challenger.instance_id]


def test_loop_is_idempotent_after_promotion(world):
    gallery, engine, monitor = world
    gallery.create_model("p", "demand")
    champion = gallery.upload_model("p", "demand", blob=b"c")
    for value in [0.1] * 4 + [0.5] * 2:
        gallery.insert_metric(champion.instance_id, "mape", value, scope="Production")
    monitor.sweep([champion.instance_id])
    engine.drain()
    first_count = len(engine.actions.sent("retrain"))
    # further sweeps with no fresh production data do not re-fire
    monitor.sweep([champion.instance_id])
    engine.drain()
    assert len(engine.actions.sent("retrain")) == first_count
