"""PR9 acceptance: fleet-scale rule-driven family switching (Section 4.2).

Three serving replicas over one sharded store; a checked-in action rule
fires ``switch_family`` for every city when the event window opens; the
harness measures switch propagation to every replica over the wire (under
concurrent ``modelQuery`` load) and the event-hour MAPE improvement of
registry-driven switching vs. a never-switching baseline, then stamps
``BENCH_PR9.json`` at the repo root.
"""

from __future__ import annotations

import json

from pathlib import Path

from repro.forecasting.scenario import ScenarioConfig, run_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_PATH = REPO_ROOT / "BENCH_PR9.json"


class TestFleetScaleFamilySwitch:
    def test_rule_driven_switch_across_replicas(self, tmp_path):
        config = ScenarioConfig(
            cities=10,
            weeks=8,
            train_weeks=6,
            shard_count=4,
            replicas=3,
            seed=9,
            sample_cities=6,
            load_threads=4,
        )
        result = run_scenario(config, tmp_path / "gallery", out_path=BENCH_PATH)

        # The rule switched every city's durable assignment, and every
        # replica resolved the same post-switch instance over the wire.
        assert result.cities_switched == config.cities
        assert result.replicas_agree

        # Propagation: each sampled scope observed on each replica.
        assert len(result.propagation_ms) == config.sample_cities * config.replicas
        assert result.propagation_p50_ms <= result.propagation_p95_ms
        assert result.propagation_p95_ms < 2000.0, (
            f"switch propagation p95 {result.propagation_p95_ms:.1f}ms "
            "breached the 2s bar"
        )

        # The switch happened under live query traffic, loss-free.
        assert result.queries_during_switch > 0
        assert result.query_errors == 0

        # EXP-C1-SWITCH: >10% event-hour MAPE improvement vs never switching.
        assert result.event_mape_improvement > 0.10, (
            f"event-hour MAPE improvement {result.event_mape_improvement:.1%} "
            "below the paper's >10% bar"
        )

        # Every switch is a durable row: per city, the launch assignment
        # (switch_count=1) plus the open and close rule switches.
        assert result.durable_switch_total >= 3 * config.cities

        # The stamped benchmark file is self-consistent with the result.
        stamped = json.loads(BENCH_PATH.read_text())
        assert stamped["propagation"]["p95_ms"] < 2000.0
        assert stamped["propagation"]["replicas_agree"] is True
        assert stamped["mape"]["event_improvement"] > 0.10
        assert stamped["config"]["replicas"] == 3
        assert stamped["switching"]["cities_switched"] == config.cities
