"""Integration: rule repo -> engine -> registry orchestration loops.

Covers the two Figure 8 client paths end to end, the deploy gate of
Listing 2, drift-triggered retraining, and champion selection of Listing 1.
"""

import pytest

from repro import build_gallery
from repro.core import DriftDetector, ManualClock, SeededIdFactory
from repro.rules import RuleEngine, RuleRepository, action_rule, selection_rule


@pytest.fixture
def world():
    clock = ManualClock()
    gallery = build_gallery(clock=clock, id_factory=SeededIdFactory(21))
    engine = RuleEngine(gallery, clock=clock, bus=gallery.bus)
    repo = RuleRepository(clock=clock)
    return gallery, engine, repo


class TestDeployGate:
    """Listing 2: deploy when bias is within [-0.1, 0.1]."""

    def setup_rules(self, engine, repo):
        rule = action_rule(
            uuid="deploy-gate",
            team="forecasting",
            given='model_domain == "UberX"',
            when="metrics.bias <= 0.1 and metrics.bias >= -0.1",
            actions=["deploy"],
        )
        repo.check_in("alice", "bob", "deploy gate", [rule])
        engine.sync_from_repo(repo)

    def test_good_instance_auto_deploys(self, world):
        gallery, engine, repo = world
        self.setup_rules(engine, repo)
        gallery.create_model("p", "demand")
        instance = gallery.upload_model(
            "p", "demand", blob=b"m", metadata={"model_domain": "UberX"}
        )
        gallery.insert_metric(instance.instance_id, "bias", 0.05)
        fired = engine.drain()
        assert [f.context.action for f in fired] == ["deploy"]
        assert engine.actions.sent("deploy")[0].instance_id == instance.instance_id

    def test_bad_instance_not_deployed(self, world):
        gallery, engine, repo = world
        self.setup_rules(engine, repo)
        gallery.create_model("p", "demand")
        instance = gallery.upload_model(
            "p", "demand", blob=b"m", metadata={"model_domain": "UberX"}
        )
        gallery.insert_metric(instance.instance_id, "bias", 0.4)
        assert engine.drain() == []

    def test_other_domain_ignored(self, world):
        gallery, engine, repo = world
        self.setup_rules(engine, repo)
        gallery.create_model("p", "eats")
        instance = gallery.upload_model(
            "p", "eats", blob=b"m", metadata={"model_domain": "Eats"}
        )
        gallery.insert_metric(instance.instance_id, "bias", 0.0)
        assert engine.drain() == []

    def test_rule_update_through_review_changes_behaviour(self, world):
        gallery, engine, repo = world
        self.setup_rules(engine, repo)
        # tighten the gate to +-0.01 through the peer-review process
        tighter = action_rule(
            uuid="deploy-gate",
            team="forecasting",
            given='model_domain == "UberX"',
            when="metrics.bias <= 0.01 and metrics.bias >= -0.01",
            actions=["deploy"],
        )
        request = repo.propose(
            "alice", "tighten gate", {"forecasting/deploy-gate.json": tighter.to_json()}
        )
        repo.approve(request.request_id, reviewer="bob")
        engine.sync_from_repo(repo)
        gallery.create_model("p", "demand")
        instance = gallery.upload_model(
            "p", "demand", blob=b"m", metadata={"model_domain": "UberX"}
        )
        gallery.insert_metric(instance.instance_id, "bias", 0.05)  # passes old gate only
        assert engine.drain() == []


class TestChampionSelection:
    """Listing 1: select the freshest model within the error threshold."""

    def test_latest_qualified_instance_wins(self, world):
        gallery, engine, _ = world
        gallery.create_model("p", "demand")
        stale = gallery.upload_model(
            "p", "demand", blob=b"old", metadata={"model_name": "linear_regression"}
        )
        gallery.insert_metric(stale.instance_id, "mae", 3.0)
        fresh = gallery.upload_model(
            "p", "demand", blob=b"new", metadata={"model_name": "linear_regression"}
        )
        gallery.insert_metric(fresh.instance_id, "mae", 4.0)
        broken = gallery.upload_model(
            "p", "demand", blob=b"broken", metadata={"model_name": "linear_regression"}
        )
        gallery.insert_metric(broken.instance_id, "mae", 50.0)

        rule = selection_rule(
            uuid="freshest-good",
            team="forecasting",
            given='model_name == "linear_regression"',
            when="metrics.mae < 5",
            selection="a.created_time > b.created_time",
        )
        result = engine.select(rule)
        assert result.instance_id == fresh.instance_id
        assert result.candidates_eligible == 2

    def test_deprecated_champion_disappears(self, world):
        gallery, engine, _ = world
        gallery.create_model("p", "demand")
        only = gallery.upload_model(
            "p", "demand", blob=b"x", metadata={"model_name": "linear_regression"}
        )
        gallery.insert_metric(only.instance_id, "mae", 1.0)
        rule = selection_rule(
            uuid="sel", team="t",
            given='model_name == "linear_regression"',
            when="metrics.mae < 5",
            selection="a.created_time > b.created_time",
        )
        assert engine.select(rule).instance_id == only.instance_id
        gallery.deprecate_instance(only.instance_id)
        assert engine.select(rule).instance_id is None


class TestDriftRetrainLoop:
    """Section 3.6/3.7: drift detection triggers retraining via rules."""

    def test_drift_alert_fires_retrain_action(self, world):
        gallery, engine, _ = world
        rule = action_rule(
            uuid="drift-retrain",
            team="forecasting",
            given="true",
            when="metrics.drift_ratio > 1.5",
            actions=["retrain", "alert"],
        )
        engine.register(rule)
        gallery.create_model("p", "demand")
        instance = gallery.upload_model("p", "demand", blob=b"m")
        detector = DriftDetector(
            baseline_window=4, recent_window=2, ratio_threshold=1.5, patience=1
        )
        # healthy period, then degradation; the monitor publishes the ratio
        for error in [0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.4, 0.4]:
            report = detector.observe(error)
            gallery.insert_metric(
                instance.instance_id,
                "drift_ratio",
                report.degradation_ratio,
                scope="Production",
            )
        fired = engine.drain()
        actions = sorted(f.context.action for f in fired)
        assert actions == ["alert", "retrain"]

    def test_retrained_instance_passes_gate_and_deploys(self, world):
        gallery, engine, _ = world
        engine.register(
            action_rule(
                uuid="gate", team="t", given="true",
                when="metrics.mape < 0.2", actions=["deploy"],
            )
        )
        gallery.create_model("p", "demand")
        bad = gallery.upload_model("p", "demand", blob=b"bad")
        gallery.insert_metric(bad.instance_id, "mape", 0.5)
        assert engine.drain() == []
        good = gallery.upload_model(
            "p", "demand", blob=b"good", parent_instance_id=bad.instance_id
        )
        gallery.insert_metric(good.instance_id, "mape", 0.1)
        fired = engine.drain()
        assert [f.context.instance_id for f in fired] == [good.instance_id]


class TestLifecycleAutomation:
    """Figure 1 automation: the deploy action moves the lifecycle stage."""

    def test_deploy_action_advances_lifecycle(self, world):
        from repro.core import LifecycleStage

        gallery, engine, _ = world
        # replace the default deploy action with one that advances the stage
        engine.actions.register(
            "deploy",
            lambda ctx: gallery.mark_deployed(ctx.instance_id, reason=ctx.rule_uuid),
            replace=True,
        )
        engine.register(
            action_rule(
                uuid="stage-gate", team="t", given="true",
                when="metrics.mape < 0.2", actions=["deploy"],
            )
        )
        gallery.create_model("p", "demand")
        instance = gallery.upload_model("p", "demand", blob=b"m")
        assert gallery.lifecycle.stage_of(instance.instance_id) is LifecycleStage.EVALUATION
        gallery.insert_metric(instance.instance_id, "mape", 0.05)
        engine.drain()
        assert gallery.lifecycle.stage_of(instance.instance_id) is LifecycleStage.DEPLOYED
        history = gallery.lifecycle.history(instance.instance_id)
        assert history[-1].reason == "stage-gate"
