"""End-to-end integration: the full Listings 3-5 workflow over real
storage backends, plus the figures, through the public API only."""

import numpy as np
import pytest

from repro import build_gallery
from repro.core import ManualClock, SeededIdFactory
from repro.forecasting.features import FeatureSpec, build_dataset
from repro.forecasting.models import RandomForest, deserialize, serialize
from repro.forecasting.workload import CityProfile, generate_city_demand


@pytest.fixture(params=["memory", "durable"])
def full_gallery(request, tmp_path):
    if request.param == "memory":
        return build_gallery(clock=ManualClock(), id_factory=SeededIdFactory(11))
    return build_gallery(
        metadata_backend="sqlite",
        blob_backend="fs",
        data_dir=tmp_path,
        clock=ManualClock(),
        id_factory=SeededIdFactory(11),
    )


class TestQuickstartFlow:
    def test_train_upload_query_fetch_serve(self, full_gallery):
        """The complete paper workflow with a real trained model."""
        gallery = full_gallery
        series = generate_city_demand(
            CityProfile(name="New York City", base_demand=120), 24 * 7 * 4, seed=1
        )
        spec = FeatureSpec(lags=(1, 2, 3, 24), rolling_windows=(6,))
        dataset = build_dataset(series.values, spec)
        train, validation = dataset.split(0.8)
        model = RandomForest(n_trees=5, max_depth=4, seed=1).fit(
            train.features, train.targets
        )

        # Listing 3: create + upload
        gallery.create_model("example-project", "supply_rejection", owner="chong")
        instance = gallery.upload_model(
            "example-project",
            "supply_rejection",
            blob=serialize(model),
            metadata={
                "model_name": "Random Forest",
                "city": "New York City",
                "model_type": "repro-forecasting",
                "features": list(spec.feature_names()),
                "hyperparameters": model.hyperparameters(),
            },
        )

        # Listing 4: metrics
        from repro.forecasting.evaluation import evaluate_forecast

        metrics = evaluate_forecast(
            validation.targets, model.predict(validation.features)
        )
        gallery.insert_metrics(instance.instance_id, metrics, scope="Validation")

        # Listing 5: search
        hits = gallery.model_query(
            [
                {"field": "projectName", "operator": "equal", "value": "example-project"},
                {"field": "modelName", "operator": "equal", "value": "Random Forest"},
                {"field": "metricName", "operator": "equal", "value": "bias"},
                {"field": "metricValue", "operator": "smaller_than", "value": 0.25},
            ]
        )
        assert [h.instance_id for h in hits] == [instance.instance_id]

        # serving: fetch blob, rebuild, predict identically
        restored = deserialize(gallery.load_instance_blob(instance.instance_id))
        assert np.allclose(
            restored.predict(validation.features), model.predict(validation.features)
        )

    def test_retrain_lineage_and_deprecation_cycle(self, full_gallery):
        gallery = full_gallery
        gallery.create_model("p", "demand", owner="team")
        v1 = gallery.upload_model("p", "demand", blob=b"v1")
        v2 = gallery.upload_model(
            "p", "demand", blob=b"v2", parent_instance_id=v1.instance_id
        )
        gallery.deprecate_instance(v1.instance_id)
        assert gallery.latest_instance("demand").instance_id == v2.instance_id
        assert gallery.lineage.ancestors(v2.instance_id) == [v1.instance_id]
        # deprecated v1 is still fetchable for consumers mid-migration
        assert gallery.load_instance_blob(v1.instance_id) == b"v1"

    def test_storage_audit_clean_after_workflow(self, full_gallery):
        gallery = full_gallery
        gallery.create_model("p", "demand")
        for version in range(5):
            gallery.upload_model("p", "demand", blob=f"v{version}".encode())
        report = gallery.dal.audit_consistency()
        assert report.consistent
        assert report.orphan_blobs == ()
