"""Concurrency: the registry under parallel writers (threaded TCP service).

The TCP server handles each connection on its own thread, so the registry's
mutating paths must tolerate concurrent callers.  These tests hammer shared
state from multiple threads and assert nothing is lost or duplicated.
"""

import threading

import pytest

from repro import build_gallery
from repro.core import ManualClock

N_THREADS = 6
PER_THREAD = 25


@pytest.fixture
def gallery():
    # real UUIDs (thread-safe entropy); ManualClock guarantees unique stamps
    return build_gallery(clock=ManualClock())


def run_threads(worker):
    errors: list[Exception] = []

    def wrapped(index):
        try:
            worker(index)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(N_THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == [], errors


class TestConcurrentWrites:
    def test_parallel_uploads_same_lineage(self, gallery):
        gallery.create_model("p", "demand")

        def worker(index):
            for i in range(PER_THREAD):
                gallery.upload_model("p", "demand", blob=f"{index}-{i}".encode())

        run_threads(worker)
        total = N_THREADS * PER_THREAD
        chain = gallery.lineage.lineage("demand")
        assert len(chain) == total, "no lineage entries lost"
        assert len({e.instance_id for e in chain}) == total
        # display versions are unique and the final minor equals the count
        versions = [
            i.instance_version for i in gallery.instances_of("demand")
        ]
        assert len(set(versions)) == total
        assert gallery.dal.audit_consistency().consistent

    def test_parallel_metrics_same_instance(self, gallery):
        gallery.create_model("p", "demand")
        instance = gallery.upload_model("p", "demand", blob=b"m")

        def worker(index):
            for i in range(PER_THREAD):
                gallery.insert_metric(
                    instance.instance_id, f"metric-{index}", float(i)
                )

        run_threads(worker)
        records = gallery.metrics_of(instance.instance_id)
        assert len(records) == N_THREADS * PER_THREAD

    def test_parallel_model_creation_distinct_bases(self, gallery):
        def worker(index):
            for i in range(PER_THREAD):
                gallery.create_model("p", f"base-{index}-{i}")

        run_threads(worker)
        assert len(gallery.models()) == N_THREADS * PER_THREAD

    def test_parallel_deprecation_idempotent(self, gallery):
        gallery.create_model("p", "demand")
        instances = [
            gallery.upload_model("p", "demand", blob=f"{i}".encode())
            for i in range(N_THREADS * 2)
        ]

        def worker(index):
            # threads race to deprecate overlapping instances
            for instance in instances[index: index + N_THREADS]:
                gallery.deprecate_instance(instance.instance_id)

        run_threads(worker)
        assert gallery.dal.audit_consistency().consistent
        deprecated = [
            i for i in gallery.instances_of("demand", include_deprecated=True)
            if i.deprecated
        ]
        assert len(deprecated) >= N_THREADS  # every targeted one is flagged
