"""Tests for the command-line interface (durable on-disk Gallery)."""

import json
from pathlib import Path

import pytest

from repro import build_gallery
from repro.cli import main
from repro.reliability import DurableDeadLetterQueue
from repro.rules.actions import ActionContext, ActionRegistry


def run(capsys, *argv):
    code = main([str(a) for a in argv])
    output = capsys.readouterr().out
    return code, json.loads(output)


@pytest.fixture
def data_dir(tmp_path):
    return tmp_path / "gallery"


@pytest.fixture
def blob_file(tmp_path):
    path = tmp_path / "model.bin"
    path.write_bytes(b"serialized-model-bytes")
    return path


class TestWorkflow:
    def test_create_upload_query_fetch(self, capsys, data_dir, blob_file, tmp_path):
        code, model = run(
            capsys, "--data-dir", data_dir,
            "create-model", "example-project", "supply_rejection",
            "--owner", "cli-user",
        )
        assert code == 0 and model["owner"] == "cli-user"

        code, instance = run(
            capsys, "--data-dir", data_dir,
            "upload", "example-project", "supply_rejection", blob_file,
            "--meta", 'model_name="Random Forest"',
            "--meta", "random_seed=7",
        )
        assert code == 0
        assert instance["metadata"]["model_name"] == "Random Forest"
        assert instance["metadata"]["random_seed"] == 7  # JSON-parsed

        code, metric = run(
            capsys, "--data-dir", data_dir,
            "metric", instance["instance_id"], "bias", "0.05",
        )
        assert code == 0 and metric["value"] == 0.05

        code, hits = run(
            capsys, "--data-dir", data_dir,
            "query",
            'modelName:equal:"Random Forest"',
            "metricName:equal:bias",
            "metricValue:smaller_than:0.25",
        )
        assert code == 0
        assert [h["instance_id"] for h in hits] == [instance["instance_id"]]

        out_file = tmp_path / "restored.bin"
        code, fetched = run(
            capsys, "--data-dir", data_dir,
            "fetch", instance["instance_id"], out_file,
        )
        assert code == 0
        assert out_file.read_bytes() == b"serialized-model-bytes"

    def test_state_persists_across_invocations(self, capsys, data_dir, blob_file):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file)
        # a brand-new process (fresh main() call) sees the same registry
        code, models = run(capsys, "--data-dir", data_dir, "models")
        assert code == 0 and len(models) == 1
        code, lineage = run(capsys, "--data-dir", data_dir, "lineage", "demand")
        assert code == 0 and len(lineage) == 1

    def test_lineage_and_metrics_listing(self, capsys, data_dir, blob_file):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        _, first = run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file)
        _, second = run(
            capsys, "--data-dir", data_dir,
            "upload", "p", "demand", blob_file, "--parent", first["instance_id"],
        )
        code, chain = run(capsys, "--data-dir", data_dir, "lineage", "demand")
        assert [e["instance_id"] for e in chain] == [
            first["instance_id"], second["instance_id"],
        ]
        assert chain[1]["parent_instance_id"] == first["instance_id"]
        run(capsys, "--data-dir", data_dir, "metric", first["instance_id"], "mape", "0.1")
        code, metrics = run(
            capsys, "--data-dir", data_dir, "metrics", first["instance_id"]
        )
        assert code == 0 and metrics[0]["name"] == "mape"

    def test_health_and_deprecate(self, capsys, data_dir, blob_file):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        _, instance = run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file)
        code, health = run(
            capsys, "--data-dir", data_dir, "health", instance["instance_id"]
        )
        assert code == 0 and health["healthy"] is False
        code, flagged = run(
            capsys, "--data-dir", data_dir, "deprecate", instance["instance_id"]
        )
        assert code == 0 and flagged["deprecated"] is True
        code, hits = run(capsys, "--data-dir", data_dir, "query")
        assert hits == []
        code, hits = run(
            capsys, "--data-dir", data_dir, "query", "--include-deprecated"
        )
        assert len(hits) == 1

    def test_audit_and_gc(self, capsys, data_dir, blob_file):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file)
        code, audit = run(capsys, "--data-dir", data_dir, "audit")
        assert code == 0 and audit["consistent"] is True
        assert audit["summary"]["instances"] == 1
        code, gc = run(capsys, "--data-dir", data_dir, "gc")
        assert code == 0 and gc["removed_orphan_blobs"] == []


class TestErrorPaths:
    def test_gallery_errors_exit_nonzero_with_json(self, capsys, data_dir):
        code, error = run(capsys, "--data-dir", data_dir, "get-instance", "ghost")
        assert code == 1
        assert error["error"] == "NotFoundError"

    def test_missing_blob_file(self, capsys, data_dir):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        code, error = run(
            capsys, "--data-dir", data_dir, "upload", "p", "demand", "/no/such/file"
        )
        assert code == 1 and error["error"] == "FileNotFoundError"

    def test_bad_constraint_shape(self, capsys, data_dir):
        with pytest.raises(SystemExit):
            main(["--data-dir", str(data_dir), "query", "malformed-constraint"])

    def test_bad_meta_shape(self, capsys, data_dir, tmp_path):
        blob = tmp_path / "b.bin"
        blob.write_bytes(b"x")
        main(["--data-dir", str(data_dir), "create-model", "p", "demand"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(
                ["--data-dir", str(data_dir), "upload", "p", "demand", str(blob),
                 "--meta", "no-equals-sign"]
            )

    def test_duplicate_model_error(self, capsys, data_dir):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        code, error = run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        assert code == 1 and error["error"] == "ValidationError"


def park_failed_action(data_dir, action="alert", rule="r-1", instance="i-1"):
    """Seed the on-disk dead-letter table the way the rule engine would:
    execute a failing action and park the result in the durable queue."""
    gallery = build_gallery(
        metadata_backend="sqlite", blob_backend="fs", data_dir=Path(data_dir)
    )
    broken = ActionRegistry(include_defaults=True)
    broken.register(
        action, lambda ctx: (_ for _ in ()).throw(ConnectionError("down")),
        replace=True,
    )
    context = ActionContext(
        rule_uuid=rule,
        action=action,
        params={},
        instance_id=instance,
        document={"instance_id": instance},
        timestamp=100.0,
    )
    letter = DurableDeadLetterQueue(gallery.dal).append(broken.execute(context))
    gallery.dal.metadata.close()
    return letter


class TestDlq:
    def test_list_shows_parked_letters(self, capsys, data_dir):
        data_dir.mkdir(parents=True)
        parked = park_failed_action(data_dir, rule="r-1", instance="i-7")
        code, letters = run(capsys, "--data-dir", data_dir, "dlq", "list")
        assert code == 0 and len(letters) == 1
        assert letters[0]["letter_id"] == parked.letter_id
        assert letters[0]["error_type"] == "ConnectionError"
        assert letters[0]["context"]["instance_id"] == "i-7"

    def test_list_filters(self, capsys, data_dir):
        data_dir.mkdir(parents=True)
        park_failed_action(data_dir, action="alert", rule="r-a")
        park_failed_action(data_dir, action="deploy", rule="r-b")
        code, letters = run(
            capsys, "--data-dir", data_dir, "dlq", "list", "--rule", "r-a"
        )
        assert code == 0
        assert [x["context"]["action"] for x in letters] == ["alert"]
        code, letters = run(
            capsys, "--data-dir", data_dir, "dlq", "list", "--action", "deploy"
        )
        assert [x["context"]["rule_uuid"] for x in letters] == ["r-b"]
        code, letters = run(
            capsys, "--data-dir", data_dir,
            "dlq", "list", "--error-type", "TimeoutError",
        )
        assert letters == []

    def test_redrive_drains_recoverable_letters(self, capsys, data_dir):
        data_dir.mkdir(parents=True)
        # "alert" is a default registry action, so the CLI's redrive (which
        # builds a fresh default registry) succeeds once the fault is gone.
        park_failed_action(data_dir, action="alert")
        code, outcome = run(capsys, "--data-dir", data_dir, "dlq", "redrive")
        assert code == 0
        assert outcome == {"attempted": 1, "succeeded": 1, "remaining": 0}
        code, letters = run(capsys, "--data-dir", data_dir, "dlq", "list")
        assert letters == []

    def test_redrive_subset_by_id(self, capsys, data_dir):
        data_dir.mkdir(parents=True)
        first = park_failed_action(data_dir, action="alert", instance="i-1")
        park_failed_action(data_dir, action="alert", instance="i-2")
        code, outcome = run(
            capsys, "--data-dir", data_dir, "dlq", "redrive", first.letter_id
        )
        assert code == 0
        assert outcome == {"attempted": 1, "succeeded": 1, "remaining": 1}

    def test_purge(self, capsys, data_dir):
        data_dir.mkdir(parents=True)
        first = park_failed_action(data_dir, instance="i-1")
        park_failed_action(data_dir, instance="i-2")
        code, outcome = run(
            capsys, "--data-dir", data_dir, "dlq", "purge", first.letter_id
        )
        assert code == 0 and outcome == {"purged": 1}
        code, outcome = run(capsys, "--data-dir", data_dir, "dlq", "purge")
        assert code == 0 and outcome == {"purged": 1}
        code, letters = run(capsys, "--data-dir", data_dir, "dlq", "list")
        assert letters == []


class TestGcRetention:
    def test_gc_expires_aged_dedup_and_dead_letters(self, capsys, data_dir):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        park_failed_action(data_dir)
        gallery = build_gallery(
            metadata_backend="sqlite", blob_backend="fs", data_dir=Path(data_dir)
        )
        gallery.dal.dedup_claim("cli-client", 7)
        gallery.dal.dedup_complete("cli-client", 7, b"resp")
        # A generous horizon keeps everything.
        code, kept = run(
            capsys, "--data-dir", data_dir, "gc",
            "--dedup-max-age", 10**9, "--dlq-max-age", 10**9,
        )
        assert code == 0
        assert kept["expired_dedup_entries"] == 0
        assert kept["expired_dead_letters"] == 0
        # A zero-second horizon expires both tables.
        code, swept = run(
            capsys, "--data-dir", data_dir, "gc",
            "--dedup-max-age", 0, "--dlq-max-age", 0,
        )
        assert code == 0
        assert swept["expired_dedup_entries"] == 1
        assert swept["expired_dead_letters"] == 1

    def test_plain_gc_leaves_retention_alone(self, capsys, data_dir):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        code, report = run(capsys, "--data-dir", data_dir, "gc")
        assert code == 0
        assert "expired_dedup_entries" not in report
        assert "expired_dead_letters" not in report
