"""Tests for the command-line interface (durable on-disk Gallery)."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main([str(a) for a in argv])
    output = capsys.readouterr().out
    return code, json.loads(output)


@pytest.fixture
def data_dir(tmp_path):
    return tmp_path / "gallery"


@pytest.fixture
def blob_file(tmp_path):
    path = tmp_path / "model.bin"
    path.write_bytes(b"serialized-model-bytes")
    return path


class TestWorkflow:
    def test_create_upload_query_fetch(self, capsys, data_dir, blob_file, tmp_path):
        code, model = run(
            capsys, "--data-dir", data_dir,
            "create-model", "example-project", "supply_rejection",
            "--owner", "cli-user",
        )
        assert code == 0 and model["owner"] == "cli-user"

        code, instance = run(
            capsys, "--data-dir", data_dir,
            "upload", "example-project", "supply_rejection", blob_file,
            "--meta", 'model_name="Random Forest"',
            "--meta", "random_seed=7",
        )
        assert code == 0
        assert instance["metadata"]["model_name"] == "Random Forest"
        assert instance["metadata"]["random_seed"] == 7  # JSON-parsed

        code, metric = run(
            capsys, "--data-dir", data_dir,
            "metric", instance["instance_id"], "bias", "0.05",
        )
        assert code == 0 and metric["value"] == 0.05

        code, hits = run(
            capsys, "--data-dir", data_dir,
            "query",
            'modelName:equal:"Random Forest"',
            "metricName:equal:bias",
            "metricValue:smaller_than:0.25",
        )
        assert code == 0
        assert [h["instance_id"] for h in hits] == [instance["instance_id"]]

        out_file = tmp_path / "restored.bin"
        code, fetched = run(
            capsys, "--data-dir", data_dir,
            "fetch", instance["instance_id"], out_file,
        )
        assert code == 0
        assert out_file.read_bytes() == b"serialized-model-bytes"

    def test_state_persists_across_invocations(self, capsys, data_dir, blob_file):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file)
        # a brand-new process (fresh main() call) sees the same registry
        code, models = run(capsys, "--data-dir", data_dir, "models")
        assert code == 0 and len(models) == 1
        code, lineage = run(capsys, "--data-dir", data_dir, "lineage", "demand")
        assert code == 0 and len(lineage) == 1

    def test_lineage_and_metrics_listing(self, capsys, data_dir, blob_file):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        _, first = run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file)
        _, second = run(
            capsys, "--data-dir", data_dir,
            "upload", "p", "demand", blob_file, "--parent", first["instance_id"],
        )
        code, chain = run(capsys, "--data-dir", data_dir, "lineage", "demand")
        assert [e["instance_id"] for e in chain] == [
            first["instance_id"], second["instance_id"],
        ]
        assert chain[1]["parent_instance_id"] == first["instance_id"]
        run(capsys, "--data-dir", data_dir, "metric", first["instance_id"], "mape", "0.1")
        code, metrics = run(
            capsys, "--data-dir", data_dir, "metrics", first["instance_id"]
        )
        assert code == 0 and metrics[0]["name"] == "mape"

    def test_health_and_deprecate(self, capsys, data_dir, blob_file):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        _, instance = run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file)
        code, health = run(
            capsys, "--data-dir", data_dir, "health", instance["instance_id"]
        )
        assert code == 0 and health["healthy"] is False
        code, flagged = run(
            capsys, "--data-dir", data_dir, "deprecate", instance["instance_id"]
        )
        assert code == 0 and flagged["deprecated"] is True
        code, hits = run(capsys, "--data-dir", data_dir, "query")
        assert hits == []
        code, hits = run(
            capsys, "--data-dir", data_dir, "query", "--include-deprecated"
        )
        assert len(hits) == 1

    def test_audit_and_gc(self, capsys, data_dir, blob_file):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file)
        code, audit = run(capsys, "--data-dir", data_dir, "audit")
        assert code == 0 and audit["consistent"] is True
        assert audit["summary"]["instances"] == 1
        code, gc = run(capsys, "--data-dir", data_dir, "gc")
        assert code == 0 and gc["removed_orphan_blobs"] == []


class TestErrorPaths:
    def test_gallery_errors_exit_nonzero_with_json(self, capsys, data_dir):
        code, error = run(capsys, "--data-dir", data_dir, "get-instance", "ghost")
        assert code == 1
        assert error["error"] == "NotFoundError"

    def test_missing_blob_file(self, capsys, data_dir):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        code, error = run(
            capsys, "--data-dir", data_dir, "upload", "p", "demand", "/no/such/file"
        )
        assert code == 1 and error["error"] == "FileNotFoundError"

    def test_bad_constraint_shape(self, capsys, data_dir):
        with pytest.raises(SystemExit):
            main(["--data-dir", str(data_dir), "query", "malformed-constraint"])

    def test_bad_meta_shape(self, capsys, data_dir, tmp_path):
        blob = tmp_path / "b.bin"
        blob.write_bytes(b"x")
        main(["--data-dir", str(data_dir), "create-model", "p", "demand"])
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(
                ["--data-dir", str(data_dir), "upload", "p", "demand", str(blob),
                 "--meta", "no-equals-sign"]
            )

    def test_duplicate_model_error(self, capsys, data_dir):
        run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        code, error = run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
        assert code == 1 and error["error"] == "ValidationError"
