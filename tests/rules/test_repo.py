"""Tests for the git-style rule repository: validation, review, history."""

import pytest

from repro.core.clock import ManualClock
from repro.errors import NotFoundError, RuleReviewError, ValidationError
from repro.rules.repo import RequestState, RuleRepository
from repro.rules.rule import action_rule, selection_rule


def repo():
    return RuleRepository(clock=ManualClock())


def rule_json(team="forecasting", uuid="u1", when="metrics.mape < 0.2"):
    return action_rule(uuid, team, "true", when, actions=["alert"]).to_json()


class TestProposalValidation:
    def test_valid_proposal_opens_request(self):
        r = repo()
        request = r.propose("alice", "add rule", {"forecasting/u1.json": rule_json()})
        assert request.state is RequestState.OPEN
        assert r.open_requests() == [request]

    def test_bad_json_rejected_at_proposal(self):
        with pytest.raises(ValidationError):
            repo().propose("alice", "bad", {"forecasting/u1.json": "{oops"})

    def test_bad_expression_rejected_at_proposal(self):
        from repro.errors import RuleSyntaxError

        broken = rule_json().replace("metrics.mape < 0.2", "metrics.mape <")
        with pytest.raises(RuleSyntaxError):
            repo().propose("alice", "bad", {"forecasting/u1.json": broken})

    def test_team_directory_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            repo().propose("alice", "bad", {"pricing/u1.json": rule_json(team="forecasting")})

    def test_path_shape_enforced(self):
        r = repo()
        with pytest.raises(ValidationError):
            r.propose("alice", "bad", {"no-directory.json": rule_json()})
        with pytest.raises(ValidationError):
            r.propose("alice", "bad", {"forecasting/rule.yaml": rule_json()})

    def test_empty_change_rejected(self):
        with pytest.raises(ValidationError):
            repo().propose("alice", "empty", {})

    def test_delete_requires_existing_path(self):
        with pytest.raises(NotFoundError):
            repo().propose("alice", "rm", {"forecasting/ghost.json": None})


class TestReviewGate:
    def test_approval_by_peer_merges(self):
        r = repo()
        request = r.propose("alice", "add", {"forecasting/u1.json": rule_json()})
        commit = r.approve(request.request_id, reviewer="bob")
        assert commit.author == "alice" and commit.reviewer == "bob"
        assert r.paths() == ["forecasting/u1.json"]

    def test_self_review_rejected(self):
        r = repo()
        request = r.propose("alice", "add", {"forecasting/u1.json": rule_json()})
        with pytest.raises(RuleReviewError):
            r.approve(request.request_id, reviewer="alice")

    def test_empty_reviewer_rejected(self):
        r = repo()
        request = r.propose("alice", "add", {"forecasting/u1.json": rule_json()})
        with pytest.raises(RuleReviewError):
            r.approve(request.request_id, reviewer="")

    def test_double_approval_rejected(self):
        r = repo()
        request = r.propose("alice", "add", {"forecasting/u1.json": rule_json()})
        r.approve(request.request_id, reviewer="bob")
        with pytest.raises(RuleReviewError):
            r.approve(request.request_id, reviewer="carol")

    def test_rejection_blocks_merge(self):
        r = repo()
        request = r.propose("alice", "add", {"forecasting/u1.json": rule_json()})
        r.reject(request.request_id, reviewer="bob", reason="too loose")
        assert request.state is RequestState.REJECTED
        assert r.paths() == []
        with pytest.raises(RuleReviewError):
            r.approve(request.request_id, reviewer="bob")

    def test_review_can_be_disabled(self):
        r = RuleRepository(clock=ManualClock(), require_review=False)
        request = r.propose("alice", "add", {"forecasting/u1.json": rule_json()})
        r.approve(request.request_id, reviewer="alice")  # allowed when disabled
        assert r.paths() == ["forecasting/u1.json"]

    def test_unknown_request_raises(self):
        with pytest.raises(NotFoundError):
            repo().approve(99, reviewer="bob")


class TestHistoryAndState:
    def test_update_and_delete_history(self):
        r = repo()
        path = "forecasting/u1.json"
        v1 = rule_json(when="metrics.mape < 0.2")
        v2 = rule_json(when="metrics.mape < 0.1")
        r.approve(r.propose("alice", "v1", {path: v1}).request_id, "bob")
        r.approve(r.propose("alice", "v2", {path: v2}).request_id, "bob")
        assert r.read(path) == v2
        history = r.history(path)
        assert [c.message for c in history] == ["v1", "v2"]
        r.approve(r.propose("alice", "rm", {path: None}).request_id, "bob")
        assert r.paths() == []
        with pytest.raises(NotFoundError):
            r.read(path)

    def test_state_at_reconstructs_past(self):
        r = repo()
        path = "forecasting/u1.json"
        v1 = rule_json(when="metrics.mape < 0.2")
        v2 = rule_json(when="metrics.mape < 0.1")
        r.approve(r.propose("alice", "v1", {path: v1}).request_id, "bob")
        r.approve(r.propose("alice", "v2", {path: v2}).request_id, "bob")
        assert r.state_at(1) == {path: v1}
        assert r.state_at(2) == {path: v2}
        assert r.state_at(0) == {}
        with pytest.raises(NotFoundError):
            r.state_at(99)

    def test_commit_timestamps_increase(self):
        r = repo()
        c1 = r.approve(
            r.propose("a", "1", {"t/u1.json": rule_json(team="t", uuid="u1")}).request_id, "b"
        )
        c2 = r.approve(
            r.propose("a", "2", {"t/u2.json": rule_json(team="t", uuid="u2")}).request_id, "b"
        )
        assert c2.timestamp > c1.timestamp
        assert c2.commit_id == c1.commit_id + 1


class TestTeamScoping:
    def test_paths_and_rules_by_team(self):
        r = repo()
        r.check_in(
            "alice",
            "bob",
            "seed",
            [
                action_rule("u1", "forecasting", "true", "true", actions=["alert"]),
                action_rule("u2", "pricing", "true", "true", actions=["alert"]),
            ],
        )
        assert r.paths("forecasting") == ["forecasting/u1.json"]
        rules = r.rules("pricing")
        assert [rule.uuid for rule in rules] == ["u2"]
        assert len(r.rules()) == 2

    def test_rule_at_compiles(self):
        r = repo()
        rule = selection_rule("u1", "forecasting", "true", "true", "a.t > b.t")
        r.check_in("alice", "bob", "seed", [rule])
        loaded = r.rule_at("forecasting/u1.json")
        assert loaded.uuid == "u1"
        assert loaded.kind is rule.kind
