"""ActionRegistry.execute failure paths + engine dead-letter workflow.

Satellite coverage for the fault-tolerant control plane: exception class
and traceback preserved in ActionResult, retry policies respected, and the
engine's dead-letter queue re-drained once a transient fault clears.
"""

import pytest

from repro.core.clock import ManualClock
from repro.reliability import DeadLetterQueue, RetryPolicy
from repro.rules.actions import ActionContext, ActionRegistry
from repro.rules.engine import CandidateDocument, RuleEngine, build_static_source
from repro.rules.rule import action_rule as build_action_rule


def make_context(action, instance="i-1"):
    return ActionContext(
        rule_uuid="r-1",
        action=action,
        params={},
        instance_id=instance,
        document={"instance_id": instance},
        timestamp=50.0,
    )


class TestExecuteFailurePaths:
    def test_exception_type_and_traceback_preserved(self):
        registry = ActionRegistry()

        def crash(context):
            raise KeyError("missing deployment target")

        registry.register("crash", crash)
        result = registry.execute(make_context("crash"))
        assert not result.ok
        assert result.error_type == "KeyError"
        assert "missing deployment target" in result.error
        assert "KeyError" in result.traceback
        assert "crash" in result.traceback  # the failing frame is visible
        assert result.attempts == 1

    def test_success_records_attempt_count(self):
        registry = ActionRegistry()
        result = registry.execute(make_context("alert"))
        assert result.ok
        assert result.attempts == 1
        assert result.error_type == ""
        assert result.traceback == ""

    def test_unknown_action_is_not_retried(self):
        registry = ActionRegistry(include_defaults=False)
        policy = RetryPolicy(max_attempts=5, sleep=lambda _s: None)
        result = registry.execute(make_context("ghost"), policy=policy)
        assert not result.ok
        assert result.error_type == "ActionError"
        assert "unknown action" in result.error

    def test_retries_respect_max_attempts(self):
        registry = ActionRegistry()
        calls = {"n": 0}

        def always_fails(context):
            calls["n"] += 1
            raise ConnectionError(f"attempt {calls['n']}")

        registry.register("flaky", always_fails)
        policy = RetryPolicy(max_attempts=3, sleep=lambda _s: None)
        result = registry.execute(make_context("flaky"), policy=policy)
        assert not result.ok
        assert calls["n"] == 3
        assert result.attempts == 3
        assert result.error == "attempt 3"  # the *last* failure is reported
        assert result.error_type == "ConnectionError"

    def test_retry_recovers_within_budget(self):
        registry = ActionRegistry()
        calls = {"n": 0}

        def succeeds_third_time(context):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ConnectionError("blip")
            return "done"

        registry.register("flaky", succeeds_third_time)
        policy = RetryPolicy(max_attempts=4, sleep=lambda _s: None)
        result = registry.execute(make_context("flaky"), policy=policy)
        assert result.ok
        assert result.attempts == 3


def deploy_rule(uuid="r-dl"):
    return build_action_rule(
        uuid=uuid,
        team="forecasting",
        given="true",
        when="true",
        actions=["deploy"],
    )


class FlakyDeploy:
    def __init__(self):
        self.healthy = False
        self.calls = 0

    def __call__(self, context):
        self.calls += 1
        if not self.healthy:
            raise ConnectionError("deploy API down")
        return f"deployed:{context.instance_id}"


@pytest.fixture
def engine_with_flaky_deploy():
    registry = ActionRegistry()
    flaky = FlakyDeploy()
    registry.register("deploy", flaky, replace=True)
    source = build_static_source(
        [CandidateDocument(instance_id="i-1", document={"instance_id": "i-1"})]
    )
    engine = RuleEngine(
        source,
        actions=registry,
        clock=ManualClock(),
        action_policy=RetryPolicy(max_attempts=2, sleep=lambda _s: None),
        dead_letters=DeadLetterQueue(),
    )
    engine.register(deploy_rule())
    return engine, flaky


class TestEngineDeadLetters:
    def test_failed_action_is_dead_lettered_not_lost(self, engine_with_flaky_deploy):
        engine, flaky = engine_with_flaky_deploy
        engine.trigger("r-dl")
        fired = engine.drain()
        assert [r.ok for r in fired] == [False]
        assert flaky.calls == 2  # the policy retried before parking
        assert engine.stats.actions_dead_lettered == 1
        letters = engine.dead_letter_entries()
        assert len(letters) == 1
        assert letters[0].error_type == "ConnectionError"
        assert letters[0].attempts == 2

    def test_redrive_after_fault_clears(self, engine_with_flaky_deploy):
        engine, flaky = engine_with_flaky_deploy
        engine.trigger("r-dl")
        engine.drain()
        flaky.healthy = True

        results = engine.redrive_dead_letters()
        assert [r.ok for r in results] == [True]
        assert engine.dead_letter_entries() == []
        assert engine.stats.actions_redriven == 1
        # the audit trail shows the failure AND the eventual success
        outcomes = [r.ok for r in engine.action_log()]
        assert outcomes == [False, True]

    def test_at_most_once_still_holds_after_dead_letter(
        self, engine_with_flaky_deploy
    ):
        engine, flaky = engine_with_flaky_deploy
        engine.trigger("r-dl")
        engine.drain()
        flaky.healthy = True
        engine.trigger("r-dl")
        fired = engine.drain()
        # the (rule, instance) pair already fired: no duplicate execution,
        # recovery goes through the dead-letter queue instead
        assert fired == []
        engine.redrive_dead_letters()
        assert flaky.calls == 3  # 2 failed attempts + 1 successful redrive
