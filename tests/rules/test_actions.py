"""Tests for the callback action registry."""

import pytest

from repro.errors import ActionError
from repro.rules.actions import ActionContext, ActionRegistry


def context(action="alert", **params):
    return ActionContext(
        rule_uuid="u1",
        action=action,
        params=params,
        instance_id="i1",
        document={"city": "sf"},
        timestamp=1.0,
    )


class TestRegistration:
    def test_defaults_present(self):
        registry = ActionRegistry()
        for name in ("alert", "email", "deploy", "retrain", "deprecate"):
            assert name in registry

    def test_no_defaults_mode(self):
        registry = ActionRegistry(include_defaults=False)
        assert registry.names() == []

    def test_register_custom(self):
        registry = ActionRegistry(include_defaults=False)
        registry.register("custom", lambda ctx: "done")
        assert "custom" in registry

    def test_duplicate_requires_replace(self):
        registry = ActionRegistry()
        with pytest.raises(ActionError):
            registry.register("alert", lambda ctx: None)
        registry.register("alert", lambda ctx: "replaced", replace=True)
        assert registry.execute(context()).result == "replaced"

    def test_empty_name_rejected(self):
        with pytest.raises(ActionError):
            ActionRegistry().register("", lambda ctx: None)


class TestExecution:
    def test_default_action_records_to_outbox(self):
        registry = ActionRegistry()
        result = registry.execute(context("deploy"))
        assert result.ok
        assert len(registry.sent("deploy")) == 1
        assert registry.sent("deploy")[0].instance_id == "i1"

    def test_unknown_action_is_captured_not_raised(self):
        result = ActionRegistry().execute(context("launch_rocket"))
        assert not result.ok
        assert "unknown action" in result.error

    def test_crashing_callback_is_isolated(self):
        registry = ActionRegistry(include_defaults=False)

        def boom(ctx):
            raise RuntimeError("callback exploded")

        registry.register("boom", boom)
        result = registry.execute(context("boom"))
        assert not result.ok
        assert "callback exploded" in result.error

    def test_callback_receives_full_context(self):
        registry = ActionRegistry(include_defaults=False)
        seen = {}

        def capture(ctx):
            seen.update(
                rule=ctx.rule_uuid,
                params=dict(ctx.params),
                doc_city=ctx.document["city"],
            )

        registry.register("capture", capture)
        registry.execute(context("capture", env="prod"))
        assert seen == {"rule": "u1", "params": {"env": "prod"}, "doc_city": "sf"}

    def test_sent_of_unused_action_empty(self):
        assert ActionRegistry().sent("email") == []
