"""Tests for the rule engine: selection, events, drain, polling."""

import pytest

from repro.core.clock import ManualClock
from repro.errors import RuleError
from repro.rules.engine import CandidateDocument, RuleEngine, build_static_source
from repro.rules.events import Event, EventBus, EventKind
from repro.rules.repo import RuleRepository
from repro.rules.rule import action_rule, selection_rule


def doc(iid, **fields):
    fields.setdefault("metrics", {})
    return CandidateDocument(instance_id=iid, document=fields)


def engine_with(docs, bus=None):
    return RuleEngine(build_static_source(docs), clock=ManualClock(), bus=bus)


class TestSelection:
    CANDIDATES = [
        doc("old", city="sf", created_time=1.0, metrics={"mape": 0.10}),
        doc("new", city="sf", created_time=5.0, metrics={"mape": 0.12}),
        doc("bad", city="sf", created_time=9.0, metrics={"mape": 0.90}),
        doc("other", city="nyc", created_time=9.0, metrics={"mape": 0.05}),
    ]

    RULE = selection_rule(
        uuid="sel-1",
        team="forecasting",
        given='city == "sf"',
        when="metrics.mape < 0.5",
        selection="a.created_time > b.created_time",
    )

    def test_latest_qualified_wins(self):
        engine = engine_with(self.CANDIDATES)
        result = engine.select(self.RULE)
        assert result.instance_id == "new"
        assert result.candidates_considered == 4
        assert result.candidates_eligible == 2  # old + new; bad fails WHEN

    def test_no_candidates_returns_none(self):
        engine = engine_with([])
        result = engine.select(self.RULE)
        assert result.instance_id is None

    def test_best_metric_selection(self):
        rule = selection_rule(
            uuid="sel-2",
            team="forecasting",
            given='city == "sf"',
            when="metrics.mape < 0.5",
            selection="a.metrics.mape < b.metrics.mape",
        )
        assert engine_with(self.CANDIDATES).select(rule).instance_id == "old"

    def test_selecting_with_action_rule_raises(self):
        engine = engine_with(self.CANDIDATES)
        rule = action_rule("a-1", "t", "true", "true", actions=["alert"])
        with pytest.raises(RuleError):
            engine.select(rule)

    def test_select_by_uuid_requires_registration(self):
        engine = engine_with(self.CANDIDATES)
        with pytest.raises(RuleError):
            engine.select("ghost")
        engine.register(self.RULE)
        assert engine.select("sel-1").instance_id == "new"


class TestActionRules:
    def make_rule(self, uuid="act-1", when="metrics.bias <= 0.1 and metrics.bias >= -0.1"):
        return action_rule(
            uuid=uuid,
            team="forecasting",
            given='model_domain == "UberX"',
            when=when,
            actions=["deploy"],
        )

    def test_metric_event_triggers_matching_rule(self):
        bus = EventBus()
        docs = [doc("i1", model_domain="UberX", metrics={"bias": 0.05})]
        engine = engine_with(docs, bus=bus)
        engine.register(self.make_rule())
        bus.publish(Event(kind=EventKind.METRIC_UPDATED, instance_id="i1", metric_name="bias"))
        fired = engine.drain()
        assert len(fired) == 1
        assert fired[0].context.action == "deploy"
        assert fired[0].context.instance_id == "i1"

    def test_condition_failure_fires_nothing(self):
        bus = EventBus()
        docs = [doc("i1", model_domain="UberX", metrics={"bias": 0.5})]
        engine = engine_with(docs, bus=bus)
        engine.register(self.make_rule())
        bus.publish(Event(kind=EventKind.METRIC_UPDATED, instance_id="i1"))
        assert engine.drain() == []
        assert engine.stats.wasted_evaluations >= 1

    def test_at_most_once_per_rule_instance(self):
        bus = EventBus()
        docs = [doc("i1", model_domain="UberX", metrics={"bias": 0.05})]
        engine = engine_with(docs, bus=bus)
        engine.register(self.make_rule())
        for _ in range(3):
            bus.publish(Event(kind=EventKind.METRIC_UPDATED, instance_id="i1"))
        assert len(engine.drain()) == 1  # deploy fires once, not three times

    def test_metadata_event_matches_referenced_fields_only(self):
        bus = EventBus()
        docs = [doc("i1", model_domain="UberX", metrics={"bias": 0.05})]
        engine = engine_with(docs, bus=bus)
        engine.register(self.make_rule())
        bus.publish(
            Event(
                kind=EventKind.METADATA_UPDATED,
                instance_id="i1",
                payload={"fields": ["unrelated_field"]},
            )
        )
        assert engine.stats.jobs_enqueued == 0
        bus.publish(
            Event(
                kind=EventKind.METADATA_UPDATED,
                instance_id="i1",
                payload={"fields": ["model_domain"]},
            )
        )
        assert engine.stats.jobs_enqueued == 1

    def test_event_scoped_to_instance(self):
        bus = EventBus()
        docs = [
            doc("i1", model_domain="UberX", metrics={"bias": 0.05}),
            doc("i2", model_domain="UberX", metrics={"bias": 0.05}),
        ]
        engine = engine_with(docs, bus=bus)
        engine.register(self.make_rule())
        bus.publish(Event(kind=EventKind.METRIC_UPDATED, instance_id="i1"))
        fired = engine.drain()
        assert [f.context.instance_id for f in fired] == ["i1"]

    def test_direct_trigger_evaluates_all(self):
        docs = [
            doc("i1", model_domain="UberX", metrics={"bias": 0.05}),
            doc("i2", model_domain="UberX", metrics={"bias": 0.02}),
        ]
        engine = engine_with(docs)
        rule = self.make_rule()
        engine.register(rule)
        engine.trigger("act-1")
        fired = engine.drain()
        assert {f.context.instance_id for f in fired} == {"i1", "i2"}

    def test_unregistered_rule_skipped_during_drain(self):
        bus = EventBus()
        docs = [doc("i1", model_domain="UberX", metrics={"bias": 0.05})]
        engine = engine_with(docs, bus=bus)
        engine.register(self.make_rule())
        bus.publish(Event(kind=EventKind.METRIC_UPDATED, instance_id="i1"))
        engine.unregister("act-1")
        assert engine.drain() == []

    def test_duplicate_registration_rejected(self):
        engine = engine_with([])
        engine.register(self.make_rule())
        with pytest.raises(RuleError):
            engine.register(self.make_rule())

    def test_action_log_accumulates(self):
        docs = [doc("i1", model_domain="UberX", metrics={"bias": 0.0})]
        engine = engine_with(docs)
        engine.register(self.make_rule())
        engine.trigger("act-1")
        engine.drain()
        assert len(engine.action_log()) == 1


class TestPollingAblation:
    def test_polling_evaluates_everything_every_time(self):
        docs = [
            doc(f"i{n}", model_domain="UberX", metrics={"bias": 0.5}) for n in range(10)
        ]
        engine = engine_with(docs)
        engine.register(
            action_rule("a", "t", 'model_domain == "UberX"', "metrics.bias < 0.1", ["deploy"])
        )
        for _ in range(5):
            engine.poll_all()
        # 5 polls x 10 candidates, all wasted (condition never holds)
        assert engine.stats.candidate_evaluations == 50
        assert engine.stats.wasted_evaluations == 50
        assert engine.stats.actions_fired == 0


class TestRepoSync:
    def test_sync_loads_head_rules(self):
        repo = RuleRepository(clock=ManualClock())
        repo.check_in(
            "alice",
            "bob",
            "seed",
            [
                action_rule("u1", "t", "true", "metrics.mape < 0.1", ["alert"]),
                selection_rule("u2", "t", "true", "true", "a.created_time > b.created_time"),
            ],
        )
        engine = engine_with([])
        assert engine.sync_from_repo(repo) == 2
        assert {r.uuid for r in engine.rules()} == {"u1", "u2"}

    def test_sync_updates_existing_rule(self):
        repo = RuleRepository(clock=ManualClock())
        repo.check_in("a", "b", "v1", [action_rule("u1", "t", "true", "metrics.mape < 0.2", ["alert"])])
        engine = engine_with([])
        engine.sync_from_repo(repo)
        repo.check_in("a", "b", "v2", [action_rule("u1", "t", "true", "metrics.mape < 0.1", ["alert"])])
        engine.sync_from_repo(repo)
        rules = [r for r in engine.rules() if r.uuid == "u1"]
        assert len(rules) == 1
        assert "0.1" in rules[0].when.source


class TestEvaluationRobustness:
    """A rule that errors on a document must not break the engine."""

    def test_action_rule_expression_error_skips_candidate(self):
        bus = EventBus()
        # rule divides by a field that is zero for this candidate
        docs = [doc("i1", model_domain="UberX", denominator=0, metrics={"bias": 0.0})]
        engine = engine_with(docs, bus=bus)
        engine.register(
            action_rule(
                "crashy", "t",
                given="1 / denominator > 0",  # division by zero at eval time
                when="true",
                actions=["deploy"],
            )
        )
        engine.trigger("crashy")
        fired = engine.drain()  # must not raise
        assert fired == []
        assert engine.stats.evaluation_errors >= 1

    def test_bad_rule_does_not_block_good_rule(self):
        bus = EventBus()
        docs = [doc("i1", model_domain="UberX", metrics={"bias": 0.0})]
        engine = engine_with(docs, bus=bus)
        engine.register(
            action_rule("crashy", "t", given="ghost_field.sub > 1", when="true",
                        actions=["alert"])
        )
        engine.register(
            action_rule("good", "t", given='model_domain == "UberX"',
                        when="metrics.bias <= 0.1", actions=["deploy"])
        )
        bus.publish(Event(kind=EventKind.METRIC_UPDATED, instance_id="i1"))
        fired = engine.drain()
        assert [f.context.action for f in fired] == ["deploy"]

    def test_selection_skips_unscorable_candidates(self):
        docs = [
            doc("scored", city="sf", created_time=1.0, metrics={"mape": 0.1}),
            doc("unscorable", city="sf", created_time=9.0, metrics={}),
        ]
        engine = engine_with(docs)
        rule = selection_rule(
            "sel-robust", "t",
            given='city == "sf"',
            when="true",
            # comparator errors on candidates with no mape (null arithmetic)
            selection="a.metrics.mape * 1 < b.metrics.mape * 1",
        )
        result = engine.select(rule)  # must not raise
        assert result.instance_id == "scored"
