"""Tests for the conditional (ternary) expression: cond ? a : b."""

import pytest

from repro.errors import RuleSyntaxError
from repro.rules.lang import Expression, parse
from repro.rules.lang.ast import Ternary


def ev(source, **context):
    return Expression.compile(source).evaluate(context)


class TestParsing:
    def test_basic_shape(self):
        node = parse("a ? 1 : 2")
        assert isinstance(node, Ternary)

    def test_right_associative_nesting(self):
        node = parse("a ? 1 : b ? 2 : 3")
        assert isinstance(node, Ternary)
        assert isinstance(node.otherwise, Ternary)

    def test_nested_in_then_branch(self):
        node = parse("a ? b ? 1 : 2 : 3")
        assert isinstance(node.then, Ternary)

    def test_binds_looser_than_or(self):
        node = parse("a or b ? 1 : 2")
        assert isinstance(node, Ternary)
        assert node.condition.op == "or"

    def test_allowed_in_index_and_args(self):
        parse('metrics[a ? "x" : "y"]')
        parse("max(a ? 1 : 2, 3)")

    def test_missing_colon_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse("a ? 1")
        with pytest.raises(RuleSyntaxError):
            parse("a ? 1 : ")

    def test_unparse_round_trip(self):
        for source in ("a ? 1 : 2", "x > 0 ? x : -x", "a ? b ? 1 : 2 : 3"):
            node = parse(source)
            assert parse(node.unparse()) == node


class TestEvaluation:
    def test_branches(self):
        assert ev("true ? 1 : 2") == 1
        assert ev("false ? 1 : 2") == 2

    def test_condition_truthiness(self):
        assert ev("x ? 10 : 20", x=0) == 20
        assert ev("x ? 10 : 20", x="nonempty") == 10
        assert ev("metrics.ghost ? 1 : 2", metrics={}) == 2  # null is false

    def test_only_taken_branch_evaluated(self):
        # the untaken branch would divide by zero
        assert ev("true ? 1 : 1 / 0") == 1
        assert ev("false ? 1 / 0 : 2") == 2

    def test_practical_rule_usage(self):
        # penalise missing metrics instead of erroring: absent -> worst score
        source = 'metrics.mape == null ? 999 : metrics.mape'
        assert ev(source, metrics={}) == 999
        assert ev(source, metrics={"mape": 0.07}) == 0.07

    def test_referenced_names_cover_all_branches(self):
        expr = Expression.compile("a ? b : c")
        assert expr.referenced_names() == {"a", "b", "c"}
