"""Tests for the expression parser (precedence, structure, errors)."""

import pytest

from repro.errors import RuleSyntaxError
from repro.rules.lang.ast import Binary, Call, Identifier, Index, Literal, Member, Unary
from repro.rules.lang.parser import parse


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        node = parse("a or b and c")
        assert isinstance(node, Binary) and node.op == "or"
        assert isinstance(node.right, Binary) and node.right.op == "and"

    def test_comparison_binds_tighter_than_and(self):
        node = parse("a < 1 and b > 2")
        assert node.op == "and"
        assert node.left.op == "<" and node.right.op == ">"

    def test_arithmetic_binds_tighter_than_comparison(self):
        node = parse("a + 1 < b * 2")
        assert node.op == "<"
        assert node.left.op == "+" and node.right.op == "*"

    def test_multiplication_over_addition(self):
        node = parse("1 + 2 * 3")
        assert node.op == "+"
        assert node.right.op == "*"

    def test_parentheses_override(self):
        node = parse("(1 + 2) * 3")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_left_associative_arithmetic(self):
        node = parse("10 - 4 - 3")
        assert node.op == "-"
        assert node.left.op == "-"
        assert isinstance(node.right, Literal) and node.right.value == 3


class TestPostfix:
    def test_member_access(self):
        node = parse("metrics.bias")
        assert isinstance(node, Member)
        assert node.attr == "bias"
        assert isinstance(node.target, Identifier)

    def test_index_access(self):
        node = parse('metrics["r2"]')
        assert isinstance(node, Index)
        assert isinstance(node.index, Literal) and node.index.value == "r2"

    def test_chained_postfix(self):
        node = parse('a.b["c"].d')
        assert isinstance(node, Member) and node.attr == "d"
        assert isinstance(node.target, Index)

    def test_call_with_args(self):
        node = parse("max(a, b, 3)")
        assert isinstance(node, Call)
        assert node.func == "max" and len(node.args) == 3

    def test_call_no_args(self):
        node = parse("len()")
        assert isinstance(node, Call) and node.args == ()


class TestUnary:
    def test_not_forms(self):
        for source in ("!a", "not a"):
            node = parse(source)
            assert isinstance(node, Unary) and node.op == "not"

    def test_double_negation(self):
        node = parse("!!a")
        assert isinstance(node.operand, Unary)

    def test_unary_minus(self):
        node = parse("-a + b")
        assert node.op == "+"
        assert isinstance(node.left, Unary) and node.left.op == "-"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "   ",
            "a <",
            "a == ",
            "(a",
            "a)",
            'metrics[',
            "a . ",
            "1 2",
            "a && && b",
            "max(a,",
        ],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(RuleSyntaxError):
            parse(bad)

    def test_chained_comparison_rejected(self):
        with pytest.raises(RuleSyntaxError) as excinfo:
            parse("1 < a < 3")
        assert "chained" in str(excinfo.value)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(RuleSyntaxError):
            parse("a == b c")


class TestPaperListings:
    def test_listing1_when_clause(self):
        node = parse('metrics["r2"] <= 0.9')
        assert node.op == "<="

    def test_listing1_selection_clause(self):
        node = parse("a.created_time > b.created_time")
        assert node.op == ">"
        assert isinstance(node.left, Member) and node.left.attr == "created_time"

    def test_listing2_when_clause(self):
        node = parse("metrics.bias <= 0.1 and metrics.bias >= -0.1")
        assert node.op == "and"

    def test_unparse_round_trip(self):
        for source in (
            'metrics["r2"] <= 0.9',
            "a.created_time > b.created_time",
            "not (x and y) or z",
            "abs(metrics.bias) < 0.1",
        ):
            first = parse(source)
            assert parse(first.unparse()) == first
