"""Tests for rule definitions and the paper's JSON serialization."""

import json

import pytest

from repro.errors import ValidationError
from repro.rules.rule import ActionSpec, Rule, RuleKind, action_rule, selection_rule


class TestConstruction:
    def test_selection_rule(self):
        rule = selection_rule(
            uuid="u1",
            team="forecasting",
            given='model_name == "linear_regression"',
            when='metrics["r2"] <= 0.9',
            selection="a.created_time > b.created_time",
        )
        assert rule.kind is RuleKind.MODEL_SELECTION
        assert rule.environment == "production"

    def test_action_rule(self):
        rule = action_rule(
            uuid="u2",
            team="forecasting",
            given='model_domain == "UberX"',
            when="metrics.bias <= 0.1 and metrics.bias >= -0.1",
            actions=[{"action": "forecasting_deployment"}],
        )
        assert rule.kind is RuleKind.ACTION
        assert rule.actions[0].action == "forecasting_deployment"

    def test_selection_rule_requires_selection(self):
        with pytest.raises(ValidationError):
            Rule(
                uuid="u",
                team="t",
                kind=RuleKind.MODEL_SELECTION,
                given=selection_rule("x", "t", "true", "true", "true").given,
                when=selection_rule("x", "t", "true", "true", "true").when,
            )

    def test_action_rule_requires_actions(self):
        with pytest.raises(ValidationError):
            action_rule("u", "t", "true", "true", actions=[])

    def test_bad_expression_rejected_at_construction(self):
        from repro.errors import RuleSyntaxError

        with pytest.raises(RuleSyntaxError):
            selection_rule("u", "t", given="a ==", when="true", selection="true")


class TestEvaluationHelpers:
    RULE = selection_rule(
        uuid="u1",
        team="forecasting",
        given='city == "sf"',
        when="metrics.mape < 0.2",
        selection="a.created_time > b.created_time",
    )

    def test_applies_to(self):
        assert self.RULE.applies_to({"city": "sf", "metrics": {}})
        assert not self.RULE.applies_to({"city": "nyc", "metrics": {}})

    def test_condition_holds(self):
        assert self.RULE.condition_holds({"metrics": {"mape": 0.1}})
        assert not self.RULE.condition_holds({"metrics": {"mape": 0.5}})
        assert not self.RULE.condition_holds({"metrics": {}})  # absent metric

    def test_prefers(self):
        newer = {"created_time": 5.0}
        older = {"created_time": 1.0}
        assert self.RULE.prefers(newer, older)
        assert not self.RULE.prefers(older, newer)

    def test_prefers_on_action_rule_raises(self):
        rule = action_rule("u", "t", "true", "true", actions=["alert"])
        with pytest.raises(ValidationError):
            rule.prefers({}, {})

    def test_referenced_names_excludes_comparator_bindings(self):
        assert self.RULE.referenced_names() == {"city", "metrics"}
        assert self.RULE.watches_metrics()

    def test_rule_without_metrics_reference(self):
        rule = action_rule("u", "t", 'city == "sf"', "true", actions=["alert"])
        assert not rule.watches_metrics()


class TestSerialization:
    def test_selection_round_trip(self):
        rule = selection_rule(
            uuid="316b3ab4",
            team="forecasting",
            given='model_name == "linear_regression" and model_domain == "UberX"',
            when='metrics["r2"] <= 0.9',
            selection="a.created_time > b.created_time",
        )
        restored = Rule.from_json(rule.to_json())
        assert restored.uuid == rule.uuid
        assert restored.kind is RuleKind.MODEL_SELECTION
        assert restored.given.source == rule.given.source
        assert restored.selection.source == rule.selection.source

    def test_action_round_trip(self):
        rule = action_rule(
            uuid="4365754a",
            team="forecasting",
            given='model_domain == "UberX"',
            when="metrics.bias <= 0.1",
            actions=[ActionSpec("forecasting_deployment", {"env": "prod"})],
        )
        restored = Rule.from_json(rule.to_json())
        assert restored.actions[0].action == "forecasting_deployment"
        assert restored.actions[0].params == {"env": "prod"}

    def test_paper_shape_with_and_keys(self):
        document = {
            "team": "forecasting",
            "uuid": "u1",
            "rule": {
                "GIVEN": 'model_name == "linear_regression"',
                "GIVEN_AND": 'model_domain == "UberX"',
                "WHEN": 'metrics["r2"] <= 0.9',
                "ENVIRONMENT": "production",
                "MODEL_SELECTION": "a.created_time > b.created_time",
            },
        }
        rule = Rule.from_dict(document)
        context = {
            "model_name": "linear_regression",
            "model_domain": "UberX",
            "metrics": {"r2": 0.8},
        }
        assert rule.applies_to(context)
        assert rule.condition_holds(context)

    def test_given_as_list_of_conjuncts(self):
        document = {
            "team": "t",
            "uuid": "u",
            "rule": {
                "GIVEN": ['city == "sf"', 'model_domain == "UberX"'],
                "WHEN": "true",
                "CALLBACK_ACTIONS": ["alert"],
            },
        }
        rule = Rule.from_dict(document)
        assert rule.applies_to({"city": "sf", "model_domain": "UberX"})
        assert not rule.applies_to({"city": "sf", "model_domain": "Eats"})

    def test_missing_clauses_default_to_true(self):
        rule = Rule.from_dict(
            {"team": "t", "uuid": "u", "rule": {"CALLBACK_ACTIONS": ["alert"]}}
        )
        assert rule.applies_to({})
        assert rule.condition_holds({})

    def test_both_templates_rejected(self):
        with pytest.raises(ValidationError):
            Rule.from_dict(
                {
                    "team": "t",
                    "uuid": "u",
                    "rule": {
                        "MODEL_SELECTION": "a.x > b.x",
                        "CALLBACK_ACTIONS": ["alert"],
                    },
                }
            )

    def test_invalid_json_rejected(self):
        with pytest.raises(ValidationError):
            Rule.from_json("{not json")

    def test_missing_rule_object_rejected(self):
        with pytest.raises(ValidationError):
            Rule.from_dict({"team": "t", "uuid": "u"})

    def test_json_is_stable(self):
        rule = action_rule("u", "t", "true", "true", actions=["alert"])
        assert json.loads(rule.to_json()) == json.loads(rule.to_json())
