"""Property-based tests for the rule expression language.

Invariants:
* unparse . parse is the identity on ASTs (round-trip);
* evaluation is total over well-formed expressions and data contexts —
  it returns a value or raises RuleEvaluationError, never anything else;
* the lexer either tokenizes or raises RuleSyntaxError on arbitrary text.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.errors import RuleEvaluationError, RuleSyntaxError
from repro.rules.lang import Expression, parse, tokenize
from repro.rules.lang.ast import (
    Binary,
    Call,
    Identifier,
    Index,
    Literal,
    Member,
    Ternary,
    Unary,
)

# -- AST generation ----------------------------------------------------------

identifiers = st.sampled_from(
    ["metrics", "model_name", "city", "x", "y", "count", "a", "b"]
)

literals = st.one_of(
    st.integers(min_value=-1000, max_value=1000).map(Literal),
    st.floats(min_value=-100, max_value=100, allow_nan=False).map(Literal),
    st.sampled_from(["UberX", "sf", "", "text with spaces"]).map(Literal),
    st.booleans().map(Literal),
    st.just(Literal(None)),
)


def ast_nodes(max_depth: int = 4):
    def extend(children):
        return st.one_of(
            st.tuples(st.sampled_from(["not", "-"]), children).map(
                lambda t: Unary(*t)
            ),
            st.tuples(
                st.sampled_from(
                    ["and", "or", "==", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/", "in"]
                ),
                children,
                children,
            ).map(lambda t: Binary(*t)),
            st.tuples(children, st.sampled_from(["bias", "mape", "r2"])).map(
                lambda t: Member(*t)
            ),
            st.tuples(children, children, children).map(lambda t: Ternary(*t)),
            st.tuples(children, children).map(lambda t: Index(*t)),
            st.tuples(
                st.sampled_from(["abs", "min", "max", "len"]),
                st.lists(children, min_size=1, max_size=3).map(tuple),
            ).map(lambda t: Call(*t)),
        )

    return st.recursive(
        st.one_of(literals, identifiers.map(Identifier)), extend, max_leaves=12
    )


@given(ast_nodes())
@settings(max_examples=200)
def test_unparse_parse_round_trip(node):
    """parse . unparse is the identity on parser-normalised ASTs.

    Generated ASTs may contain shapes the parser normalises away (e.g.
    ``Unary('-', Literal(1))`` folds to ``Literal(-1)``), so the invariant
    is stability after one normalising pass.
    """
    normalised = parse(node.unparse())
    assert parse(normalised.unparse()) == normalised


# -- evaluator totality --------------------------------------------------------

context_values = st.recursive(
    st.one_of(
        st.integers(min_value=-100, max_value=100),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
        st.text(max_size=5),
        st.booleans(),
        st.none(),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.sampled_from(["bias", "mape", "r2"]), children, max_size=3),
    ),
    max_leaves=8,
)

contexts = st.fixed_dictionaries(
    {},
    optional={
        name: context_values
        for name in ["metrics", "model_name", "city", "x", "y", "count", "a", "b"]
    },
)


@given(ast_nodes(), contexts)
@settings(max_examples=300)
def test_evaluation_is_total(node, context):
    expression = Expression(source=node.unparse(), node=node)
    try:
        expression.evaluate(context)
    except RuleEvaluationError:
        pass  # the only sanctioned failure mode


@given(st.text(max_size=60))
@settings(max_examples=300)
def test_lexer_total_over_arbitrary_text(text):
    try:
        tokens = tokenize(text)
    except RuleSyntaxError:
        return
    assert tokens[-1].type.name == "EOF"


@given(st.text(max_size=60))
@settings(max_examples=300)
def test_parser_total_over_arbitrary_text(text):
    try:
        parse(text)
    except RuleSyntaxError:
        pass


@given(ast_nodes())
@settings(max_examples=100)
def test_referenced_names_subset_of_known_identifiers(node):
    expression = Expression(source=node.unparse(), node=node)
    assert expression.referenced_names() <= {
        "metrics", "model_name", "city", "x", "y", "count", "a", "b",
    }
