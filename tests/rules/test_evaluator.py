"""Tests for the expression evaluator."""

import pytest

from repro.errors import RuleEvaluationError
from repro.rules.lang import Expression


def ev(source, **context):
    return Expression.compile(source).evaluate(context)


class TestLiteralsAndNames:
    def test_literals(self):
        assert ev("42") == 42
        assert ev("0.5") == 0.5
        assert ev('"text"') == "text"
        assert ev("true") is True
        assert ev("false") is False
        assert ev("null") is None

    def test_identifier_lookup(self):
        assert ev("x", x=7) == 7

    def test_unknown_name_raises(self):
        with pytest.raises(RuleEvaluationError):
            ev("ghost")


class TestComparisons:
    def test_equality(self):
        assert ev('domain == "UberX"', domain="UberX") is True
        assert ev("x != 3", x=4) is True

    def test_ordered(self):
        assert ev("x <= 0.9", x=0.5) is True
        assert ev("x > 1", x=1) is False
        assert ev('"apple" < "banana"') is True

    def test_null_ordered_comparison_is_false(self):
        # absent metric must not pass a threshold gate
        assert ev("metrics.mape < 0.5", metrics={}) is False
        assert ev("metrics.mape > 0.5", metrics={}) is False

    def test_null_equality_works(self):
        assert ev("metrics.mape == null", metrics={}) is True

    def test_mixed_type_ordering_raises(self):
        with pytest.raises(RuleEvaluationError):
            ev('x < "5"', x=3)

    def test_in_operator(self):
        assert ev('city in ["sf", "nyc"]' if False else 'city in domains', city="sf", domains=["sf", "nyc"]) is True
        with pytest.raises(RuleEvaluationError):
            ev("x in y", x=1, y=2)


class TestBooleanLogic:
    def test_and_or_not(self):
        assert ev("true and false") is False
        assert ev("true or false") is True
        assert ev("not false") is True

    def test_short_circuit_and(self):
        # right side would raise (unknown name) but is never evaluated
        assert ev("false and ghost") is False

    def test_short_circuit_or(self):
        assert ev("true or ghost") is True

    def test_truthiness(self):
        assert ev("not 0") is True
        assert ev('not ""') is True
        assert ev("not items", items=[]) is True
        assert ev("not items", items=[1]) is False


class TestArithmetic:
    def test_basic(self):
        assert ev("2 + 3 * 4") == 14
        assert ev("10 / 4") == 2.5
        assert ev("10 % 3") == 1
        assert ev("-x", x=5) == -5

    def test_string_concat(self):
        assert ev('"a" + "b"') == "ab"

    def test_division_by_zero_raises(self):
        with pytest.raises(RuleEvaluationError):
            ev("1 / 0")
        with pytest.raises(RuleEvaluationError):
            ev("1 % 0")

    def test_arithmetic_on_strings_raises(self):
        with pytest.raises(RuleEvaluationError):
            ev('"a" - "b"')

    def test_negating_string_raises(self):
        with pytest.raises(RuleEvaluationError):
            ev('-"a"')

    def test_booleans_are_not_numbers(self):
        with pytest.raises(RuleEvaluationError):
            ev("true + 1")


class TestAccess:
    def test_member_on_mapping(self):
        assert ev("metrics.bias", metrics={"bias": 0.05}) == 0.05

    def test_index_on_mapping(self):
        assert ev('metrics["r2"]', metrics={"r2": 0.95}) == 0.95

    def test_missing_key_yields_null(self):
        assert ev("metrics.ghost", metrics={}) is None

    def test_index_on_list(self):
        assert ev("xs[1]", xs=[10, 20]) == 20

    def test_list_index_out_of_range_raises(self):
        with pytest.raises(RuleEvaluationError):
            ev("xs[5]", xs=[1])

    def test_access_on_null_raises(self):
        with pytest.raises(RuleEvaluationError):
            ev("metrics.bias.deeper", metrics={})

    def test_access_on_scalar_raises(self):
        with pytest.raises(RuleEvaluationError):
            ev("x.attr", x=5)

    def test_arbitrary_python_objects_not_reachable(self):
        class Sneaky:
            secret = "hidden"

        with pytest.raises(RuleEvaluationError):
            ev("obj.secret", obj=Sneaky())


class TestFunctions:
    def test_builtins(self):
        assert ev("abs(-3)") == 3
        assert ev("min(4, 2, 9)") == 2
        assert ev("max(xs[0], xs[1])", xs=[1, 5]) == 5
        assert ev("len(items)", items=[1, 2, 3]) == 3
        assert ev("round(2.567, 1)") == 2.6

    def test_unknown_function_raises(self):
        with pytest.raises(RuleEvaluationError):
            ev("exec(1)")

    def test_builtin_failure_wrapped(self):
        with pytest.raises(RuleEvaluationError):
            ev("len(5)")


class TestPaperRules:
    CONTEXT = {
        "model_name": "linear_regression",
        "model_domain": "UberX",
        "metrics": {"r2": 0.85, "bias": 0.05, "mae": 3.2},
    }

    def test_listing1_given_and_when(self):
        given = Expression.compile(
            'model_name == "linear_regression" and model_domain == "UberX"'
        )
        when = Expression.compile('metrics["r2"] <= 0.9')
        assert given.evaluate(self.CONTEXT) is True
        assert when.evaluate(self.CONTEXT) is True

    def test_listing2_bias_window(self):
        when = Expression.compile("metrics.bias <= 0.1 and metrics.bias >= -0.1")
        assert when.evaluate(self.CONTEXT) is True
        assert when.evaluate({"metrics": {"bias": 0.3}}) is False

    def test_referenced_names(self):
        expr = Expression.compile('metrics["r2"] <= 0.9 and model_domain == "UberX"')
        assert expr.referenced_names() == {"metrics", "model_domain"}

    def test_evaluate_bool_coercion(self):
        assert Expression.compile("metrics.mae").evaluate_bool(self.CONTEXT) is True
