"""Tests for the expression-language lexer."""

import pytest

from repro.errors import RuleSyntaxError
from repro.rules.lang.lexer import tokenize
from repro.rules.lang.tokens import TokenType


def types(source):
    return [t.type for t in tokenize(source)][:-1]  # drop EOF


class TestOperators:
    def test_two_char_operators(self):
        assert types("== != <= >= && ||") == [
            TokenType.EQ,
            TokenType.NE,
            TokenType.LE,
            TokenType.GE,
            TokenType.AND,
            TokenType.OR,
        ]

    def test_one_char_operators(self):
        assert types("< > ! + - * / %") == [
            TokenType.LT,
            TokenType.GT,
            TokenType.NOT,
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.PERCENT,
        ]

    def test_structure_tokens(self):
        assert types("( ) [ ] . ,") == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.LBRACKET,
            TokenType.RBRACKET,
            TokenType.DOT,
            TokenType.COMMA,
        ]


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.NUMBER and token.value == 42

    def test_float(self):
        assert tokenize("0.25")[0].value == 0.25

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].value == 0.5

    def test_scientific_notation(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == 0.025

    def test_negative_is_unary_minus_plus_number(self):
        assert types("-1") == [TokenType.MINUS, TokenType.NUMBER]

    def test_member_access_not_number(self):
        # "metrics.bias" must not eat the dot as a float
        assert types("metrics.bias") == [
            TokenType.IDENTIFIER,
            TokenType.DOT,
            TokenType.IDENTIFIER,
        ]


class TestStrings:
    def test_double_quoted(self):
        assert tokenize('"UberX"')[0].value == "UberX"

    def test_single_quoted(self):
        assert tokenize("'UberX'")[0].value == "UberX"

    def test_escapes(self):
        assert tokenize(r'"a\"b"')[0].value == 'a"b'
        assert tokenize(r'"line\nbreak"')[0].value == "line\nbreak"

    def test_unterminated_rejected(self):
        with pytest.raises(RuleSyntaxError):
            tokenize('"never closed')


class TestKeywordsAndIdentifiers:
    def test_keywords(self):
        assert types("true false null and or not in") == [
            TokenType.TRUE,
            TokenType.FALSE,
            TokenType.NULL,
            TokenType.AND,
            TokenType.OR,
            TokenType.NOT,
            TokenType.IN,
        ]

    def test_identifiers_with_underscores(self):
        tokens = tokenize("model_domain _private x1")
        assert [t.text for t in tokens[:-1]] == ["model_domain", "_private", "x1"]

    def test_keyword_prefix_is_identifier(self):
        # "android" starts with "and" but is one identifier
        assert types("android") == [TokenType.IDENTIFIER]


class TestErrors:
    def test_unknown_character(self):
        with pytest.raises(RuleSyntaxError) as excinfo:
            tokenize("a @ b")
        assert "position 2" in str(excinfo.value)

    def test_positions_recorded(self):
        tokens = tokenize("a == b")
        assert [t.position for t in tokens[:-1]] == [0, 2, 5]

    def test_paper_listing_rule_lexes(self):
        source = 'metrics["r2"] <= 0.9 && model_domain == "UberX"'
        assert tokenize(source)[-1].type is TokenType.EOF
