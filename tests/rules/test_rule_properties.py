"""Property-based tests: rule JSON round-trips and versioning laws."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.versioning import SemanticVersion
from repro.rules.rule import ActionSpec, Rule, action_rule, selection_rule

expressions = st.sampled_from(
    [
        "true",
        'model_domain == "UberX"',
        "metrics.bias <= 0.1 and metrics.bias >= -0.1",
        'metrics["r2"] >= 0.9',
        "abs(metrics.bias) < 0.05 or metrics.mape < 0.1",
        'city in domains and not deprecated',
    ]
)

selections = st.sampled_from(
    [
        "a.created_time > b.created_time",
        "a.metrics.mape < b.metrics.mape",
        'a.metrics["r2"] > b.metrics["r2"]',
    ]
)

identifiers = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=20
)

action_names = st.lists(
    st.sampled_from(["deploy", "alert", "email", "retrain", "custom_action"]),
    min_size=1,
    max_size=3,
)


@given(identifiers, identifiers, expressions, expressions, selections)
@settings(max_examples=150)
def test_selection_rule_json_round_trip(uuid, team, given_src, when_src, selection_src):
    rule = selection_rule(uuid, team, given_src, when_src, selection_src)
    restored = Rule.from_json(rule.to_json())
    assert restored.uuid == rule.uuid
    assert restored.team == rule.team
    assert restored.kind is rule.kind
    assert restored.given.source == rule.given.source
    assert restored.when.source == rule.when.source
    assert restored.selection.source == rule.selection.source


@given(identifiers, identifiers, expressions, expressions, action_names)
@settings(max_examples=150)
def test_action_rule_json_round_trip(uuid, team, given_src, when_src, actions):
    rule = action_rule(uuid, team, given_src, when_src, actions)
    restored = Rule.from_json(rule.to_json())
    assert [spec.action for spec in restored.actions] == actions
    assert restored.kind is rule.kind


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(st.integers(), st.text(max_size=10), st.booleans()),
        max_size=4,
    )
)
@settings(max_examples=100)
def test_action_spec_params_round_trip(params):
    spec = ActionSpec("deploy", params)
    assert ActionSpec.from_dict(spec.to_dict()) == spec


# -- semantic versioning laws ---------------------------------------------------

versions = st.tuples(
    st.integers(0, 100), st.integers(0, 100), st.integers(0, 100)
).map(lambda t: SemanticVersion(*t))


@given(versions)
@settings(max_examples=200)
def test_semver_parse_str_identity(version):
    assert SemanticVersion.parse(str(version)) == version


@given(versions)
@settings(max_examples=200)
def test_semver_bumps_strictly_increase(version):
    assert version.bump_patch() > version
    assert version.bump_minor() > version
    assert version.bump_major() > version
    # bump ordering: major > minor > patch
    assert version.bump_major() > version.bump_minor() > version.bump_patch()


@given(versions, versions, versions)
@settings(max_examples=200)
def test_semver_ordering_transitive(a, b, c):
    ordered = sorted([a, b, c])
    assert ordered[0] <= ordered[1] <= ordered[2]
    assert not (ordered[2] < ordered[0])
