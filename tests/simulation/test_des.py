"""Tests for the discrete-event simulation core."""

import pytest

from repro.errors import ValidationError
from repro.simulation.des import EventQueue, Simulator


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        order = []
        queue.push(5.0, lambda: order.append("late"))
        queue.push(1.0, lambda: order.append("early"))
        queue.push(3.0, lambda: order.append("middle"))
        while (event := queue.pop()) is not None:
            event.callback()
        assert order == ["early", "middle", "late"]

    def test_ties_broken_by_insertion_order(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append("first"))
        queue.push(1.0, lambda: order.append("second"))
        queue.pop().callback()
        queue.pop().callback()
        assert order == ["first", "second"]

    def test_cancelled_events_skipped(self):
        queue = EventQueue()
        keep = queue.push(1.0, lambda: None)
        cancel = queue.push(0.5, lambda: None)
        cancel.cancelled = True
        assert queue.pop() is keep
        assert len(queue) == 0

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0


class TestSimulator:
    def test_clock_advances_with_events(self):
        sim = Simulator()
        times = []
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run_until(10.0)
        assert times == [1.0, 2.5]
        assert sim.now == 10.0

    def test_run_until_leaves_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append("early"))
        sim.schedule(50.0, lambda: fired.append("late"))
        sim.run_until(10.0)
        assert fired == ["early"]
        assert sim.pending() == 1
        sim.run_until(100.0)
        assert fired == ["early", "late"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(1.0, lambda: chain(0))
        sim.run_until(10.0)
        assert fired == [0, 1, 2, 3]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run_until(5.0)
        with pytest.raises(ValidationError):
            sim.schedule_at(1.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run_until(10.0)
        assert fired == []

    def test_run_all_bounded(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(1.0, forever)
        with pytest.raises(ValidationError):
            sim.run_all(max_events=100)

    def test_events_processed_counter(self):
        sim = Simulator()
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        sim.run_until(10.0)
        assert sim.events_processed == 3


class TestRngStreams:
    def test_streams_deterministic_per_seed(self):
        a = Simulator(seed=7).stream("arrivals").random(5)
        b = Simulator(seed=7).stream("arrivals").random(5)
        assert list(a) == list(b)

    def test_streams_independent_by_name(self):
        sim = Simulator(seed=7)
        arrivals = sim.stream("arrivals").random(5)
        trips = sim.stream("trips").random(5)
        assert list(arrivals) != list(trips)

    def test_same_stream_returned_on_reuse(self):
        sim = Simulator(seed=7)
        assert sim.stream("x") is sim.stream("x")
