"""Tests for the agent-based marketplace."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.simulation.des import Simulator
from repro.simulation.marketplace import (
    ConstantForecaster,
    CurveForecaster,
    Marketplace,
    MarketplaceConfig,
)


def run_marketplace(demand_level=50.0, hours=48, n_drivers=40, seed=1, forecaster=None):
    sim = Simulator(seed=seed)
    config = MarketplaceConfig(n_drivers=n_drivers)
    demand = np.full(hours, demand_level)
    market = Marketplace(
        sim, config, demand, forecaster or ConstantForecaster(demand_level)
    )
    metrics = market.run(hours)
    return market, metrics


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValidationError):
            MarketplaceConfig(n_drivers=0)
        with pytest.raises(ValidationError):
            MarketplaceConfig(rider_patience_min=0)


class TestDynamics:
    def test_riders_arrive_near_poisson_rate(self):
        _, metrics = run_marketplace(demand_level=50.0, hours=48, n_drivers=100)
        expected = 50.0 * 48
        assert abs(metrics.riders_arrived - expected) < expected * 0.2

    def test_conservation(self):
        market, metrics = run_marketplace()
        still_waiting = len(market._waiting)
        assert (
            metrics.trips_completed + metrics.riders_abandoned + still_waiting
            == metrics.riders_arrived
        )

    def test_ample_supply_high_completion(self):
        _, metrics = run_marketplace(demand_level=20.0, n_drivers=200)
        assert metrics.completion_rate > 0.95
        assert metrics.mean_wait_min < 1.0

    def test_scarce_supply_causes_abandonment(self):
        _, metrics = run_marketplace(demand_level=200.0, n_drivers=5)
        assert metrics.riders_abandoned > 0
        assert metrics.completion_rate < 0.5

    def test_deterministic_given_seed(self):
        _, a = run_marketplace(seed=9)
        _, b = run_marketplace(seed=9)
        assert a.trips_completed == b.trips_completed
        assert a.total_revenue == b.total_revenue

    def test_hourly_arrivals_recorded(self):
        market, metrics = run_marketplace(hours=24)
        recorded = sum(count for _, count in market.hourly_arrivals)
        # every arrival before the final partial hour is recorded
        assert recorded <= metrics.riders_arrived
        assert len(market.hourly_arrivals) >= 22


class TestSurgePricing:
    def test_high_forecast_triggers_surge(self):
        # forecast far above capacity -> surge hours and higher revenue
        _, surged = run_marketplace(
            demand_level=80.0, n_drivers=10, forecaster=ConstantForecaster(10_000.0)
        )
        _, base = run_marketplace(
            demand_level=80.0, n_drivers=10, forecaster=ConstantForecaster(0.0)
        )
        assert surged.surge_hours > 0
        assert base.surge_hours == 0
        assert surged.total_revenue > base.total_revenue

    def test_curve_forecaster_reads_curve(self):
        forecaster = CurveForecaster(np.array([10.0, 20.0, 30.0]))
        assert forecaster.forecast(1) == 20.0
        assert forecaster.forecast(99) == 30.0  # clamps to last

    def test_empty_demand_rejected(self):
        with pytest.raises(ValidationError):
            Marketplace(
                Simulator(), MarketplaceConfig(), np.array([]), ConstantForecaster(1.0)
            )


class TestPriceElasticity:
    def test_elasticity_zero_never_balks(self):
        _, metrics = run_marketplace(
            demand_level=100.0, n_drivers=5,
            forecaster=ConstantForecaster(10_000.0),
        )
        assert metrics.riders_balked == 0

    def test_surge_with_elasticity_sheds_demand(self):
        sim = Simulator(seed=2)
        config = MarketplaceConfig(n_drivers=5, price_elasticity=1.5)
        demand = np.full(48, 100.0)
        market = Marketplace(sim, config, demand, ConstantForecaster(10_000.0))
        metrics = market.run(48)
        assert metrics.surge_hours > 0
        assert metrics.riders_balked > 0
        # conservation still holds with balking in the ledger
        still_waiting = len(market._waiting)
        assert (
            metrics.trips_completed
            + metrics.riders_abandoned
            + metrics.riders_balked
            + still_waiting
            == metrics.riders_arrived
        )

    def test_balking_reduces_abandonment(self):
        def run(elasticity):
            sim = Simulator(seed=3)
            config = MarketplaceConfig(n_drivers=5, price_elasticity=elasticity)
            market = Marketplace(
                sim, config, np.full(48, 100.0), ConstantForecaster(10_000.0)
            )
            return market.run(48)

        rigid = run(0.0)
        elastic = run(2.0)
        # surge pricing's purpose: shedding demand cuts queueing failures
        assert elastic.riders_abandoned < rigid.riders_abandoned

    def test_negative_elasticity_rejected(self):
        with pytest.raises(ValidationError):
            MarketplaceConfig(price_elasticity=-0.5)
