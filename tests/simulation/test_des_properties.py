"""Property-based tests for the DES kernel: causal event ordering."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.simulation.des import Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False), max_size=30))
@settings(max_examples=200)
def test_events_fire_in_nondecreasing_time_order(delays):
    simulator = Simulator()
    fired: list[float] = []
    for delay in delays:
        simulator.schedule(delay, lambda: fired.append(simulator.now))
    simulator.run_until(1000.0)
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.floats(min_value=0.1, max_value=10.0, allow_nan=False), min_size=1, max_size=10),
    st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
)
@settings(max_examples=200)
def test_run_until_horizon_respected(delays, horizon):
    simulator = Simulator()
    fired: list[float] = []
    for delay in delays:
        simulator.schedule(delay, lambda: fired.append(simulator.now))
    simulator.run_until(horizon)
    assert all(t <= horizon for t in fired)
    assert simulator.now >= horizon
    expected = sum(1 for d in delays if d <= horizon)
    assert len(fired) == expected


@given(st.lists(st.floats(min_value=0.0, max_value=5.0, allow_nan=False), max_size=15))
@settings(max_examples=100)
def test_cascading_schedules_preserve_causality(delays):
    """An event scheduling a follow-up never sees time move backwards."""
    simulator = Simulator()
    observations: list[tuple[float, float]] = []

    def make_callback(extra_delay):
        def callback():
            scheduled_at = simulator.now

            def follow_up():
                observations.append((scheduled_at, simulator.now))

            simulator.schedule(extra_delay, follow_up)

        return callback

    for delay in delays:
        simulator.schedule(delay, make_callback(delay))
    simulator.run_until(100.0)
    for scheduled_at, fired_at in observations:
        assert fired_at >= scheduled_at
