"""Tests for the simulation platform: coupled vs decoupled (Case 2)."""

import numpy as np
import pytest

from repro.forecasting.features import FeatureSpec
from repro.forecasting.models import RidgeRegression
from repro.forecasting.workload import CityProfile, generate_city_demand
from repro.simulation.marketplace import MarketplaceConfig
from repro.simulation.platform import run_coupled, run_decoupled, train_offline_model

SPEC = FeatureSpec(lags=(1, 2, 3, 24), rolling_windows=(6,), calendar=True)
HOURS = 24 * 7


@pytest.fixture(scope="module")
def curves():
    profile = CityProfile(name="sim-city", base_demand=60)
    historical = generate_city_demand(profile, hours=24 * 7 * 4, seed=11).values
    live = generate_city_demand(profile, hours=HOURS, seed=12).values
    return historical, live


class TestCoupledMode:
    def test_trains_in_loop_and_accounts_resources(self, curves):
        _, live = curves
        run = run_coupled(
            live,
            MarketplaceConfig(n_drivers=30),
            lambda: RidgeRegression(),
            SPEC,
            hours=HOURS,
            seed=1,
            retrain_every_hours=24,
            expansion_rows=50,
        )
        assert run.mode == "coupled"
        assert run.resources.fits >= 3
        assert run.resources.training_cpu_s > 0
        assert run.resources.peak_buffer_bytes > 100_000
        assert run.marketplace.trips_completed > 0

    def test_no_training_before_enough_history(self, curves):
        _, live = curves
        run = run_coupled(
            live[:30],
            MarketplaceConfig(n_drivers=30),
            lambda: RidgeRegression(),
            SPEC,
            hours=30,
            seed=1,
            retrain_every_hours=6,
        )
        assert run.resources.fits == 0  # under min_history: falls back to heuristic


class TestOfflineTraining:
    def test_registers_instance_with_metrics(self, memory_gallery, curves):
        historical, _ = curves
        instance_id = train_offline_model(
            memory_gallery, historical, lambda: RidgeRegression(), SPEC
        )
        instance = memory_gallery.get_instance(instance_id)
        assert instance.metadata["team"] == "simulation"
        names = {m.name for m in memory_gallery.metrics_of(instance_id)}
        assert "mape" in names

    def test_repeat_training_reuses_model(self, memory_gallery, curves):
        historical, _ = curves
        first = train_offline_model(memory_gallery, historical, lambda: RidgeRegression(), SPEC)
        second = train_offline_model(memory_gallery, historical, lambda: RidgeRegression(), SPEC)
        assert first != second
        assert len(memory_gallery.models()) == 1  # one model, two instances


class TestDecoupledMode:
    def test_fetches_from_gallery_and_runs(self, memory_gallery, curves):
        historical, live = curves
        instance_id = train_offline_model(
            memory_gallery, historical, lambda: RidgeRegression(), SPEC
        )
        run = run_decoupled(
            memory_gallery,
            instance_id,
            live,
            MarketplaceConfig(n_drivers=30),
            SPEC,
            hours=HOURS,
            seed=1,
        )
        assert run.mode == "decoupled"
        assert run.resources.blob_fetches == 1
        assert run.resources.fits == 0
        assert run.resources.training_cpu_s == 0.0
        assert run.marketplace.trips_completed > 0

    def test_decoupling_saves_resources(self, memory_gallery, curves):
        """The paper's Case 2 shape: less memory, less in-run CPU."""
        historical, live = curves
        config = MarketplaceConfig(n_drivers=30)
        coupled = run_coupled(
            live, config, lambda: RidgeRegression(), SPEC,
            hours=HOURS, seed=1, retrain_every_hours=24, expansion_rows=50,
        )
        instance_id = train_offline_model(
            memory_gallery, historical, lambda: RidgeRegression(), SPEC
        )
        decoupled = run_decoupled(
            memory_gallery, instance_id, live, config, SPEC, hours=HOURS, seed=1
        )
        assert decoupled.resources.peak_buffer_bytes < coupled.resources.peak_buffer_bytes / 100
        assert decoupled.resources.training_cpu_s < coupled.resources.training_cpu_s
        # same marketplace dynamics: identical seeds, comparable outcomes
        ratio = decoupled.marketplace.trips_completed / coupled.marketplace.trips_completed
        assert 0.9 < ratio < 1.1
