"""Upgrade path: a database written before PR9 must open and serve.

Builds a pre-PR9 SQLite layout by hand — instances table without the
``family`` column, no ``serving_assignments`` table, record JSON without
``family``/``enabled`` keys — then opens it with the current code and
checks that the guarded migration brings the schema forward while every
legacy row keeps serving.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro import build_gallery
from repro.errors import NotFoundError
from repro.store.blob import FilesystemBlobStore
from repro.store.metadata_store import SQLiteMetadataStore

#: The metadata schema exactly as PR8 shipped it: no ``family`` column on
#: instances, no ``idx_instances_family``, no ``serving_assignments``.
LEGACY_SCHEMA = """
CREATE TABLE models (
    model_id TEXT PRIMARY KEY,
    record   TEXT NOT NULL
);
CREATE TABLE instances (
    instance_id     TEXT PRIMARY KEY,
    model_id        TEXT NOT NULL,
    base_version_id TEXT NOT NULL,
    model_name      TEXT,
    model_type      TEXT,
    model_domain    TEXT,
    city            TEXT,
    team            TEXT,
    serving_environment TEXT,
    created_time    REAL NOT NULL,
    record          TEXT NOT NULL
);
CREATE INDEX idx_instances_model ON instances(model_id);
CREATE INDEX idx_instances_base ON instances(base_version_id);
CREATE TABLE metrics (
    metric_id   TEXT PRIMARY KEY,
    instance_id TEXT NOT NULL,
    name        TEXT NOT NULL,
    value       REAL NOT NULL,
    record      TEXT NOT NULL
);
CREATE TABLE dedup_entries (
    client_id  TEXT    NOT NULL,
    request_id INTEGER NOT NULL,
    status     TEXT    NOT NULL,
    response   BLOB,
    updated    REAL    NOT NULL,
    PRIMARY KEY (client_id, request_id)
);
CREATE TABLE dead_letters (
    letter_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    rule_uuid  TEXT NOT NULL,
    action     TEXT NOT NULL,
    error_type TEXT NOT NULL,
    record     TEXT NOT NULL,
    created_at REAL NOT NULL DEFAULT 0
);
"""

LEGACY_BLOB = b"legacy-model-parameters"


def build_legacy_layout(data_dir) -> str:
    """Write a pre-PR9 data_dir (gallery.sqlite + blobs/); returns blob loc."""
    blobs = FilesystemBlobStore(data_dir / "blobs")
    location = blobs.put(LEGACY_BLOB, hint="i-legacy")
    model_record = {
        # Pre-PR9 Model.to_dict: no "family", no "enabled".
        "model_id": "m-legacy",
        "project": "p",
        "base_version_id": "demand",
        "owner": "chong",
        "description": "",
        "created_time": 1.0,
        "previous_model_id": None,
        "next_model_id": None,
        "upstream_model_ids": [],
        "downstream_model_ids": [],
        "metadata": {},
        "deprecated": False,
    }
    instance_record = {
        "instance_id": "i-legacy",
        "model_id": "m-legacy",
        "base_version_id": "demand",
        "blob_location": location,
        "instance_version": "1.0",
        "parent_instance_id": None,
        "created_time": 2.0,
        "metadata": {"model_name": "rf", "city": "sf", "model_domain": "demand"},
        "deprecated": False,
    }
    metric_record = {
        "metric_id": "mt-legacy",
        "instance_id": "i-legacy",
        "name": "mape",
        "value": 0.2,
        "scope": "Validation",
        "created_time": 3.0,
        "metadata": {},
    }
    conn = sqlite3.connect(data_dir / "gallery.sqlite")
    try:
        conn.executescript(LEGACY_SCHEMA)
        conn.execute(
            "INSERT INTO models VALUES (?, ?)",
            ("m-legacy", json.dumps(model_record)),
        )
        conn.execute(
            "INSERT INTO instances VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                "i-legacy",
                "m-legacy",
                "demand",
                "rf",
                None,
                "demand",
                "sf",
                None,
                None,
                2.0,
                json.dumps(instance_record),
            ),
        )
        conn.execute(
            "INSERT INTO metrics VALUES (?, ?, ?, ?, ?)",
            ("mt-legacy", "i-legacy", "mape", 0.2, json.dumps(metric_record)),
        )
        conn.commit()
    finally:
        conn.close()
    return location


class TestLegacyUpgrade:
    def test_schema_migration_adds_family_and_serving_table(self, tmp_path):
        build_legacy_layout(tmp_path)
        store = SQLiteMetadataStore(str(tmp_path / "gallery.sqlite"))
        try:
            conn = sqlite3.connect(tmp_path / "gallery.sqlite")
            columns = {row[1] for row in conn.execute("PRAGMA table_info(instances)")}
            tables = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='table'"
                )
            }
            indexes = {
                row[0]
                for row in conn.execute(
                    "SELECT name FROM sqlite_master WHERE type='index'"
                )
            }
            conn.close()
            assert "family" in columns
            assert "serving_assignments" in tables
            assert "idx_instances_family" in indexes
            # The legacy row keeps the column default, matching its JSON.
            assert store.get_instance("i-legacy").family == ""
        finally:
            store.close()

    def test_legacy_rows_load_servable(self, tmp_path):
        build_legacy_layout(tmp_path)
        gallery = build_gallery("sqlite", "fs", data_dir=tmp_path)
        try:
            instance = gallery.get_instance("i-legacy")
            assert instance.enabled is True
            assert instance.family == ""
            assert not instance.deprecated
            assert gallery.load_instance_blob("i-legacy") == LEGACY_BLOB
            assert gallery.latest_metric("i-legacy", "mape") == 0.2
        finally:
            gallery.dal.metadata.close()

    def test_upgraded_db_serves_assignments_and_families(self, tmp_path):
        build_legacy_layout(tmp_path)
        gallery = build_gallery("sqlite", "fs", data_dir=tmp_path)
        try:
            # Legacy instance can be pointed at a scope immediately.
            gallery.assign_serving("sf", "i-legacy", reason="upgrade cutover")
            assert gallery.serving_for("sf").instance_id == "i-legacy"

            # New-era uploads join families and switch_family re-points the
            # scope — all against the upgraded legacy file.
            fresh = gallery.upload_model(
                "p",
                "demand",
                blob=b"new-era-parameters",
                metadata={"model_name": "rf", "city": "sf"},
                family="sf:rf",
            )
            members = gallery.instances_in_family("sf:rf")
            assert [i.instance_id for i in members] == [fresh.instance_id]
            assignment = gallery.switch_family("sf", "sf:rf")
            assert assignment.instance_id == fresh.instance_id
            assert assignment.previous_instance_id == "i-legacy"
            assert assignment.switch_count == 2
        finally:
            gallery.dal.metadata.close()

    def test_reopen_after_upgrade_is_idempotent(self, tmp_path):
        build_legacy_layout(tmp_path)
        for _ in range(2):  # migration must be a no-op the second time
            store = SQLiteMetadataStore(str(tmp_path / "gallery.sqlite"))
            store.assign_serving("sf", "i-legacy", now=1.0)
            store.close()
        store = SQLiteMetadataStore(str(tmp_path / "gallery.sqlite"))
        try:
            assignment = store.serving_assignment("sf")
            assert assignment.instance_id == "i-legacy"
            assert assignment.switch_count == 1, "re-assign same instance is a no-op"
            with pytest.raises(NotFoundError):
                store.serving_assignment("nyc")
        finally:
            store.close()
