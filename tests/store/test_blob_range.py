"""Range reads, zero-copy regions, and the verified-digest cache.

PR8 behaviours under test:

* ``_clamp_range`` / ``get_range`` edge semantics — offset at EOF, length
  past EOF, zero-length windows, ``None`` length — clamp instead of error,
  while negative or non-int inputs raise ``ValidationError``;
* ``FilesystemBlobStore.open_region`` hands out digest-verified regions
  and only pays the SHA-256 pass once per (mtime, size) signature;
* tampered bytes on disk fail the first serve after the change;
* sub-range digests match the served bytes exactly (hypothesis parity
  against the in-memory store's slice semantics);
* stats counters survive concurrent writers (the PR8 lock audit).
"""

from __future__ import annotations

import hashlib
import threading

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.errors import BlobCorruptionError, NotFoundError, ValidationError
from repro.store.blob import (
    BlobRegion,
    FaultInjectingBlobStore,
    FilesystemBlobStore,
    InMemoryBlobStore,
    range_of_bytes,
)

PAYLOAD = b"layer-weights:" + bytes(range(256)) * 64  # 16 KiB, all byte values


def _materialize(blob_range) -> bytes:
    """Payload bytes regardless of zero-copy vs in-memory backend."""
    if isinstance(blob_range.payload, BlobRegion):
        try:
            return blob_range.payload.read()
        finally:
            blob_range.payload.close()
    return blob_range.payload


class TestClampSemantics:
    @pytest.mark.parametrize(
        ("offset", "length", "expected_slice"),
        [
            (0, None, slice(0, None)),          # whole blob
            (0, 10, slice(0, 10)),              # prefix
            (100, 50, slice(100, 150)),         # interior window
            (len(PAYLOAD), 10, slice(0, 0)),    # offset at EOF -> empty
            (len(PAYLOAD) + 999, None, slice(0, 0)),  # offset past EOF
            (len(PAYLOAD) - 5, 100, slice(len(PAYLOAD) - 5, None)),  # clamp
            (7, 0, slice(7, 7)),                # zero-length window
        ],
    )
    def test_range_matches_slice(self, offset, length, expected_slice):
        result = range_of_bytes(PAYLOAD, offset, length)
        expected = PAYLOAD[expected_slice]
        assert result.payload == expected
        assert result.length == len(expected)
        assert result.blob_size == len(PAYLOAD)
        assert result.digest == hashlib.sha256(expected).hexdigest()

    @pytest.mark.parametrize(
        ("offset", "length"),
        [(-1, None), (0, -1), ("0", None), (0, "4"), (1.5, None),
         (True, None), (0, False)],
    )
    def test_bad_inputs_raise_validation_error(self, offset, length):
        with pytest.raises(ValidationError):
            range_of_bytes(PAYLOAD, offset, length)

    def test_in_memory_store_get_range(self):
        store = InMemoryBlobStore()
        location = store.put(PAYLOAD)
        result = store.get_range(location, 64, 128)
        assert result.payload == PAYLOAD[64:192]
        assert result.offset == 64
        assert result.blob_size == len(PAYLOAD)


class TestFilesystemRegions:
    def test_open_region_round_trips_whole_blob(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(PAYLOAD)
        with store.open_region(location) as region:
            assert len(region) == len(PAYLOAD)
            assert region.blob_size == len(PAYLOAD)
            assert region.read() == PAYLOAD

    def test_open_region_clamps_like_slices(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(PAYLOAD)
        with store.open_region(location, len(PAYLOAD) - 3, 100) as region:
            assert region.read() == PAYLOAD[-3:]
        with store.open_region(location, len(PAYLOAD), 10) as region:
            assert region.read() == b""

    def test_get_range_payload_is_region_with_matching_digest(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(PAYLOAD)
        result = store.get_range(location, 33, 77)
        assert isinstance(result.payload, BlobRegion)
        data = _materialize(result)
        assert data == PAYLOAD[33:110]
        assert result.digest == hashlib.sha256(data).hexdigest()

    def test_missing_blob_raises_not_found(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(PAYLOAD)
        store.delete(location)
        with pytest.raises(NotFoundError):
            store.open_region(location)
        with pytest.raises(NotFoundError):
            store.get_range(location, 0, 4)


class TestVerifiedDigestCache:
    def test_digest_checked_once_per_signature(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(PAYLOAD)
        for _ in range(5):
            with store.open_region(location) as region:
                region.read()
        assert store.stats.digest_verifications == 1

    def test_get_populates_the_cache_for_regions(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(PAYLOAD)
        assert store.get(location) == PAYLOAD  # incremental hash, verifies
        assert store.stats.digest_verifications == 1
        with store.open_region(location) as region:
            region.read()
        assert store.stats.digest_verifications == 1  # cache hit

    def test_tampered_blob_fails_first_serve(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(PAYLOAD)
        with store.open_region(location) as region:
            region.read()
        digest = location.removeprefix("fs://")
        path = tmp_path / digest[:2] / digest[2:4] / digest
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))  # new mtime -> cache signature misses
        with pytest.raises(BlobCorruptionError):
            store.open_region(location)
        with pytest.raises(BlobCorruptionError):
            store.get(location)
        with pytest.raises(BlobCorruptionError):
            store.get_range(location, 0, 16)

    def test_delete_evicts_the_cache_entry(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(PAYLOAD)
        store.get(location)
        digest = location.removeprefix("fs://")
        assert digest in store._verified
        store.delete(location)
        assert digest not in store._verified

    def test_incremental_get_verifies_multi_chunk_blobs(self, tmp_path):
        # Bigger than _HASH_CHUNK so get() takes more than one read.
        big = bytes(range(256)) * (5 * 1024 * 4 + 3)  # ~5 MiB + remainder
        store = FilesystemBlobStore(tmp_path)
        location = store.put(big)
        assert store.get(location) == big
        digest = location.removeprefix("fs://")
        path = tmp_path / digest[:2] / digest[2:4] / digest
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(BlobCorruptionError):
            store.get(location)


class TestBackendParity:
    @given(
        payload=st.binary(min_size=0, max_size=2048),
        offset=st.integers(min_value=0, max_value=4096),
        length=st.one_of(st.none(), st.integers(min_value=0, max_value=4096)),
    )
    @settings(max_examples=120, deadline=None)
    def test_filesystem_range_matches_in_memory(
        self, tmp_path_factory, payload, offset, length
    ):
        tmp_path = tmp_path_factory.mktemp("blobs")
        fs_store = FilesystemBlobStore(tmp_path)
        mem_store = InMemoryBlobStore()
        fs_range = fs_store.get_range(fs_store.put(payload), offset, length)
        mem_range = mem_store.get_range(mem_store.put(payload), offset, length)
        assert _materialize(fs_range) == mem_range.payload
        assert fs_range.offset == mem_range.offset
        assert fs_range.length == mem_range.length
        assert fs_range.blob_size == mem_range.blob_size
        assert fs_range.digest == mem_range.digest

    def test_fault_injecting_store_falls_back_to_get(self):
        store = FaultInjectingBlobStore(InMemoryBlobStore())
        location = store.put(PAYLOAD)
        assert store.open_region(location) is None  # not file-backed
        result = store.get_range(location, 8, 8)
        assert result.payload == PAYLOAD[8:16]


class TestStatsThreadSafety:
    def test_concurrent_puts_never_lose_counts(self):
        store = InMemoryBlobStore()
        writers, puts_each = 8, 50
        barrier = threading.Barrier(writers)
        errors: list[Exception] = []

        def writer(worker: int) -> None:
            barrier.wait()
            try:
                for k in range(puts_each):
                    store.put(f"w{worker}-blob-{k}".encode())
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(n,)) for n in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.stats.puts == writers * puts_each
        assert len(store.locations()) == writers * puts_each
        expected_bytes = sum(
            len(f"w{n}-blob-{k}".encode())
            for n in range(writers)
            for k in range(puts_each)
        )
        assert store.stats.bytes_written == expected_bytes

    def test_concurrent_region_opens_count_one_verification(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(PAYLOAD)
        store.get(location)  # verify once up front so workers race on reads
        barrier = threading.Barrier(6)
        errors: list[Exception] = []

        def reader() -> None:
            barrier.wait()
            try:
                for _ in range(20):
                    with store.open_region(location, 16, 64) as region:
                        assert region.read() == PAYLOAD[16:80]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.stats.digest_verifications == 1
        assert store.stats.gets == 1 + 6 * 20
