"""Property-based tests for blob stores and the write-blob-first DAL."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.records import ModelInstance
from repro.errors import GalleryError
from repro.store.blob import (
    FaultInjectingBlobStore,
    FaultPlan,
    InMemoryBlobStore,
    content_address,
)
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore


@given(st.binary(max_size=512))
@settings(max_examples=200)
def test_put_get_identity(payload):
    store = InMemoryBlobStore()
    assert store.get(store.put(payload)) == payload


@given(st.binary(max_size=256), st.binary(max_size=256))
@settings(max_examples=200)
def test_content_address_injective_on_observed_inputs(a, b):
    if a == b:
        assert content_address(a) == content_address(b)
    else:
        assert content_address(a) != content_address(b)


@given(st.lists(st.binary(max_size=64), max_size=20))
@settings(max_examples=100)
def test_locations_track_live_blobs(payloads):
    store = InMemoryBlobStore()
    locations = [store.put(p) for p in payloads]
    assert set(store.locations()) == set(locations)
    for location in locations[: len(locations) // 2]:
        store.delete(location)
    expected = set(locations[len(locations) // 2:])
    assert set(store.locations()) == expected


@given(
    st.lists(st.binary(min_size=1, max_size=64), min_size=1, max_size=12),
    st.sets(st.integers(min_value=1, max_value=12)),
)
@settings(max_examples=200)
def test_write_blob_first_never_leaves_dangling_metadata(payloads, failing_puts):
    """Under arbitrary blob-write failures, metadata never points at a
    missing blob — the paper's consistency guarantee (Section 3.5)."""
    store = FaultInjectingBlobStore(InMemoryBlobStore(), FaultPlan(fail_puts=failing_puts))
    dal = DataAccessLayer(InMemoryMetadataStore(), store, None)
    saved = 0
    for index, payload in enumerate(payloads):
        instance = ModelInstance(
            instance_id=f"i{index}",
            model_id="m",
            base_version_id="b",
            created_time=float(index),
        )
        try:
            dal.save_instance(instance, payload)
            saved += 1
        except GalleryError:
            pass
    report = dal.audit_consistency()
    assert report.consistent
    assert report.dangling_instances == ()
    assert dal.metadata.counts()["instances"] == saved
    # every saved instance's blob is readable
    for index in range(len(payloads)):
        try:
            instance = dal.metadata.get_instance(f"i{index}")
        except GalleryError:
            continue
        assert dal.load_blob(instance.instance_id) is not None
