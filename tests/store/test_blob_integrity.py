"""Blob durability + integrity: atomic publish, fsync, SHA-256 verification."""

import os
import threading

import pytest

from repro.errors import BlobCorruptionError, BlobStoreError
from repro.store.blob import FilesystemBlobStore, content_address


class TestAtomicWrites:
    def test_no_temp_debris_after_put(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        store.put(b"weights-v1")
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []

    def test_temp_files_never_appear_in_locations(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(b"weights-v1")
        digest = location.removeprefix("fs://")
        # Simulate a crash that left a half-written temp file behind.
        debris = (
            tmp_path / digest[:2] / digest[2:4] /
            f"{digest}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        debris.write_bytes(b"half-writ")
        assert store.locations() == [location]
        assert store.get(location) == b"weights-v1"

    def test_concurrent_writers_of_same_content_converge(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        payload = b"shared-weights" * 1000
        locations: list[str] = []
        errors: list[Exception] = []

        def writer():
            try:
                locations.append(store.put(payload))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(set(locations)) == 1  # content-addressed: one blob
        assert store.get(locations[0]) == payload
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_failed_write_cleans_up_and_raises_typed_error(self, tmp_path, monkeypatch):
        store = FilesystemBlobStore(tmp_path)

        def exploding_fsync(_fd):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(BlobStoreError, match="disk on fire"):
            store.put(b"doomed")
        monkeypatch.undo()
        assert store.locations() == []
        assert list(tmp_path.rglob("*.tmp")) == []
        location = store.put(b"doomed")  # clean retry works
        assert store.get(location) == b"doomed"


class TestIntegrityVerification:
    def test_corrupted_blob_raises_typed_error_on_get(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(b"precious")
        digest = location.removeprefix("fs://")
        path = tmp_path / digest[:2] / digest[2:4] / digest
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(BlobCorruptionError):
            store.get(location)

    def test_corruption_error_is_a_blob_store_error(self):
        # Callers that predate the typed error keep working unchanged.
        assert issubclass(BlobCorruptionError, BlobStoreError)

    def test_clean_blob_round_trips(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        payload = bytes(range(256)) * 64
        location = store.put(payload)
        assert location == f"fs://{content_address(payload)}"
        assert store.get(location) == payload
