"""Tests for the data access layer: write-blob-first, read path, GC."""

import pytest

from repro.core.records import Model, ModelInstance
from repro.errors import BlobStoreError, ConsistencyError, DuplicateError
from repro.store.blob import FaultInjectingBlobStore, FaultPlan, InMemoryBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore


def make_instance(iid="i1"):
    return ModelInstance(
        instance_id=iid, model_id="m1", base_version_id="demand", created_time=1.0
    )


@pytest.fixture
def dal_parts():
    metadata = InMemoryMetadataStore()
    blobs = InMemoryBlobStore()
    cache = LRUBlobCache(1024)
    return metadata, blobs, cache, DataAccessLayer(metadata, blobs, cache)


class TestWriteBlobFirst:
    def test_successful_save_fills_location(self, dal_parts):
        _, blobs, _, dal = dal_parts
        stored = dal.save_instance(make_instance(), b"payload")
        assert stored.blob_location
        assert blobs.exists(stored.blob_location)

    def test_blob_failure_leaves_nothing(self, dal_parts):
        metadata, _, cache, _ = dal_parts
        failing = FaultInjectingBlobStore(InMemoryBlobStore(), FaultPlan(fail_puts={1}))
        dal = DataAccessLayer(metadata, failing, cache)
        with pytest.raises(BlobStoreError):
            dal.save_instance(make_instance(), b"payload")
        assert metadata.counts()["instances"] == 0
        assert failing.locations() == []

    def test_metadata_failure_leaves_orphan_blob(self, dal_parts):
        metadata, blobs, _, dal = dal_parts
        dal.save_instance(make_instance("i1"), b"first")
        # second save of the SAME instance id: blob lands, metadata refuses
        with pytest.raises(DuplicateError):
            dal.save_instance(make_instance("i1"), b"second")
        report = dal.audit_consistency()
        assert len(report.orphan_blobs) == 1
        assert report.consistent  # orphans are legal; dangling metadata is not

    def test_orphan_gc_reclaims(self, dal_parts):
        metadata, blobs, _, dal = dal_parts
        dal.save_instance(make_instance("i1"), b"first")
        with pytest.raises(DuplicateError):
            dal.save_instance(make_instance("i1"), b"second")
        removed = dal.collect_orphan_blobs()
        assert len(removed) == 1
        assert dal.audit_consistency().orphan_blobs == ()
        # the live instance's blob is untouched
        assert dal.load_blob("i1") == b"first"


class TestReadPath:
    def test_cache_populated_on_read(self, dal_parts):
        _, blobs, cache, dal = dal_parts
        stored = dal.save_instance(make_instance(), b"payload")
        assert dal.load_blob("i1") == b"payload"   # miss -> store read
        assert dal.load_blob("i1") == b"payload"   # hit
        assert cache.stats.hits == 1
        assert blobs.stats.gets == 1  # only one physical read

    def test_no_cache_configured(self):
        dal = DataAccessLayer(InMemoryMetadataStore(), InMemoryBlobStore(), None)
        dal.save_instance(make_instance(), b"payload")
        assert dal.load_blob("i1") == b"payload"
        assert dal.load_blob("i1") == b"payload"

    def test_missing_location_is_consistency_error(self, dal_parts):
        metadata, _, _, dal = dal_parts
        metadata.insert_instance(make_instance())  # no blob_location
        with pytest.raises(ConsistencyError):
            dal.load_blob("i1")


class TestAudit:
    def test_dangling_metadata_detected(self, dal_parts):
        metadata, blobs, _, dal = dal_parts
        stored = dal.save_instance(make_instance(), b"payload")
        blobs.delete(stored.blob_location)  # simulate external corruption
        report = dal.audit_consistency()
        assert not report.consistent
        assert report.dangling_instances == ("i1",)

    def test_clean_state_audits_clean(self, dal_parts):
        *_, dal = dal_parts
        dal.save_instance(make_instance(), b"payload")
        report = dal.audit_consistency()
        assert report.consistent and report.orphan_blobs == ()

    def test_storage_summary(self, dal_parts):
        metadata, _, _, dal = dal_parts
        dal.save_model(Model(model_id="m1", project="p", base_version_id="demand"))
        dal.save_instance(make_instance(), b"payload")
        dal.load_blob("i1")
        summary = dal.storage_summary()
        assert summary["models"] == 1
        assert summary["instances"] == 1
        assert summary["blob_count"] == 1
        assert "cache_hit_rate" in summary
