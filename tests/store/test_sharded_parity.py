"""Scatter-gather parity (PR 6 satellite): `model_query` must return
identical results — content AND order — on a 1-shard and an N-shard store
built from the same fixture corpus, including over the binary wire dialect.
"""

import pytest

from repro.core.clock import ManualClock
from repro.core.ids import SeededIdFactory
from repro.core.registry import Gallery
from repro.service.client import GalleryClient, InProcessTransport
from repro.service.server import GalleryService
from repro.service import wire
from repro.store.blob import InMemoryBlobStore
from repro.store.dal import DataAccessLayer
from repro.store.sharding import open_sharded_store

CITIES = ("sf", "nyc", "pit")


def build_corpus(tmp_path, shard_count):
    """The same deterministic corpus over a *shard_count*-shard store."""
    store = open_sharded_store(
        str(tmp_path / f"shards-{shard_count}"), shard_count
    )
    gallery = Gallery(
        DataAccessLayer(store, InMemoryBlobStore()),
        clock=ManualClock(),
        id_factory=SeededIdFactory(seed=7),
    )
    for m in range(6):
        base = f"coord-{m}"
        gallery.create_model("parity", base)
        for k in range(5):
            instance = gallery.upload_model(
                "parity",
                base,
                f"weights-{m}-{k}".encode(),
                metadata={
                    "model_name": f"net-{m}",
                    "city": CITIES[k % len(CITIES)],
                    "threshold": k / 10,
                },
            )
            gallery.insert_metric(instance.instance_id, "bias", m + k / 100)
    return gallery, store


QUERIES = [
    # single-coordinate: routes to one shard
    [{"field": "baseVersionId", "operator": "equal", "value": "coord-2"}],
    # coordinate + non-indexed refinement
    [
        {"field": "baseVersionId", "operator": "equal", "value": "coord-3"},
        {"field": "threshold", "operator": "smaller_than", "value": 0.25},
    ],
    # indexed field: scatter-gather across every shard
    [{"field": "city", "operator": "equal", "value": "nyc"}],
    # metric constraint: exercises metrics_for_instances fan-out
    [
        {"field": "metricName", "operator": "equal", "value": "bias"},
        {"field": "metricValue", "operator": "smaller_than", "value": 2.5},
    ],
    # project-wide scan
    [{"field": "projectName", "operator": "equal", "value": "parity"}],
]


@pytest.mark.parametrize("shards", [3, 8])
def test_model_query_parity_single_vs_sharded(tmp_path, shards):
    single_gallery, single_store = build_corpus(tmp_path, 1)
    multi_gallery, multi_store = build_corpus(tmp_path, shards)
    try:
        # same corpus landed in both stores...
        assert single_store.counts() == multi_store.counts()
        # ...but actually spread across shards in the sharded one
        assert sum(
            1 for c in multi_store.shard_counts() if c["instances"]
        ) > 1
        for constraints in QUERIES:
            single = [
                i.to_dict() for i in single_gallery.model_query(constraints)
            ]
            multi = [
                i.to_dict() for i in multi_gallery.model_query(constraints)
            ]
            assert single, f"fixture query matched nothing: {constraints}"
            assert single == multi  # identical content and order
    finally:
        single_store.close()
        multi_store.close()


def test_model_query_parity_over_binary_wire(tmp_path):
    single_gallery, single_store = build_corpus(tmp_path, 1)
    multi_gallery, multi_store = build_corpus(tmp_path, 5)
    clients = [
        GalleryClient(
            InProcessTransport(GalleryService(g)),
            client_id=f"parity-{n}",
            dialect=wire.DIALECT_BINARY,
        )
        for n, g in ((1, single_gallery), (5, multi_gallery))
    ]
    try:
        for constraints in QUERIES:
            single, multi = (
                client.model_query(list(constraints)) for client in clients
            )
            assert single
            assert single == multi
        # topology advertisement differs — that's the only visible delta
        assert clients[0].shard_topology()["num_shards"] == 1
        assert clients[1].shard_topology()["num_shards"] == 5
    finally:
        single_store.close()
        multi_store.close()
