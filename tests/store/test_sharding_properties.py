"""Hypothesis property suite for :class:`ShardMap` (PR 6 satellite).

The properties the sharded metadata plane leans on:

* every coordinate maps to exactly one shard (the ranges partition the
  hash space — no gaps, no overlaps);
* routing is stable across process restarts (the hash is seedless and the
  persisted map round-trips losslessly);
* a split preserves the placement of every coordinate outside the split
  shard, and coordinates inside it only ever move to the new shard.
"""

import json
import os
import tempfile

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.store.sharding import (
    HASH_SPACE,
    ShardMap,
    coordinate_hash,
)

keys = st.text(min_size=1, max_size=40)
shard_counts = st.integers(min_value=1, max_value=32)


@st.composite
def split_maps(draw):
    """A map built by a random sequence of splits from a uniform base —
    the only two constructors production code uses."""
    shard_map = ShardMap.uniform(draw(shard_counts))
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        target = draw(
            st.integers(min_value=0, max_value=shard_map.num_shards - 1)
        )
        if shard_map.range_of(target).hi - shard_map.range_of(target).lo >= 2:
            shard_map = shard_map.split(target)
    return shard_map


@given(split_maps(), keys)
def test_every_coordinate_maps_to_exactly_one_shard(shard_map, key):
    value = coordinate_hash(key)
    owners = [r.shard for r in shard_map.ranges if value in r]
    assert len(owners) == 1
    assert shard_map.shard_for(key) == owners[0]


@given(split_maps())
def test_ranges_partition_the_hash_space(shard_map):
    ordered = sorted(shard_map.ranges, key=lambda r: r.lo)
    assert ordered[0].lo == 0
    assert ordered[-1].hi == HASH_SPACE
    for prev, cur in zip(ordered, ordered[1:]):
        assert prev.hi == cur.lo
    assert sorted(r.shard for r in ordered) == list(range(len(ordered)))


@given(split_maps(), st.lists(keys, max_size=20))
def test_routing_survives_persistence_round_trip(shard_map, sample):
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "map.json")
        shard_map.save(path)
        revived = ShardMap.load(path)
    assert revived.epoch == shard_map.epoch
    assert revived.to_dict() == shard_map.to_dict()
    for key in sample:
        assert revived.shard_for(key) == shard_map.shard_for(key)
    # and via the wire-shaped dict (what shardTopology serves)
    rewired = ShardMap.from_dict(json.loads(json.dumps(shard_map.to_dict())))
    for key in sample:
        assert rewired.shard_for(key) == shard_map.shard_for(key)


def test_routing_is_stable_across_processes():
    # Golden values pin the seedless hash: if these move, every persisted
    # layout on disk silently misroutes after an upgrade.
    assert coordinate_hash("demand") == 0x18393578
    assert coordinate_hash("supply_rejection") == 0xEB9DCECF
    assert coordinate_hash("") == 0x1271CF25
    m = ShardMap.uniform(16)
    assert m.shard_for("demand") == 1
    assert m.shard_for("supply_rejection") == 14


@settings(max_examples=60)
@given(split_maps(), st.data(), st.lists(keys, min_size=1, max_size=30))
def test_split_preserves_untouched_placement(shard_map, data, sample):
    target = data.draw(
        st.integers(min_value=0, max_value=shard_map.num_shards - 1)
    )
    source = shard_map.range_of(target)
    if source.hi - source.lo < 2:
        return
    after = shard_map.split(target)
    assert after.epoch == shard_map.epoch + 1
    assert after.num_shards == shard_map.num_shards + 1
    new_shard = shard_map.num_shards
    for key in sample:
        before_owner = shard_map.shard_for(key)
        after_owner = after.shard_for(key)
        if before_owner != target:
            # untouched ranges: placement is identical
            assert after_owner == before_owner
        else:
            # split range: stays put or moves to the appended shard only
            assert after_owner in (target, new_shard)
