"""Unit tests for the sharded metadata store and the offline rebalance
tooling (PR 6 tentpole)."""

import pytest

from repro.core.records import MetricRecord, Model, ModelInstance
from repro.errors import DuplicateError, MetadataStoreError, NotFoundError
from repro.store.sharding import (
    SHARD_MAP_FILENAME,
    SHARD_STRIDE,
    ShardMap,
    init_sharded_layout,
    open_sharded_store,
    split_shard,
    verify_layout,
)

SHARDS = 4


def model(i):
    return Model(
        model_id=f"m{i}",
        project="p",
        base_version_id=f"base-{i}",
        created_time=float(i),
    )


def instance(i, k, **meta):
    return ModelInstance(
        instance_id=f"i{i}-{k}",
        model_id=f"m{i}",
        base_version_id=f"base-{i}",
        created_time=float(i * 100 + k),
        metadata={"city": "sf", **meta},
        blob_location=f"mem://{i}/{k}",
    )


@pytest.fixture
def store(tmp_path):
    s = open_sharded_store(str(tmp_path / "shards"), SHARDS)
    yield s
    s.close()


def populate(store, models=8, per_model=3):
    for i in range(models):
        store.insert_model(model(i))
    store.insert_instances(
        [instance(i, k) for i in range(models) for k in range(per_model)]
    )


class TestRoutingAndSurface:
    def test_round_trips_across_shards(self, store):
        populate(store)
        assert store.counts() == {"models": 8, "instances": 24, "metrics": 0}
        # data actually spread over more than one shard file
        occupied = [c for c in store.shard_counts() if c["instances"]]
        assert len(occupied) > 1
        assert store.get_model("m3").base_version_id == "base-3"
        assert store.get_instance("i3-1").model_id == "m3"
        assert len(store.get_models([f"m{i}" for i in range(8)])) == 8
        assert [
            inst.instance_id for inst in store.instances_of_base_version("base-2")
        ] == ["i2-0", "i2-1", "i2-2"]
        assert len(store.instances_of_model("m5")) == 3
        grouped = store.instances_for_models(["m1", "m6", "ghost"])
        assert len(grouped["m1"]) == 3 and grouped["ghost"] == []
        assert len(store.find_instances_by_field("city", "sf")) == 24
        assert len(list(store.iter_models())) == 8
        assert len(list(store.iter_instances())) == 24

    def test_missing_records_raise(self, store):
        populate(store, models=2)
        with pytest.raises(NotFoundError):
            store.get_model("ghost")
        with pytest.raises(NotFoundError):
            store.get_instance("ghost")

    def test_duplicate_inserts_raise(self, store):
        populate(store, models=2)
        with pytest.raises(DuplicateError):
            store.insert_model(model(1))
        with pytest.raises(DuplicateError):
            store.insert_instance(instance(1, 0))

    def test_metrics_route_by_instance_id(self, store):
        populate(store, models=4)
        metrics = [
            MetricRecord(
                metric_id=f"metric-{i}-{k}",
                instance_id=f"i{i}-0",
                name="bias",
                value=i + k / 10,
                created_time=float(k),
            )
            for i in range(4)
            for k in range(2)
        ]
        store.insert_metrics(metrics)
        assert store.counts()["metrics"] == 8
        assert len(store.metrics_of_instance("i2-0")) == 2
        fetched = store.metrics_for_instances(
            [f"i{i}-0" for i in range(4)], name="bias"
        )
        assert all(len(rows) == 2 for rows in fetched.values())
        assert len(list(store.iter_metrics())) == 8

    def test_replace_routes_without_cache(self, tmp_path):
        # A *fresh* store (cold caches, e.g. after restart) must still
        # route replace_* correctly: the record carries its coordinate.
        first = open_sharded_store(str(tmp_path / "shards"), SHARDS)
        populate(first, models=3)
        first.close()
        second = open_sharded_store(str(tmp_path / "shards"))
        try:
            deprecated = ModelInstance.from_dict(
                {**second.get_instance("i1-1").to_dict(), "deprecated": True}
            )
            second.replace_instance(deprecated)
            assert second.get_instance("i1-1").deprecated
        finally:
            second.close()

    def test_reopen_respects_persisted_map(self, tmp_path):
        open_sharded_store(str(tmp_path / "shards"), SHARDS).close()
        with pytest.raises(MetadataStoreError):
            open_sharded_store(str(tmp_path / "shards"), SHARDS + 1)
        reopened = open_sharded_store(str(tmp_path / "shards"))
        assert reopened.num_shards == SHARDS
        reopened.close()

    def test_open_only_mode_never_creates_a_layout(self, tmp_path):
        # create=False is the contract for read-only tooling: a missing
        # layout is an error and nothing may be written to disk.
        target = tmp_path / "shards"
        with pytest.raises(MetadataStoreError):
            open_sharded_store(str(target), create=False)
        assert not target.exists()
        open_sharded_store(str(target), SHARDS).close()
        reopened = open_sharded_store(str(target), create=False)
        assert reopened.num_shards == SHARDS
        reopened.close()

    def test_closed_store_refuses_scatter(self, tmp_path):
        store = open_sharded_store(str(tmp_path / "shards"), SHARDS)
        store.close()
        # A scatter after close() must not silently resurrect the worker
        # pool (which would leak threads nobody ever shuts down).
        with pytest.raises(MetadataStoreError):
            store.shard_counts()
        assert store._executor is None  # noqa: SLF001


class TestDurableState:
    def test_dedup_claims_stay_on_one_shard(self, store):
        assert store.supports_durable_state
        assert store.dedup_claim("client-a", 1) == ("owner", None)
        store.dedup_complete("client-a", 1, b"resp")
        assert store.dedup_claim("client-a", 1) == ("done", b"resp")
        assert store.dedup_count() == 1
        # the claim lives on exactly one shard file
        shard = store.shard_map.shard_for("client-a")
        assert store._shards[shard].dedup_count() == 1  # noqa: SLF001
        assert store.dedup_trim_age(0.0) == 1
        assert store.dedup_count() == 0

    def test_dead_letter_global_ids(self, store):
        ids = [
            store.dead_letter_append(f"rule-{i}", "act", "Err", "{}")
            for i in range(6)
        ]
        assert len(set(ids)) == 6
        # the shard is recoverable from the id itself
        for i, letter_id in enumerate(ids):
            assert letter_id % SHARD_STRIDE == store.shard_map.shard_for(
                f"rule-{i}"
            )
        assert store.dead_letters_count() == 6
        listed = store.dead_letters_list()
        assert sorted(lid for lid, _ in listed) == sorted(ids)
        only = store.dead_letters_list(rule_uuid="rule-2")
        assert [lid for lid, _ in only] == [ids[2]]
        store.dead_letter_update(ids[0], "Err2", '{"x": 1}')
        assert store.dead_letters_delete(ids[:3]) == 3
        assert store.dead_letters_count() == 3
        assert store.dead_letters_trim_age(0.0) == 3

    def test_capacity_trims_enforce_a_global_ceiling(self, store):
        # The budget is divided across shards, so the configured cap bounds
        # the *total* resident count — not num_shards * capacity.
        for i in range(20):
            store.dedup_claim(f"client-{i}", 1)
            store.dedup_complete(f"client-{i}", 1, b"r")
        for i in range(20):
            store.dead_letter_append(f"rule-{i}", "act", "Err", "{}")
        store.dedup_trim(6)
        assert store.dedup_count() <= 6
        store.dead_letters_trim(6)
        assert store.dead_letters_count() <= 6


class TestRebalanceTools:
    def test_split_moves_only_the_upper_half(self, tmp_path):
        shards_dir = str(tmp_path / "shards")
        first = open_sharded_store(shards_dir, 2)
        populate(first, models=16, per_model=2)
        before = {
            m.model_id: first.shard_map.shard_for(m.base_version_id)
            for m in first.iter_models()
        }
        first.close()

        report = split_shard(shards_dir, 0)
        assert report["new_shard"] == 2
        assert report["epoch"] == 1
        assert verify_layout(shards_dir)["ok"]

        after = open_sharded_store(shards_dir)
        try:
            assert after.num_shards == 3
            assert after.counts() == {
                "models": 16,
                "instances": 32,
                "metrics": 0,
            }
            for i in range(16):
                assert after.get_model(f"m{i}").model_id == f"m{i}"
                assert len(after.instances_of_base_version(f"base-{i}")) == 2
                owner = after.shard_map.shard_for(f"base-{i}")
                if before[f"m{i}"] == 1:
                    assert owner == 1  # untouched shard: nothing moved
                else:
                    assert owner in (0, 2)
        finally:
            after.close()

    def test_split_refuses_unknown_shard(self, tmp_path):
        shards_dir = str(tmp_path / "shards")
        open_sharded_store(shards_dir, 2).close()
        with pytest.raises(MetadataStoreError):
            split_shard(shards_dir, 7)

    def test_verify_repairs_misplaced_rows(self, tmp_path):
        shards_dir = str(tmp_path / "shards")
        store = open_sharded_store(shards_dir, 2)
        populate(store, models=4)
        # Simulate the crash window between a split's copy and its source
        # sweep: plant a row on the wrong shard directly.
        wrong = 1 - store.shard_map.shard_for("base-0")
        store._shards[wrong].insert_instance(  # noqa: SLF001
            instance(0, 99)
        )
        store.close()
        report = verify_layout(shards_dir)
        assert not report["ok"]
        assert report["misplaced"][wrong]["instances"] == 1
        repaired = verify_layout(shards_dir, repair=True)
        assert repaired["repaired"]
        assert verify_layout(shards_dir)["ok"]

    def test_init_adopts_legacy_single_file(self, tmp_path):
        from repro.store.metadata_store import SQLiteMetadataStore

        legacy = str(tmp_path / "gallery.sqlite")
        single = SQLiteMetadataStore(legacy)
        for i in range(6):
            single.insert_model(model(i))
            single.insert_instance(instance(i, 0))
        single.close()

        shards_dir = str(tmp_path / "shards")
        report = init_sharded_layout(shards_dir, 4, legacy_db=legacy)
        assert report["adopted"]["models"] == 6
        assert report["adopted"]["instances"] == 6
        assert verify_layout(shards_dir)["ok"]
        adopted = open_sharded_store(shards_dir)
        try:
            assert adopted.counts()["models"] == 6
            assert adopted.get_instance("i4-0").base_version_id == "base-4"
        finally:
            adopted.close()
        with pytest.raises(MetadataStoreError):
            init_sharded_layout(shards_dir, 4)

    def test_shard_map_file_is_authoritative(self, tmp_path):
        shards_dir = str(tmp_path / "shards")
        open_sharded_store(shards_dir, 3).close()
        assert (tmp_path / "shards" / SHARD_MAP_FILENAME).exists()
        loaded = ShardMap.load(
            str(tmp_path / "shards" / SHARD_MAP_FILENAME)
        )
        assert loaded.num_shards == 3
