"""Tests for blob stores: memory, filesystem (S3/HDFS stand-in), faults."""

import pytest

from repro.errors import BlobStoreError, NotFoundError
from repro.store.blob import (
    FaultInjectingBlobStore,
    FaultPlan,
    FilesystemBlobStore,
    InMemoryBlobStore,
    content_address,
)


@pytest.fixture(params=["memory", "fs"])
def blob_store(request, tmp_path):
    if request.param == "memory":
        return InMemoryBlobStore()
    return FilesystemBlobStore(tmp_path / "blobs")


class TestBlobStoreContract:
    def test_put_get_round_trip(self, blob_store):
        location = blob_store.put(b"model-bytes", hint="inst-1")
        assert blob_store.get(location) == b"model-bytes"
        assert blob_store.exists(location)

    def test_get_missing_raises(self, blob_store):
        with pytest.raises(NotFoundError):
            blob_store.get("mem://blobs/ghost" if "mem" in str(type(blob_store)).lower() else "fs://" + "0" * 64)

    def test_delete(self, blob_store):
        location = blob_store.put(b"x")
        blob_store.delete(location)
        assert not blob_store.exists(location)
        with pytest.raises(NotFoundError):
            blob_store.delete(location)

    def test_locations_lists_everything(self, blob_store):
        locations = {blob_store.put(f"blob-{i}".encode()) for i in range(5)}
        assert set(blob_store.locations()) == locations

    def test_non_bytes_rejected(self, blob_store):
        with pytest.raises(BlobStoreError):
            blob_store.put("a string")  # type: ignore[arg-type]

    def test_empty_blob_allowed(self, blob_store):
        location = blob_store.put(b"")
        assert blob_store.get(location) == b""

    def test_large_blob_round_trip(self, blob_store):
        payload = bytes(range(256)) * 4096  # 1 MiB
        assert blob_store.get(blob_store.put(payload)) == payload

    def test_stats_accounting(self, blob_store):
        blob_store.put(b"1234")
        location = blob_store.put(b"56")
        blob_store.get(location)
        assert blob_store.stats.puts == 2
        assert blob_store.stats.gets == 1
        assert blob_store.stats.bytes_written == 6
        assert blob_store.stats.bytes_read == 2


class TestFilesystemSpecifics:
    def test_content_addressing_dedupes(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        first = store.put(b"same-bytes")
        second = store.put(b"same-bytes")
        assert first == second
        assert len(store.locations()) == 1

    def test_location_embeds_digest(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(b"payload")
        assert location == f"fs://{content_address(b'payload')}"

    def test_corruption_detected_on_read(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        location = store.put(b"payload")
        digest = location[len("fs://"):]
        path = tmp_path / digest[:2] / digest[2:4] / digest
        path.write_bytes(b"tampered")
        with pytest.raises(BlobStoreError):
            store.get(location)

    def test_foreign_scheme_rejected(self, tmp_path):
        store = FilesystemBlobStore(tmp_path)
        with pytest.raises(BlobStoreError):
            store.get("s3://other/bucket")

    def test_survives_reopen(self, tmp_path):
        location = FilesystemBlobStore(tmp_path).put(b"durable")
        assert FilesystemBlobStore(tmp_path).get(location) == b"durable"


class TestFaultInjection:
    def test_scheduled_put_failure(self):
        store = FaultInjectingBlobStore(InMemoryBlobStore(), FaultPlan(fail_puts={2}))
        store.put(b"first")
        with pytest.raises(BlobStoreError):
            store.put(b"second")
        store.put(b"third")
        assert len(store.locations()) == 2

    def test_scheduled_get_failure(self):
        store = FaultInjectingBlobStore(InMemoryBlobStore(), FaultPlan(fail_gets={1}))
        location = store.put(b"x")
        with pytest.raises(BlobStoreError):
            store.get(location)
        assert store.get(location) == b"x"  # second read succeeds

    def test_latency_accounting(self):
        plan = FaultPlan(put_latency_s=0.01, get_latency_s=0.002)
        store = FaultInjectingBlobStore(InMemoryBlobStore(), plan)
        location = store.put(b"x")
        store.get(location)
        assert store.stats.simulated_latency_s == pytest.approx(0.012)

    def test_transparent_otherwise(self):
        store = FaultInjectingBlobStore(InMemoryBlobStore())
        location = store.put(b"clean")
        assert store.get(location) == b"clean"
        assert store.exists(location)
