"""Property-based tests for the LRU blob cache invariants."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.store.cache import LRUBlobCache

CAPACITY = 64

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.sampled_from("abcdefgh"),
            st.binary(min_size=0, max_size=40),
        ),
        st.tuples(st.just("get"), st.sampled_from("abcdefgh")),
        st.tuples(st.just("invalidate"), st.sampled_from("abcdefgh")),
    ),
    max_size=60,
)


@given(operations)
@settings(max_examples=200)
def test_byte_budget_and_consistency(ops):
    cache = LRUBlobCache(CAPACITY)
    shadow: dict[str, bytes] = {}
    for op in ops:
        if op[0] == "put":
            _, key, value = op
            cache.put(key, value)
            if len(value) <= CAPACITY:
                shadow[key] = value
        elif op[0] == "get":
            _, key = op
            result = cache.get(key)
            if result is not None:
                # a hit must return exactly what was last put
                assert result == shadow[key]
        else:
            _, key = op
            cache.invalidate(key)
            shadow.pop(key, None)
        # invariant: byte accounting never exceeds capacity
        assert 0 <= cache.stats.current_bytes <= CAPACITY
    # every cached entry agrees with the last write
    for key in list(shadow):
        cached = cache.get(key)
        if cached is not None:
            assert cached == shadow[key]


class CacheMachine(RuleBasedStateMachine):
    """Stateful test: the cache is always a subset of the last-written map."""

    def __init__(self):
        super().__init__()
        self.cache = LRUBlobCache(128)
        self.written: dict[str, bytes] = {}

    @rule(key=st.sampled_from("abcdef"), value=st.binary(max_size=50))
    def put(self, key, value):
        self.cache.put(key, value)
        if len(value) <= 128:
            self.written[key] = value

    @rule(key=st.sampled_from("abcdef"))
    def get(self, key):
        result = self.cache.get(key)
        if result is not None:
            assert result == self.written[key]

    @rule(key=st.sampled_from("abcdef"))
    def invalidate(self, key):
        self.cache.invalidate(key)

    @invariant()
    def bytes_within_budget(self):
        assert 0 <= self.cache.stats.current_bytes <= 128

    @invariant()
    def length_matches_accounting(self):
        # empty cache must report zero bytes
        if len(self.cache) == 0:
            assert self.cache.stats.current_bytes == 0


TestCacheMachine = CacheMachine.TestCase
