"""Tests for the durable control-plane state in the metadata store:
the ``dedup_entries`` claim table and the ``dead_letters`` table.

Two properties matter and both are exercised across *separate store
instances over the same SQLite file*, because that is exactly the
multi-replica deployment: every serving replica opens its own store, and
correctness of the claim protocol rests on SQLite's cross-connection
write serialization, not on any in-process lock.
"""

import time

import pytest

from repro.errors import MetadataStoreError
from repro.store.blob import FilesystemBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore, SQLiteMetadataStore


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "gallery.db")


@pytest.fixture
def store(db_path):
    store = SQLiteMetadataStore(db_path)
    yield store
    store.close()


class TestSupportsDurableState:
    def test_file_backed_sqlite_is_durable(self, store):
        assert store.supports_durable_state is True

    def test_memory_sqlite_is_not(self):
        assert SQLiteMetadataStore(":memory:").supports_durable_state is False

    def test_in_memory_store_is_not(self):
        assert InMemoryMetadataStore().supports_durable_state is False

    def test_dal_passes_the_flag_through(self, store, tmp_path):
        dal = DataAccessLayer(
            store, FilesystemBlobStore(tmp_path / "blobs"), LRUBlobCache(4)
        )
        assert dal.supports_durable_state is True
        memory_dal = DataAccessLayer(
            InMemoryMetadataStore(),
            FilesystemBlobStore(tmp_path / "blobs2"),
            LRUBlobCache(4),
        )
        assert memory_dal.supports_durable_state is False


class TestDedupClaims:
    def test_first_claim_owns(self, store):
        assert store.dedup_claim("c1", 1) == ("owner", None)

    def test_claim_while_in_flight_is_pending(self, store):
        store.dedup_claim("c1", 1)
        assert store.dedup_claim("c1", 1) == ("pending", None)

    def test_completed_claim_replays_the_response(self, store):
        store.dedup_claim("c1", 1)
        store.dedup_complete("c1", 1, b"stored-response")
        status, response = store.dedup_claim("c1", 1)
        assert status == "done"
        assert response == b"stored-response"

    def test_release_reopens_the_slot(self, store):
        store.dedup_claim("c1", 1)
        store.dedup_release("c1", 1)
        assert store.dedup_claim("c1", 1) == ("owner", None)

    def test_distinct_clients_and_requests_do_not_collide(self, store):
        assert store.dedup_claim("c1", 1) == ("owner", None)
        assert store.dedup_claim("c2", 1) == ("owner", None)
        assert store.dedup_claim("c1", 2) == ("owner", None)

    def test_stale_pending_claim_is_taken_over(self, store):
        store.dedup_claim("c1", 1)
        # the owning worker died; with a zero takeover window the retry
        # adopts the orphaned claim instead of waiting forever
        assert store.dedup_claim("c1", 1, takeover_after=0.0) == ("owner", None)

    def test_fresh_pending_claim_is_not_taken_over(self, store):
        store.dedup_claim("c1", 1)
        assert store.dedup_claim("c1", 1, takeover_after=300.0) == (
            "pending", None,
        )

    def test_claims_are_shared_across_store_instances(self, db_path, store):
        store.dedup_claim("c1", 7)
        store.dedup_complete("c1", 7, b"replica-1-response")
        other = SQLiteMetadataStore(db_path)
        try:
            # a different replica over the same file replays, not re-executes
            assert other.dedup_claim("c1", 7) == ("done", b"replica-1-response")
            assert other.dedup_claim("c1", 8) == ("owner", None)
            assert store.dedup_claim("c1", 8) == ("pending", None)
        finally:
            other.close()

    def test_claims_survive_reopen(self, db_path):
        first = SQLiteMetadataStore(db_path)
        first.dedup_claim("c1", 1)
        first.dedup_complete("c1", 1, b"answer")
        first.close()
        reopened = SQLiteMetadataStore(db_path)
        try:
            assert reopened.dedup_claim("c1", 1) == ("done", b"answer")
        finally:
            reopened.close()

    def test_trim_drops_oldest_done_entries(self, store):
        for request_id in range(1, 6):
            store.dedup_claim("c1", request_id)
            store.dedup_complete("c1", request_id, b"r%d" % request_id)
            time.sleep(0.002)  # strictly increasing `updated` timestamps
        assert store.dedup_count() == 5
        assert store.dedup_trim(2) == 3
        assert store.dedup_count() == 2
        # the newest entries survived; the trimmed ones claim as fresh
        assert store.dedup_claim("c1", 5) == ("done", b"r5")
        assert store.dedup_claim("c1", 1) == ("owner", None)

    def test_trim_never_drops_pending_claims(self, store):
        store.dedup_claim("c1", 1)  # in flight
        store.dedup_claim("c1", 2)
        store.dedup_complete("c1", 2, b"done")
        assert store.dedup_trim(0) == 1
        assert store.dedup_claim("c1", 1) == ("pending", None)

    def test_closed_store_raises_typed_error(self, db_path):
        store = SQLiteMetadataStore(db_path)
        store.close()
        with pytest.raises(MetadataStoreError):
            store.dedup_claim("c1", 1)


class TestDeadLetterTable:
    def test_append_assigns_monotone_ids(self, store):
        first = store.dead_letter_append("r1", "deploy", "OSError", "{}")
        second = store.dead_letter_append("r1", "alert", "ValueError", "{}")
        assert second > first

    def test_list_filters(self, store):
        store.dead_letter_append("r1", "deploy", "OSError", '{"n": 1}')
        store.dead_letter_append("r2", "alert", "ValueError", '{"n": 2}')
        store.dead_letter_append("r1", "alert", "OSError", '{"n": 3}')
        assert len(store.dead_letters_list()) == 3
        assert [r for _, r in store.dead_letters_list(rule_uuid="r2")] == [
            '{"n": 2}'
        ]
        assert len(store.dead_letters_list(action="alert")) == 2
        assert len(store.dead_letters_list(error_type="OSError")) == 2
        assert store.dead_letters_list(rule_uuid="r1", action="deploy") == [
            (1, '{"n": 1}')
        ]

    def test_update_rewrites_record_and_error_type(self, store):
        letter_id = store.dead_letter_append("r1", "deploy", "OSError", "{}")
        store.dead_letter_update(letter_id, "TimeoutError", '{"retried": true}')
        rows = store.dead_letters_list(error_type="TimeoutError")
        assert rows == [(letter_id, '{"retried": true}')]
        assert store.dead_letters_list(error_type="OSError") == []

    def test_delete_by_id(self, store):
        ids = [
            store.dead_letter_append("r1", "deploy", "OSError", "{}")
            for _ in range(3)
        ]
        assert store.dead_letters_delete(ids[:2]) == 2
        assert store.dead_letters_delete([]) == 0
        assert store.dead_letters_count() == 1
        assert [i for i, _ in store.dead_letters_list()] == [ids[2]]

    def test_trim_evicts_oldest(self, store):
        for n in range(4):
            store.dead_letter_append("r1", "deploy", "OSError", '{"n": %d}' % n)
        assert store.dead_letters_trim(2) == 2
        assert [r for _, r in store.dead_letters_list()] == [
            '{"n": 2}', '{"n": 3}',
        ]
        assert store.dead_letters_trim(2) == 0

    def test_letters_survive_reopen_with_stable_ids(self, db_path):
        first = SQLiteMetadataStore(db_path)
        letter_id = first.dead_letter_append("r1", "deploy", "OSError", '{"x": 1}')
        first.close()
        reopened = SQLiteMetadataStore(db_path)
        try:
            assert reopened.dead_letters_list() == [(letter_id, '{"x": 1}')]
            # AUTOINCREMENT: ids never recycle even after deletes + reopen
            reopened.dead_letters_delete([letter_id])
            fresh = reopened.dead_letter_append("r1", "deploy", "OSError", "{}")
            assert fresh > letter_id
        finally:
            reopened.close()


class TestDalPassthrough:
    def test_dedup_and_dead_letters_via_dal(self, store, tmp_path):
        dal = DataAccessLayer(
            store, FilesystemBlobStore(tmp_path / "blobs"), LRUBlobCache(4)
        )
        assert dal.dedup_claim("c1", 1) == ("owner", None)
        dal.dedup_complete("c1", 1, b"resp")
        assert dal.dedup_claim("c1", 1) == ("done", b"resp")
        assert dal.dedup_claim("c1", 2) == ("owner", None)
        dal.dedup_release("c1", 2)  # release only drops pending claims
        assert dal.dedup_count() == 1
        assert dal.dedup_claim("c1", 2) == ("owner", None)
        letter_id = dal.dead_letter_append("r1", "deploy", "OSError", "{}")
        assert dal.dead_letters_count() == 1
        assert dal.dead_letters_list() == [(letter_id, "{}")]
        dal.dead_letter_update(letter_id, "ValueError", '{"u": 1}')
        assert dal.dead_letters_trim(5) == 0
        assert dal.dead_letters_delete([letter_id]) == 1


class TestAgeBasedRetention:
    def test_dedup_age_trim_drops_only_old_done_rows(self, store):
        now = time.time()
        store.dedup_claim("c1", 1, now=now - 100)
        store.dedup_complete("c1", 1, b"old")  # updated stamped ~now
        # Backdate via a second claim-complete pair driven through the
        # public API: re-stamp by claiming with an explicit old `now`.
        store.dedup_claim("c2", 2, now=now)
        store.dedup_complete("c2", 2, b"new")
        # Nothing is old enough yet.
        assert store.dedup_trim_age(3600, now=now) == 0
        # Everything completed is older than a zero-second horizon viewed
        # from the future.
        assert store.dedup_trim_age(60, now=now + 3600) == 2
        assert store.dedup_count() == 0

    def test_dedup_age_trim_never_touches_pending(self, store):
        store.dedup_claim("c1", 1)  # pending, in flight
        store.dedup_claim("c1", 2)
        store.dedup_complete("c1", 2, b"done")
        assert store.dedup_trim_age(0, now=time.time() + 10) == 1
        assert store.dedup_claim("c1", 1) == ("pending", None)

    def test_dead_letter_age_trim(self, store):
        store.dead_letter_append("r1", "deploy", "OSError", '{"n": 0}')
        store.dead_letter_append("r1", "deploy", "OSError", '{"n": 1}')
        now = time.time()
        assert store.dead_letters_trim_age(3600, now=now) == 0
        assert store.dead_letters_trim_age(60, now=now + 3600) == 2
        assert store.dead_letters_count() == 0

    def test_pre_migration_letters_are_never_age_trimmed(self, db_path):
        import sqlite3

        # Build a database with the PR-4 era schema: no created_at column.
        conn = sqlite3.connect(db_path)
        conn.executescript(
            """
            CREATE TABLE dead_letters (
                letter_id  INTEGER PRIMARY KEY AUTOINCREMENT,
                rule_uuid  TEXT NOT NULL,
                action     TEXT NOT NULL,
                error_type TEXT NOT NULL,
                record     TEXT NOT NULL
            );
            INSERT INTO dead_letters (rule_uuid, action, error_type, record)
            VALUES ('r1', 'deploy', 'OSError', '{}');
            """
        )
        conn.commit()
        conn.close()
        store = SQLiteMetadataStore(db_path)
        try:
            # The migration added the column with a 0 default...
            assert store.dead_letters_count() == 1
            # ...and rows of unknown age survive any age horizon.
            assert store.dead_letters_trim_age(0, now=time.time() + 1e9) == 0
            assert store.dead_letters_count() == 1
            # New letters are stamped and do expire.
            store.dead_letter_append("r1", "alert", "ValueError", "{}")
            assert (
                store.dead_letters_trim_age(60, now=time.time() + 3600) == 1
            )
            assert store.dead_letters_count() == 1
        finally:
            store.close()

    def test_age_trims_via_dal(self, store, tmp_path):
        dal = DataAccessLayer(
            store, FilesystemBlobStore(tmp_path / "blobs"), LRUBlobCache(4)
        )
        dal.dedup_claim("c1", 1)
        dal.dedup_complete("c1", 1, b"resp")
        dal.dead_letter_append("r1", "deploy", "OSError", "{}")
        later = time.time() + 3600
        assert dal.dedup_trim_age(60, now=later) == 1
        assert dal.dead_letters_trim_age(60, now=later) == 1
