"""Tests for the LRU blob cache (Section 3.5 read path)."""

import threading

import pytest

from repro.store.cache import DocumentCache, LRUBlobCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUBlobCache(100)
        assert cache.get("loc") is None
        cache.put("loc", b"data")
        assert cache.get("loc") == b"data"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUBlobCache(0)

    def test_contains_and_len(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"1")
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1


class TestEviction:
    def test_lru_order(self):
        cache = LRUBlobCache(10)
        cache.put("a", b"12345")
        cache.put("b", b"12345")
        cache.get("a")               # refresh a
        cache.put("c", b"12345")     # evicts b (least recent)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_enforced(self):
        cache = LRUBlobCache(10)
        cache.put("a", b"123456")
        cache.put("b", b"123456")  # must evict a to fit
        assert cache.stats.current_bytes <= 10
        assert "a" not in cache

    def test_oversized_blob_bypasses_cache(self):
        cache = LRUBlobCache(10)
        cache.put("big", b"x" * 11)
        assert "big" not in cache
        assert len(cache) == 0

    def test_replacing_entry_adjusts_bytes(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"x" * 50)
        cache.put("a", b"y" * 10)
        assert cache.stats.current_bytes == 10
        assert cache.get("a") == b"y" * 10

    def test_multiple_evictions_for_one_insert(self):
        cache = LRUBlobCache(10)
        for key in ("a", "b", "c"):
            cache.put(key, b"xxx")
        cache.put("d", b"x" * 9)
        assert "d" in cache
        assert cache.stats.current_bytes <= 10


class TestInvalidate:
    def test_invalidate_present(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"data")
        assert cache.invalidate("a")
        assert "a" not in cache
        assert cache.stats.current_bytes == 0

    def test_invalidate_absent(self):
        assert not LRUBlobCache(100).invalidate("ghost")

    def test_clear(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.current_bytes == 0


class TestHitRate:
    def test_hit_rate_math(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"1")
        cache.get("a")
        cache.get("a")
        cache.get("ghost")
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_cache_zero_rate(self):
        assert LRUBlobCache(10).stats.hit_rate == 0.0


def hammer(worker, n_threads=8):
    """Run *worker(index)* on n threads, re-raising any worker exception."""
    errors: list[Exception] = []

    def wrapped(index):
        try:
            worker(index)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
    assert errors == [], errors


class TestThreadSafety:
    """The caches sit under the threaded TCP server; no torn state allowed."""

    def test_concurrent_get_put_consistent_stats(self):
        cache = LRUBlobCache(64)  # small budget forces constant eviction
        per_thread = 300

        def worker(index):
            for i in range(per_thread):
                key = f"k{(index + i) % 16}"
                if cache.get(key) is None:
                    cache.put(key, b"x" * (4 + (i % 8)))

        hammer(worker)
        # stats were updated atomically with the entry map
        assert cache.stats.hits + cache.stats.misses == 8 * per_thread
        assert 0 <= cache.stats.current_bytes <= cache.capacity_bytes

    def test_concurrent_put_invalidate_clear(self):
        cache = LRUBlobCache(1024)

        def worker(index):
            for i in range(200):
                key = f"k{i % 8}"
                cache.put(key, b"data")
                if index % 2:
                    cache.invalidate(key)
                if i % 97 == 0:
                    cache.clear()

        hammer(worker)
        # byte accounting matches whatever entries survived
        assert cache.stats.current_bytes == sum(
            len(cache.get(f"k{i}") or b"") for i in range(8)
        )


class TestDocumentCache:
    def test_read_through_copy_semantics(self):
        cache = DocumentCache()
        cache.put("i1", "m1", {"city": "sf"})
        first = cache.get("i1")
        first["metrics"] = {"mape": 0.1}  # decorating a copy…
        assert "metrics" not in cache.get("i1")  # …never poisons the cache

    def test_invalidate_instance(self):
        cache = DocumentCache()
        cache.put("i1", "m1", {"a": 1})
        assert cache.invalidate_instance("i1")
        assert cache.get("i1") is None
        assert not cache.invalidate_instance("i1")

    def test_invalidate_model_drops_all_member_documents(self):
        cache = DocumentCache()
        cache.put("i1", "m1", {})
        cache.put("i2", "m1", {})
        cache.put("i3", "m2", {})
        assert cache.invalidate_model("m1") == 2
        assert "i1" not in cache and "i2" not in cache
        assert "i3" in cache

    def test_lru_eviction_bounded(self):
        cache = DocumentCache(max_entries=2)
        cache.put("i1", "m1", {})
        cache.put("i2", "m1", {})
        cache.get("i1")  # refresh
        cache.put("i3", "m2", {})  # evicts i2
        assert "i1" in cache and "i3" in cache and "i2" not in cache
        # eviction also cleaned the model index: invalidating m1 only drops i1
        assert cache.invalidate_model("m1") == 1

    def test_concurrent_put_get_invalidate(self):
        cache = DocumentCache(max_entries=32)

        def worker(index):
            for i in range(300):
                iid = f"i{(index * 7 + i) % 48}"
                mid = f"m{i % 6}"
                if cache.get(iid) is None:
                    cache.put(iid, mid, {"n": i})
                if i % 53 == 0:
                    cache.invalidate_model(mid)

        hammer(worker)
        assert len(cache) <= 32
        assert cache.stats.hits + cache.stats.misses == 8 * 300
