"""Tests for the LRU blob cache (Section 3.5 read path)."""

import pytest

from repro.store.cache import LRUBlobCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUBlobCache(100)
        assert cache.get("loc") is None
        cache.put("loc", b"data")
        assert cache.get("loc") == b"data"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            LRUBlobCache(0)

    def test_contains_and_len(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"1")
        assert "a" in cache and "b" not in cache
        assert len(cache) == 1


class TestEviction:
    def test_lru_order(self):
        cache = LRUBlobCache(10)
        cache.put("a", b"12345")
        cache.put("b", b"12345")
        cache.get("a")               # refresh a
        cache.put("c", b"12345")     # evicts b (least recent)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_byte_budget_enforced(self):
        cache = LRUBlobCache(10)
        cache.put("a", b"123456")
        cache.put("b", b"123456")  # must evict a to fit
        assert cache.stats.current_bytes <= 10
        assert "a" not in cache

    def test_oversized_blob_bypasses_cache(self):
        cache = LRUBlobCache(10)
        cache.put("big", b"x" * 11)
        assert "big" not in cache
        assert len(cache) == 0

    def test_replacing_entry_adjusts_bytes(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"x" * 50)
        cache.put("a", b"y" * 10)
        assert cache.stats.current_bytes == 10
        assert cache.get("a") == b"y" * 10

    def test_multiple_evictions_for_one_insert(self):
        cache = LRUBlobCache(10)
        for key in ("a", "b", "c"):
            cache.put(key, b"xxx")
        cache.put("d", b"x" * 9)
        assert "d" in cache
        assert cache.stats.current_bytes <= 10


class TestInvalidate:
    def test_invalidate_present(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"data")
        assert cache.invalidate("a")
        assert "a" not in cache
        assert cache.stats.current_bytes == 0

    def test_invalidate_absent(self):
        assert not LRUBlobCache(100).invalidate("ghost")

    def test_clear(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.current_bytes == 0


class TestHitRate:
    def test_hit_rate_math(self):
        cache = LRUBlobCache(100)
        cache.put("a", b"1")
        cache.get("a")
        cache.get("a")
        cache.get("ghost")
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_cache_zero_rate(self):
        assert LRUBlobCache(10).stats.hit_rate == 0.0
