"""Tests for the relational metadata stores (memory + SQLite parity)."""

import dataclasses

import pytest

from repro.core.records import MetricRecord, Model, ModelInstance
from repro.errors import DuplicateError, MetadataStoreError, NotFoundError


def model(mid="m1", **overrides):
    defaults = dict(model_id=mid, project="p", base_version_id="demand")
    defaults.update(overrides)
    return Model(**defaults)


def instance(iid="i1", mid="m1", **overrides):
    defaults = dict(
        instance_id=iid,
        model_id=mid,
        base_version_id="demand",
        created_time=1.0,
        metadata={"model_name": "rf", "city": "sf"},
    )
    defaults.update(overrides)
    return ModelInstance(**defaults)


def metric(mtid="mt1", iid="i1", **overrides):
    defaults = dict(metric_id=mtid, instance_id=iid, name="mape", value=0.1)
    defaults.update(overrides)
    return MetricRecord(**defaults)


class TestModels:
    def test_insert_get_round_trip(self, metadata_store):
        record = model(metadata={"k": "v"}, upstream_model_ids=("u",))
        metadata_store.insert_model(record)
        assert metadata_store.get_model("m1") == record

    def test_duplicate_insert_rejected(self, metadata_store):
        metadata_store.insert_model(model())
        with pytest.raises(DuplicateError):
            metadata_store.insert_model(model())

    def test_get_missing_raises(self, metadata_store):
        with pytest.raises(NotFoundError):
            metadata_store.get_model("ghost")

    def test_replace_allows_bookkeeping_fields(self, metadata_store):
        metadata_store.insert_model(model())
        metadata_store.replace_model(model(deprecated=True))
        assert metadata_store.get_model("m1").deprecated

    def test_replace_rejects_immutable_field_change(self, metadata_store):
        metadata_store.insert_model(model(owner="alice"))
        with pytest.raises(MetadataStoreError):
            metadata_store.replace_model(model(owner="mallory"))

    def test_iter_models(self, metadata_store):
        metadata_store.insert_model(model("m1"))
        metadata_store.insert_model(model("m2", base_version_id="supply"))
        assert {m.model_id for m in metadata_store.iter_models()} == {"m1", "m2"}


class TestInstances:
    def test_insert_get_round_trip(self, metadata_store):
        record = instance(blob_location="mem://b/1", instance_version="1.1")
        metadata_store.insert_instance(record)
        assert metadata_store.get_instance("i1") == record

    def test_duplicate_rejected(self, metadata_store):
        metadata_store.insert_instance(instance())
        with pytest.raises(DuplicateError):
            metadata_store.insert_instance(instance())

    def test_instances_of_model_sorted_by_time(self, metadata_store):
        metadata_store.insert_instance(instance("late", created_time=9.0))
        metadata_store.insert_instance(instance("early", created_time=1.0))
        ids = [i.instance_id for i in metadata_store.instances_of_model("m1")]
        # memory store preserves insert order; sqlite sorts by created_time.
        # Both must contain exactly these two instances.
        assert set(ids) == {"early", "late"}

    def test_instances_of_base_version(self, metadata_store):
        metadata_store.insert_instance(instance("i1"))
        metadata_store.insert_instance(
            instance("i2", base_version_id="supply")
        )
        hits = metadata_store.instances_of_base_version("demand")
        assert [i.instance_id for i in hits] == ["i1"]

    def test_indexed_field_lookup(self, metadata_store):
        metadata_store.insert_instance(instance("i1"))
        metadata_store.insert_instance(
            instance("i2", metadata={"model_name": "linear", "city": "nyc"})
        )
        sf = metadata_store.find_instances_by_field("city", "sf")
        assert [i.instance_id for i in sf] == ["i1"]
        rf = metadata_store.find_instances_by_field("model_name", "rf")
        assert [i.instance_id for i in rf] == ["i1"]

    def test_unindexed_field_lookup_falls_back_to_scan(self, metadata_store):
        metadata_store.insert_instance(
            instance("i1", metadata={"custom": "yes", "model_name": "rf"})
        )
        hits = metadata_store.find_instances_by_field("custom", "yes")
        assert [i.instance_id for i in hits] == ["i1"]

    def test_replace_instance_deprecation_only(self, metadata_store):
        record = instance()
        metadata_store.insert_instance(record)
        metadata_store.replace_instance(record.deprecate())
        assert metadata_store.get_instance("i1").deprecated
        import dataclasses

        with pytest.raises(MetadataStoreError):
            metadata_store.replace_instance(
                dataclasses.replace(record, blob_location="mem://moved")
            )


class TestMetrics:
    def test_insert_and_query(self, metadata_store):
        metadata_store.insert_metric(metric())
        metadata_store.insert_metric(metric("mt2", name="bias", value=0.01))
        records = metadata_store.metrics_of_instance("i1")
        assert {m.name for m in records} == {"mape", "bias"}

    def test_duplicate_metric_rejected(self, metadata_store):
        metadata_store.insert_metric(metric())
        with pytest.raises(DuplicateError):
            metadata_store.insert_metric(metric())

    def test_metrics_of_unknown_instance_empty(self, metadata_store):
        assert metadata_store.metrics_of_instance("ghost") == []

    def test_iter_metrics(self, metadata_store):
        metadata_store.insert_metric(metric("mt1"))
        metadata_store.insert_metric(metric("mt2", iid="i2"))
        assert len(list(metadata_store.iter_metrics())) == 2


class TestCounts:
    def test_counts_per_table(self, metadata_store):
        metadata_store.insert_model(model())
        metadata_store.insert_instance(instance())
        metadata_store.insert_metric(metric())
        assert metadata_store.counts() == {"models": 1, "instances": 1, "metrics": 1}


class TestFamilies:
    def test_family_and_enablement_round_trip(self, metadata_store):
        record = instance(family="sf:rf", enabled=False)
        metadata_store.insert_instance(record)
        stored = metadata_store.get_instance("i1")
        assert stored.family == "sf:rf"
        assert stored.enabled is False

    def test_instances_in_family_sorted_by_creation(self, metadata_store):
        metadata_store.insert_instance(
            instance("late", family="sf:rf", created_time=9.0)
        )
        metadata_store.insert_instance(
            instance("early", family="sf:rf", created_time=1.0)
        )
        metadata_store.insert_instance(instance("other", family="nyc:rf"))
        members = metadata_store.instances_in_family("sf:rf")
        assert [i.instance_id for i in members] == ["early", "late"]

    def test_models_in_family(self, metadata_store):
        metadata_store.insert_model(model("m1", family="demand_rf"))
        metadata_store.insert_model(
            model("m2", base_version_id="supply", family="supply_rf")
        )
        assert [m.model_id for m in metadata_store.models_in_family("demand_rf")] == [
            "m1"
        ]
        assert metadata_store.models_in_family("ghost-family") == []

    def test_enablement_is_mutable_family_is_not(self, metadata_store):
        metadata_store.insert_instance(instance(family="sf:rf"))
        stored = metadata_store.get_instance("i1")
        metadata_store.replace_instance(stored.with_enablement(False))
        assert metadata_store.get_instance("i1").enabled is False
        with pytest.raises(MetadataStoreError):
            metadata_store.replace_instance(
                dataclasses.replace(stored, family="moved:family")
            )


class TestServingAssignments:
    def test_first_assignment_creates_row(self, metadata_store):
        created = metadata_store.assign_serving(
            "sf", "i1", family="sf:rf", now=5.0, reason="launch"
        )
        assert created.scope == "sf"
        assert created.instance_id == "i1"
        assert created.family == "sf:rf"
        assert created.assigned_time == 5.0
        assert created.previous_instance_id is None
        assert created.switch_count == 1
        assert metadata_store.serving_assignment("sf") == created

    def test_reassignment_links_previous_and_counts(self, metadata_store):
        metadata_store.assign_serving("sf", "i1", now=1.0)
        switched = metadata_store.assign_serving(
            "sf", "i2", family="sf:event", now=2.0, reason="event window"
        )
        assert switched.instance_id == "i2"
        assert switched.previous_instance_id == "i1"
        assert switched.switch_count == 2
        assert switched.reason == "event window"
        assert switched.assigned_time == 2.0

    def test_same_instance_reassign_is_noop(self, metadata_store):
        first = metadata_store.assign_serving("sf", "i1", now=1.0, reason="launch")
        again = metadata_store.assign_serving("sf", "i1", now=9.0, reason="replay")
        assert again == first, "re-pointing at the serving instance must not churn"
        assert metadata_store.serving_assignment("sf").switch_count == 1

    def test_missing_scope_raises(self, metadata_store):
        with pytest.raises(NotFoundError):
            metadata_store.serving_assignment("ghost")

    def test_listing_ordered_by_scope(self, metadata_store):
        metadata_store.assign_serving("nyc", "i2", now=2.0)
        metadata_store.assign_serving("sf", "i1", now=1.0)
        metadata_store.assign_serving("austin", "i3", now=3.0)
        scopes = [a.scope for a in metadata_store.serving_assignments()]
        assert scopes == ["austin", "nyc", "sf"]
        assert metadata_store.serving_assignment_count() == 3

    def test_counts_shape_unchanged_by_assignments(self, metadata_store):
        # Scale experiments assert the exact counts() dict; serving rows are
        # surfaced via serving_assignment_count() instead.
        metadata_store.assign_serving("sf", "i1", now=1.0)
        assert set(metadata_store.counts()) == {"models", "instances", "metrics"}


class TestBatchedReads:
    """The batch surfaces the registry's read path is built on."""

    def test_get_models_skips_missing_ids(self, metadata_store):
        metadata_store.insert_model(model("m1"))
        metadata_store.insert_model(model("m2", base_version_id="supply"))
        found = metadata_store.get_models(["m2", "ghost", "m1", "m1"])
        assert set(found) == {"m1", "m2"}
        assert found["m2"].base_version_id == "supply"

    def test_get_models_empty_input(self, metadata_store):
        assert metadata_store.get_models([]) == {}

    def test_instances_for_models_ordered_and_complete(self, metadata_store):
        metadata_store.insert_instance(instance("late", created_time=9.0))
        metadata_store.insert_instance(instance("early", created_time=1.0))
        metadata_store.insert_instance(instance("other", mid="m2"))
        grouped = metadata_store.instances_for_models(["m1", "m2", "ghost"])
        assert [i.instance_id for i in grouped["m1"]] == ["early", "late"]
        assert [i.instance_id for i in grouped["m2"]] == ["other"]
        assert grouped["ghost"] == []

    def test_metrics_for_instances_maps_every_requested_id(self, metadata_store):
        metadata_store.insert_metric(metric("mt1", iid="i1"))
        metadata_store.insert_metric(metric("mt2", iid="i1", name="bias"))
        metadata_store.insert_metric(metric("mt3", iid="i2"))
        grouped = metadata_store.metrics_for_instances(["i1", "i2", "ghost"])
        assert {m.metric_id for m in grouped["i1"]} == {"mt1", "mt2"}
        assert [m.metric_id for m in grouped["i2"]] == ["mt3"]
        assert grouped["ghost"] == []

    def test_metrics_for_instances_name_pushdown(self, metadata_store):
        metadata_store.insert_metric(metric("mt1", iid="i1", name="mape"))
        metadata_store.insert_metric(metric("mt2", iid="i1", name="bias"))
        metadata_store.insert_metric(metric("mt3", iid="i2", name="mape"))
        grouped = metadata_store.metrics_for_instances(
            ["i1", "i2", "ghost"], name="mape"
        )
        assert [m.metric_id for m in grouped["i1"]] == ["mt1"]
        assert [m.metric_id for m in grouped["i2"]] == ["mt3"]
        assert grouped["ghost"] == []

    def test_batch_matches_single_lookups(self, metadata_store):
        for index in range(10):
            metadata_store.insert_metric(
                metric(f"mt{index}", iid=f"i{index % 3}", value=index / 10)
            )
        grouped = metadata_store.metrics_for_instances([f"i{n}" for n in range(3)])
        for iid, records in grouped.items():
            assert {m.metric_id for m in records} == {
                m.metric_id for m in metadata_store.metrics_of_instance(iid)
            }


class TestBulkMetricInsert:
    def test_insert_metrics_batch(self, metadata_store):
        batch = [metric(f"mt{n}", value=n / 10) for n in range(5)]
        metadata_store.insert_metrics(batch)
        assert len(metadata_store.metrics_of_instance("i1")) == 5

    def test_insert_metrics_empty_batch_noop(self, metadata_store):
        metadata_store.insert_metrics([])
        assert metadata_store.counts()["metrics"] == 0

    def test_duplicate_in_batch_rolls_back_everything(self, metadata_store):
        metadata_store.insert_metric(metric("mt1"))
        batch = [metric("mt2"), metric("mt1"), metric("mt3")]
        with pytest.raises(DuplicateError):
            metadata_store.insert_metrics(batch)
        # atomicity: neither mt2 nor mt3 landed
        ids = {m.metric_id for m in metadata_store.metrics_of_instance("i1")}
        assert ids == {"mt1"}

    def test_duplicate_within_batch_rejected(self, metadata_store):
        with pytest.raises(DuplicateError):
            metadata_store.insert_metrics([metric("mt1"), metric("mt1")])
        assert metadata_store.counts()["metrics"] == 0


class TestOrderingParity:
    """Both backends must return candidates in the same order (ABL-BACKEND)."""

    def test_indexed_lookup_ordered_by_created_time(self, metadata_store):
        metadata_store.insert_instance(instance("late", created_time=9.0))
        metadata_store.insert_instance(instance("early", created_time=1.0))
        hits = metadata_store.find_instances_by_field("city", "sf")
        assert [i.instance_id for i in hits] == ["early", "late"]

    def test_unindexed_scan_ordered_by_created_time(self, metadata_store):
        metadata_store.insert_instance(
            instance("late", created_time=9.0, metadata={"custom": "yes"})
        )
        metadata_store.insert_instance(
            instance("early", created_time=1.0, metadata={"custom": "yes"})
        )
        hits = metadata_store.find_instances_by_field("custom", "yes")
        assert [i.instance_id for i in hits] == ["early", "late"]

    def test_instances_of_model_ordered_by_created_time(self, metadata_store):
        metadata_store.insert_instance(instance("late", created_time=9.0))
        metadata_store.insert_instance(instance("early", created_time=1.0))
        assert [
            i.instance_id for i in metadata_store.instances_of_model("m1")
        ] == ["early", "late"]
