"""Tests for the relational metadata stores (memory + SQLite parity)."""

import pytest

from repro.core.records import MetricRecord, Model, ModelInstance
from repro.errors import DuplicateError, MetadataStoreError, NotFoundError


def model(mid="m1", **overrides):
    defaults = dict(model_id=mid, project="p", base_version_id="demand")
    defaults.update(overrides)
    return Model(**defaults)


def instance(iid="i1", mid="m1", **overrides):
    defaults = dict(
        instance_id=iid,
        model_id=mid,
        base_version_id="demand",
        created_time=1.0,
        metadata={"model_name": "rf", "city": "sf"},
    )
    defaults.update(overrides)
    return ModelInstance(**defaults)


def metric(mtid="mt1", iid="i1", **overrides):
    defaults = dict(metric_id=mtid, instance_id=iid, name="mape", value=0.1)
    defaults.update(overrides)
    return MetricRecord(**defaults)


class TestModels:
    def test_insert_get_round_trip(self, metadata_store):
        record = model(metadata={"k": "v"}, upstream_model_ids=("u",))
        metadata_store.insert_model(record)
        assert metadata_store.get_model("m1") == record

    def test_duplicate_insert_rejected(self, metadata_store):
        metadata_store.insert_model(model())
        with pytest.raises(DuplicateError):
            metadata_store.insert_model(model())

    def test_get_missing_raises(self, metadata_store):
        with pytest.raises(NotFoundError):
            metadata_store.get_model("ghost")

    def test_replace_allows_bookkeeping_fields(self, metadata_store):
        metadata_store.insert_model(model())
        metadata_store.replace_model(model(deprecated=True))
        assert metadata_store.get_model("m1").deprecated

    def test_replace_rejects_immutable_field_change(self, metadata_store):
        metadata_store.insert_model(model(owner="alice"))
        with pytest.raises(MetadataStoreError):
            metadata_store.replace_model(model(owner="mallory"))

    def test_iter_models(self, metadata_store):
        metadata_store.insert_model(model("m1"))
        metadata_store.insert_model(model("m2", base_version_id="supply"))
        assert {m.model_id for m in metadata_store.iter_models()} == {"m1", "m2"}


class TestInstances:
    def test_insert_get_round_trip(self, metadata_store):
        record = instance(blob_location="mem://b/1", instance_version="1.1")
        metadata_store.insert_instance(record)
        assert metadata_store.get_instance("i1") == record

    def test_duplicate_rejected(self, metadata_store):
        metadata_store.insert_instance(instance())
        with pytest.raises(DuplicateError):
            metadata_store.insert_instance(instance())

    def test_instances_of_model_sorted_by_time(self, metadata_store):
        metadata_store.insert_instance(instance("late", created_time=9.0))
        metadata_store.insert_instance(instance("early", created_time=1.0))
        ids = [i.instance_id for i in metadata_store.instances_of_model("m1")]
        # memory store preserves insert order; sqlite sorts by created_time.
        # Both must contain exactly these two instances.
        assert set(ids) == {"early", "late"}

    def test_instances_of_base_version(self, metadata_store):
        metadata_store.insert_instance(instance("i1"))
        metadata_store.insert_instance(
            instance("i2", base_version_id="supply")
        )
        hits = metadata_store.instances_of_base_version("demand")
        assert [i.instance_id for i in hits] == ["i1"]

    def test_indexed_field_lookup(self, metadata_store):
        metadata_store.insert_instance(instance("i1"))
        metadata_store.insert_instance(
            instance("i2", metadata={"model_name": "linear", "city": "nyc"})
        )
        sf = metadata_store.find_instances_by_field("city", "sf")
        assert [i.instance_id for i in sf] == ["i1"]
        rf = metadata_store.find_instances_by_field("model_name", "rf")
        assert [i.instance_id for i in rf] == ["i1"]

    def test_unindexed_field_lookup_falls_back_to_scan(self, metadata_store):
        metadata_store.insert_instance(
            instance("i1", metadata={"custom": "yes", "model_name": "rf"})
        )
        hits = metadata_store.find_instances_by_field("custom", "yes")
        assert [i.instance_id for i in hits] == ["i1"]

    def test_replace_instance_deprecation_only(self, metadata_store):
        record = instance()
        metadata_store.insert_instance(record)
        metadata_store.replace_instance(record.deprecate())
        assert metadata_store.get_instance("i1").deprecated
        import dataclasses

        with pytest.raises(MetadataStoreError):
            metadata_store.replace_instance(
                dataclasses.replace(record, blob_location="mem://moved")
            )


class TestMetrics:
    def test_insert_and_query(self, metadata_store):
        metadata_store.insert_metric(metric())
        metadata_store.insert_metric(metric("mt2", name="bias", value=0.01))
        records = metadata_store.metrics_of_instance("i1")
        assert {m.name for m in records} == {"mape", "bias"}

    def test_duplicate_metric_rejected(self, metadata_store):
        metadata_store.insert_metric(metric())
        with pytest.raises(DuplicateError):
            metadata_store.insert_metric(metric())

    def test_metrics_of_unknown_instance_empty(self, metadata_store):
        assert metadata_store.metrics_of_instance("ghost") == []

    def test_iter_metrics(self, metadata_store):
        metadata_store.insert_metric(metric("mt1"))
        metadata_store.insert_metric(metric("mt2", iid="i2"))
        assert len(list(metadata_store.iter_metrics())) == 2


class TestCounts:
    def test_counts_per_table(self, metadata_store):
        metadata_store.insert_model(model())
        metadata_store.insert_instance(instance())
        metadata_store.insert_metric(metric())
        assert metadata_store.counts() == {"models": 1, "instances": 1, "metrics": 1}
