"""Tests for champion/challenger shadow deployments."""

import pytest

from repro.core.records import MetricScope
from repro.errors import ValidationError
from repro.monitoring import ShadowDeployment, ShadowState, register_promote_action
from repro.rules.actions import ActionRegistry


@pytest.fixture
def pair(memory_gallery):
    memory_gallery.create_model("p", "demand")
    champion = memory_gallery.upload_model("p", "demand", blob=b"champ")
    challenger = memory_gallery.upload_model("p", "demand", blob=b"chall")
    return champion.instance_id, challenger.instance_id


def make_shadow(gallery, champion, challenger, **kwargs):
    actions = ActionRegistry()
    serving = {"sf": champion}
    register_promote_action(actions, serving)
    shadow = ShadowDeployment(
        gallery, actions, champion, challenger,
        patience=kwargs.pop("patience", 2),
        max_windows=kwargs.pop("max_windows", 6),
        **kwargs,
    )
    return shadow, serving


class TestValidation:
    def test_same_instance_rejected(self, memory_gallery, pair):
        champion, _ = pair
        with pytest.raises(ValidationError):
            ShadowDeployment(memory_gallery, ActionRegistry(), champion, champion)

    def test_deprecated_participant_rejected(self, memory_gallery, pair):
        champion, challenger = pair
        memory_gallery.deprecate_instance(challenger)
        with pytest.raises(ValidationError):
            ShadowDeployment(memory_gallery, ActionRegistry(), champion, challenger)

    def test_bad_patience_rejected(self, memory_gallery, pair):
        champion, challenger = pair
        with pytest.raises(ValidationError):
            ShadowDeployment(
                memory_gallery, ActionRegistry(), champion, challenger,
                patience=5, max_windows=3,
            )


class TestPromotion:
    def test_consecutive_wins_promote(self, memory_gallery, pair):
        champion, challenger = pair
        shadow, serving = make_shadow(memory_gallery, champion, challenger, patience=2)
        shadow.observe_window(champion_value=0.20, challenger_value=0.10)
        assert shadow.state is ShadowState.RUNNING
        result = shadow.observe_window(champion_value=0.20, challenger_value=0.12)
        assert result.state is ShadowState.PROMOTED
        assert serving["sf"] == challenger  # the promote action rewired serving

    def test_loss_resets_streak(self, memory_gallery, pair):
        champion, challenger = pair
        shadow, serving = make_shadow(memory_gallery, champion, challenger, patience=2)
        shadow.observe_window(0.20, 0.10)   # win
        shadow.observe_window(0.20, 0.30)   # loss resets
        shadow.observe_window(0.20, 0.10)   # win again
        assert shadow.state is ShadowState.RUNNING
        assert shadow.consecutive_wins == 1
        assert serving["sf"] == champion

    def test_margin_required_to_win(self, memory_gallery, pair):
        champion, challenger = pair
        shadow, _ = make_shadow(
            memory_gallery, champion, challenger, patience=1, min_margin=0.1
        )
        result = shadow.observe_window(0.20, 0.19)  # better, but inside margin
        assert not result.challenger_wins
        assert shadow.state is ShadowState.RUNNING

    def test_exhaustion_aborts(self, memory_gallery, pair):
        champion, challenger = pair
        shadow, serving = make_shadow(
            memory_gallery, champion, challenger, patience=3, max_windows=4
        )
        for _ in range(4):
            shadow.observe_window(0.20, 0.50)
        assert shadow.state is ShadowState.ABORTED
        assert serving["sf"] == champion

    def test_observing_after_terminal_state_rejected(self, memory_gallery, pair):
        champion, challenger = pair
        shadow, _ = make_shadow(memory_gallery, champion, challenger, patience=1)
        shadow.observe_window(0.20, 0.10)
        with pytest.raises(ValidationError):
            shadow.observe_window(0.20, 0.10)

    def test_higher_is_better_mode(self, memory_gallery, pair):
        champion, challenger = pair
        shadow, serving = make_shadow(
            memory_gallery, champion, challenger,
            patience=1, higher_is_worse=False, metric="r2",
        )
        result = shadow.observe_window(champion_value=0.80, challenger_value=0.95)
        assert result.state is ShadowState.PROMOTED


class TestMetricsRecording:
    def test_both_sides_recorded_with_scopes(self, memory_gallery, pair):
        champion, challenger = pair
        shadow, _ = make_shadow(memory_gallery, champion, challenger)
        shadow.observe_window(0.20, 0.10)
        champ_history = memory_gallery.metric_history(
            champion, "mape", scope=MetricScope.PRODUCTION
        )
        chall_history = memory_gallery.metric_history(
            challenger, "mape", scope=MetricScope.VALIDATION
        )
        assert len(champ_history) == 1 and champ_history[0].value == 0.20
        assert len(chall_history) == 1 and chall_history[0].value == 0.10
        assert chall_history[0].metadata["shadow_of"] == champion

    def test_history_accumulates(self, memory_gallery, pair):
        champion, challenger = pair
        shadow, _ = make_shadow(memory_gallery, champion, challenger, patience=3)
        for _ in range(3):
            shadow.observe_window(0.20, 0.30)
        assert shadow.windows_observed == 3
        assert len(shadow.history) == 3
