"""Tests for the automated deprecation sweeper (Section 3.7)."""

import pytest

from repro.core.records import MetricScope
from repro.monitoring import DeprecationPolicy, DeprecationSweeper


def setup_lineage(gallery, values):
    """Upload one instance per value and record it as production mape."""
    gallery.create_model("p", "demand")
    instances = []
    for index, value in enumerate(values):
        instance = gallery.upload_model("p", "demand", blob=f"v{index}".encode())
        gallery.insert_metric(
            instance.instance_id, "mape", value, scope=MetricScope.PRODUCTION
        )
        instances.append(instance)
    return instances


def make_sweeper(gallery, patience=2, margin=0.1):
    return DeprecationSweeper(
        gallery, DeprecationPolicy(metric="mape", patience=patience, margin=margin)
    )


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeprecationPolicy(margin=-0.1)
        with pytest.raises(ValueError):
            DeprecationPolicy(patience=0)


class TestSweeping:
    def test_consistent_loser_deprecated_after_patience(self, memory_gallery):
        bad, good, newest = setup_lineage(memory_gallery, [0.5, 0.1, 0.12])
        sweeper = make_sweeper(memory_gallery, patience=2)
        first = sweeper.sweep()
        assert bad.instance_id in first.losing
        assert first.deprecated == ()
        assert sweeper.strikes(bad.instance_id) == 1
        second = sweeper.sweep()
        assert bad.instance_id in second.deprecated
        assert memory_gallery.get_instance(bad.instance_id).deprecated

    def test_recovery_resets_strikes(self, memory_gallery):
        bad, good, newest = setup_lineage(memory_gallery, [0.5, 0.1, 0.12])
        sweeper = make_sweeper(memory_gallery, patience=3)
        sweeper.sweep()
        assert sweeper.strikes(bad.instance_id) == 1
        # the instance improves: fresh production metric within the margin
        memory_gallery.insert_metric(
            bad.instance_id, "mape", 0.1, scope=MetricScope.PRODUCTION
        )
        sweeper.sweep()
        assert sweeper.strikes(bad.instance_id) == 0

    def test_newest_instance_protected(self, memory_gallery):
        # the newest instance is the worst, but never deprecated
        old, mid, newest = setup_lineage(memory_gallery, [0.1, 0.12, 0.9])
        sweeper = make_sweeper(memory_gallery, patience=1)
        outcome = sweeper.sweep()
        assert newest.instance_id not in outcome.deprecated
        assert not memory_gallery.get_instance(newest.instance_id).deprecated

    def test_single_instance_lineage_untouched(self, memory_gallery):
        (only,) = setup_lineage(memory_gallery, [0.9])
        sweeper = make_sweeper(memory_gallery, patience=1)
        outcome = sweeper.sweep()
        assert outcome.evaluated == 0
        assert not memory_gallery.get_instance(only.instance_id).deprecated

    def test_margin_tolerates_near_ties(self, memory_gallery):
        a, b, newest = setup_lineage(memory_gallery, [0.105, 0.1, 0.1])
        sweeper = make_sweeper(memory_gallery, patience=1, margin=0.10)
        outcome = sweeper.sweep()
        assert outcome.deprecated == ()  # 5% worse is inside the 10% margin

    def test_instances_without_metrics_ignored(self, memory_gallery):
        memory_gallery.create_model("p", "demand")
        silent = memory_gallery.upload_model("p", "demand", blob=b"a")
        scored = memory_gallery.upload_model("p", "demand", blob=b"b")
        memory_gallery.insert_metric(
            scored.instance_id, "mape", 0.1, scope=MetricScope.PRODUCTION
        )
        outcome = make_sweeper(memory_gallery).sweep()
        assert outcome.evaluated == 0  # fewer than two scored instances

    def test_deprecated_are_flagged_not_deleted(self, memory_gallery):
        bad, good, newest = setup_lineage(memory_gallery, [0.9, 0.1, 0.11])
        sweeper = make_sweeper(memory_gallery, patience=1)
        outcome = sweeper.sweep()
        assert bad.instance_id in outcome.deprecated
        # still fetchable by id for consumers mid-migration
        assert memory_gallery.load_instance_blob(bad.instance_id) == b"v0"

    def test_deprecated_losers_leave_the_pool(self, memory_gallery):
        bad, good, newest = setup_lineage(memory_gallery, [0.9, 0.1, 0.11])
        sweeper = make_sweeper(memory_gallery, patience=1)
        sweeper.sweep()
        second = sweeper.sweep()
        assert bad.instance_id not in second.losing
