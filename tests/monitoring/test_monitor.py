"""Tests for the health monitor sweeps (drift, skew, completeness)."""

import pytest

from repro.core.health import DriftDetector
from repro.monitoring import HealthMonitor, MonitorConfig


FULL_METADATA = {
    "training_data_path": "x",
    "training_data_version": "v",
    "training_framework": "f",
    "training_code_pointer": "c",
    "hyperparameters": {"a": 1},
    "features": ["lag_1"],
    "random_seed": 1,
}


def make_monitor(gallery, **config_overrides):
    config = MonitorConfig(
        watch_metrics=("mape",),
        detector_factory=lambda: DriftDetector(
            baseline_window=4, recent_window=2, ratio_threshold=1.5, patience=1
        ),
        **config_overrides,
    )
    return HealthMonitor(gallery, config)


def deploy_instance(gallery, metadata=None):
    gallery.create_model("p", "demand")
    return gallery.upload_model(
        "p", "demand", blob=b"m", metadata=metadata or dict(FULL_METADATA)
    )


class TestCompleteness:
    def test_incomplete_metadata_alerts_once(self, memory_gallery):
        instance = deploy_instance(memory_gallery, metadata={"model_name": "rf"})
        monitor = make_monitor(memory_gallery)
        monitor.sweep()
        monitor.sweep()
        assert len(monitor.alerts.of_kind("completeness")) == 1

    def test_complete_metadata_silent(self, memory_gallery):
        deploy_instance(memory_gallery)
        monitor = make_monitor(memory_gallery)
        snapshot = monitor.sweep()[0]
        assert snapshot.reproducible
        assert monitor.alerts.of_kind("completeness") == []

    def test_completeness_alerts_can_be_disabled(self, memory_gallery):
        deploy_instance(memory_gallery, metadata={})
        monitor = make_monitor(memory_gallery, completeness_alerts=False)
        monitor.sweep()
        assert monitor.alerts.of_kind("completeness") == []


class TestDrift:
    def feed(self, gallery, instance_id, values):
        for value in values:
            gallery.insert_metric(instance_id, "mape", value, scope="Production")

    def test_degradation_detected_and_alerted(self, memory_gallery):
        instance = deploy_instance(memory_gallery)
        monitor = make_monitor(memory_gallery)
        self.feed(memory_gallery, instance.instance_id, [0.1] * 5)
        snapshot = monitor.sweep()[0]
        assert snapshot.drifting_metrics == ()
        self.feed(memory_gallery, instance.instance_id, [0.4] * 3)
        snapshot = monitor.sweep()[0]
        assert "mape" in snapshot.drifting_metrics
        assert len(monitor.alerts.of_kind("drift")) == 1

    def test_detector_state_persists_across_sweeps(self, memory_gallery):
        """History consumed incrementally: split feeds detect the same."""
        instance = deploy_instance(memory_gallery)
        monitor = make_monitor(memory_gallery)
        for value in [0.1] * 4 + [0.4] * 2:
            self.feed(memory_gallery, instance.instance_id, [value])
            monitor.sweep()
        assert len(monitor.alerts.of_kind("drift")) == 1

    def test_derived_drift_metric_written(self, memory_gallery):
        instance = deploy_instance(memory_gallery)
        monitor = make_monitor(memory_gallery)
        self.feed(memory_gallery, instance.instance_id, [0.1] * 6)
        monitor.sweep()
        history = memory_gallery.metric_history(
            instance.instance_id, "drift_ratio:mape"
        )
        assert history, "monitor publishes the derived signal to Gallery"

    def test_reset_after_retrain(self, memory_gallery):
        instance = deploy_instance(memory_gallery)
        monitor = make_monitor(memory_gallery)
        self.feed(memory_gallery, instance.instance_id, [0.1] * 4 + [0.5] * 3)
        monitor.sweep()
        assert len(monitor.alerts.of_kind("drift")) == 1
        monitor.reset_instance(instance.instance_id)
        self.feed(memory_gallery, instance.instance_id, [0.1] * 7)
        monitor.sweep()
        # fresh detector over stable tail: may re-baseline on old history,
        # but no new alert fires for stable behaviour
        assert len(monitor.alerts.of_kind("drift")) <= 2

    def test_drift_signal_feeds_rule_engine(self, memory_gallery):
        from repro.core.clock import ManualClock
        from repro.rules import RuleEngine, action_rule

        instance = deploy_instance(memory_gallery)
        engine = RuleEngine(memory_gallery, clock=ManualClock(), bus=memory_gallery.bus)
        engine.register(
            action_rule(
                uuid="retrain-on-drift",
                team="forecasting",
                given="true",
                when='metrics["drift_ratio:mape"] > 1.5',
                actions=["retrain"],
            )
        )
        monitor = make_monitor(memory_gallery)
        self.feed(memory_gallery, instance.instance_id, [0.1] * 5 + [0.5] * 3)
        monitor.sweep()
        engine.drain()
        assert len(engine.actions.sent("retrain")) == 1


class TestSkew:
    def test_offline_online_gap_alerts(self, memory_gallery):
        instance = deploy_instance(memory_gallery)
        memory_gallery.insert_metric(instance.instance_id, "mape", 0.10, scope="Validation")
        memory_gallery.insert_metric(instance.instance_id, "mape", 0.20, scope="Production")
        monitor = make_monitor(memory_gallery)
        snapshot = monitor.sweep()[0]
        assert "mape" in snapshot.skewed_metrics
        assert len(monitor.alerts.of_kind("skew")) == 1

    def test_small_gap_silent(self, memory_gallery):
        instance = deploy_instance(memory_gallery)
        memory_gallery.insert_metric(instance.instance_id, "mape", 0.10, scope="Validation")
        memory_gallery.insert_metric(instance.instance_id, "mape", 0.11, scope="Production")
        monitor = make_monitor(memory_gallery)
        snapshot = monitor.sweep()[0]
        assert snapshot.skewed_metrics == ()

    def test_missing_scope_no_skew_check(self, memory_gallery):
        instance = deploy_instance(memory_gallery)
        memory_gallery.insert_metric(instance.instance_id, "mape", 0.10, scope="Validation")
        monitor = make_monitor(memory_gallery)
        assert monitor.sweep()[0].skewed_metrics == ()


class TestSweepScope:
    def test_deprecated_instances_skipped(self, memory_gallery):
        instance = deploy_instance(memory_gallery)
        memory_gallery.deprecate_instance(instance.instance_id)
        monitor = make_monitor(memory_gallery)
        assert monitor.sweep() == []

    def test_explicit_instance_list(self, memory_gallery):
        instance = deploy_instance(memory_gallery)
        monitor = make_monitor(memory_gallery)
        snapshots = monitor.sweep([instance.instance_id])
        assert [s.instance_id for s in snapshots] == [instance.instance_id]
