"""CLI coverage for fleet administration: ``gallery fleet
status/drain/undrain`` against live TCP replicas, including registry-URL
resolution."""

import json

import pytest

from repro.core.registry import Gallery
from repro.cli import main
from repro.service.batching import BatchConfig
from repro.service.server import GalleryService
from repro.service.tcp import GalleryTcpServer
from repro.store.blob import InMemoryBlobStore
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import InMemoryMetadataStore


def run(capsys, *argv):
    code = main([str(a) for a in argv])
    output = capsys.readouterr().out
    return code, json.loads(output)


@pytest.fixture
def replicas():
    servers = []
    for _ in range(2):
        gallery = Gallery(
            DataAccessLayer(InMemoryMetadataStore(), InMemoryBlobStore())
        )
        servers.append(GalleryTcpServer(GalleryService(gallery)).start())
    yield servers
    for server in servers:
        server.stop()


def address(server):
    return "%s:%d" % server.address


def test_fleet_status_drain_undrain_cycle(capsys, replicas):
    url = "gallery://" + ",".join(address(s) for s in replicas)

    code, status = run(capsys, "fleet", "status", url)
    assert code == 0
    assert status["size"] == 2 and status["serving"] == 2
    assert all(r["status"] == "serving" for r in status["fleet"])

    target = address(replicas[0])
    code, drained = run(capsys, "fleet", "drain", target, "--wait", "5")
    assert code == 0
    assert drained["draining"] is True and drained["drained"] is True
    assert replicas[0].draining and not replicas[1].draining

    code, status = run(capsys, "fleet", "status", url)
    assert status["serving"] == 1
    by_address = {r["address"]: r for r in status["fleet"]}
    assert by_address[target]["status"] == "draining"

    code, back = run(capsys, "fleet", "undrain", target)
    assert code == 0 and back["status"] == "serving"
    assert not replicas[0].draining


def test_fleet_status_via_registry_file(capsys, tmp_path, replicas):
    registry = tmp_path / "fleet.txt"
    registry.write_text(
        "# serving fleet\n" + "\n".join(address(s) for s in replicas) + "\n"
    )
    code, status = run(capsys, "fleet", "status", f"gallery+file://{registry}")
    assert code == 0
    assert status["size"] == 2 and status["serving"] == 2


def test_fleet_status_reports_unreachable_replicas(capsys, replicas):
    dead = "127.0.0.1:1"
    url = "gallery://" + address(replicas[0]) + "," + dead
    code, status = run(capsys, "fleet", "status", url)
    assert code == 0
    by_address = {r["address"]: r for r in status["fleet"]}
    assert by_address[dead]["status"] == "unreachable"
    assert status["serving"] == 1


def test_fleet_status_empty_registry_is_loud(capsys, tmp_path):
    registry = tmp_path / "fleet.txt"
    registry.write_text("# nobody home\n")
    code, result = run(capsys, "fleet", "status", f"gallery+file://{registry}")
    assert code == 1
    assert result["error"] == "FleetRegistryError"


def test_server_stats_reports_batching_counters(capsys, replicas):
    target = address(replicas[0])
    code, stats = run(capsys, "server", "stats", target)
    assert code == 0
    assert stats["fleet"]["status"] == "serving"
    batching = stats["batching"]
    # the replica runs the session-default BatchConfig, whatever that is
    assert batching["config"]["enabled"] == BatchConfig().enabled
    assert set(batching["queue_depth"]) == {"interactive", "bulk"}
    assert "coalesce_ratio" in batching
    assert "batch_size_histogram" in batching
    assert "request_dedup" in stats


def test_gc_with_replica_surfaces_live_counters(capsys, tmp_path, replicas):
    data_dir = tmp_path / "gallery"
    run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
    target = address(replicas[0])
    code, report = run(
        capsys, "--data-dir", data_dir, "gc", "--replica", target
    )
    assert code == 0
    assert report["replica"]["address"] == target
    assert report["replica"]["batching"]["config"]["enabled"] == BatchConfig().enabled
    assert "refusals" in report["replica"]["batching"]
    assert "request_dedup" in report["replica"]
