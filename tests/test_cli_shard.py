"""CLI coverage for the sharded metadata plane: ``gallery shard
init/split/status/verify`` and the gc before/after counters (PR 6)."""

import json

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main([str(a) for a in argv])
    output = capsys.readouterr().out
    return code, json.loads(output)


@pytest.fixture
def data_dir(tmp_path):
    return tmp_path / "gallery"


@pytest.fixture
def blob_file(tmp_path):
    path = tmp_path / "model.bin"
    path.write_bytes(b"serialized-model-bytes")
    return path


def test_init_adopts_then_split_then_verify(capsys, data_dir, blob_file):
    # seed a legacy single-file gallery
    run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
    run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file,
        "--meta", "city=sf")
    assert (data_dir / "gallery.sqlite").exists()

    code, report = run(capsys, "--data-dir", data_dir, "shard", "init", "4")
    assert code == 0
    assert report["num_shards"] == 4
    assert report["adopted"]["instances"] == 1
    # the legacy file is parked, the shard layout is live
    assert not (data_dir / "gallery.sqlite").exists()
    assert (data_dir / "shards" / "shard_map.json").exists()

    # the data remains queryable through the ordinary commands
    code, hits = run(capsys, "--data-dir", data_dir, "query",
                     "baseVersionId:equal:demand")
    assert code == 0 and len(hits) == 1

    code, split = run(capsys, "--data-dir", data_dir, "shard", "split", "0")
    assert code == 0
    assert split["new_shard"] == 4 and split["epoch"] == 1

    code, status = run(capsys, "--data-dir", data_dir, "shard", "status")
    assert code == 0
    assert status["num_shards"] == 5
    assert sum(c["instances"] for c in status["shard_counts"]) == 1

    code, verify = run(capsys, "--data-dir", data_dir, "shard", "verify")
    assert code == 0 and verify["ok"]

    # still queryable after the rebalance
    code, hits = run(capsys, "--data-dir", data_dir, "query",
                     "baseVersionId:equal:demand")
    assert code == 0 and len(hits) == 1


def test_fresh_layout_without_legacy(capsys, data_dir, blob_file):
    code, report = run(capsys, "--data-dir", data_dir, "shard", "init", "2")
    assert code == 0 and report["adopted"] == {}
    run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
    code, instance = run(capsys, "--data-dir", data_dir, "upload", "p",
                         "demand", blob_file)
    assert code == 0
    code, audit = run(capsys, "--data-dir", data_dir, "audit")
    assert code == 0 and audit["consistent"]
    assert audit["summary"]["shards"]["num_shards"] == 2


def test_status_never_plants_a_layout_over_a_legacy_dir(capsys, data_dir,
                                                        blob_file):
    # A read-only status probe against an unsharded data dir must fail
    # loudly instead of creating an empty shards/ layout that would shadow
    # gallery.sqlite on every subsequent open.
    run(capsys, "--data-dir", data_dir, "create-model", "p", "demand")
    run(capsys, "--data-dir", data_dir, "upload", "p", "demand", blob_file)
    code, report = run(capsys, "--data-dir", data_dir, "shard", "status")
    assert code == 1
    assert report["error"] == "MetadataStoreError"
    assert not (data_dir / "shards").exists()
    # the legacy store still serves its data
    code, hits = run(capsys, "--data-dir", data_dir, "query",
                     "baseVersionId:equal:demand")
    assert code == 0 and len(hits) == 1


def test_gc_reports_before_and_after_counts(capsys, data_dir):
    run(capsys, "--data-dir", data_dir, "shard", "init", "2")
    code, report = run(capsys, "--data-dir", data_dir, "gc",
                       "--dedup-max-age", "0", "--dlq-max-age", "0")
    assert code == 0
    assert report["dedup_entries_before"] == 0
    assert report["dedup_entries_after"] == 0
    assert report["dead_letters_before"] == 0
    assert report["dead_letters_after"] == 0
