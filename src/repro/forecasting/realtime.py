"""Real-time forecasting with rule-selected champions (Section 3.7).

The paper's motivating example for model-selection rules:

    "in real-time forecasting, we have a heuristic model which uses the
    mean value of last 5 minutes as the forecasts.  The heuristic model is
    stable and consistent, but may not always produce the best performance.
    We also have complex forecasting models ... which are generally better
    performing but may not perform well when there are unanticipated
    events ...  Therefore, we can combine the benefits of different models
    to achieve the overall best performance by using the model metrics in
    Gallery to make decisions."

This module implements that loop at 5-minute granularity:

* each candidate instance's **rolling window error** is continuously
  written to Gallery as a production metric;
* at every serving interval the serving system queries a model-selection
  rule ("pick the candidate with the best recent error") and serves the
  champion for the next interval;
* :func:`simulate_realtime_serving` replays a series under any policy so
  the rule-driven mix can be compared against each model served alone
  (EXP-C1-CHAMPION).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.records import MetricScope
from repro.core.registry import Gallery
from repro.errors import ValidationError
from repro.forecasting.evaluation import evaluate_forecast
from repro.forecasting.features import FeatureSpec, build_dataset
from repro.forecasting.models.base import ForecastModel
from repro.rules.engine import RuleEngine
from repro.rules.rule import Rule, selection_rule

#: 5-minute slots per day.
SLOTS_PER_DAY = 288


@dataclass(frozen=True, slots=True)
class RealtimeCandidate:
    """One serving candidate: a registered instance plus its local model."""

    instance_id: str
    model: ForecastModel
    feature_spec: FeatureSpec
    label: str = ""


class RollingErrorTracker:
    """Maintains each candidate's rolling mean absolute percentage error
    and publishes it to Gallery as ``rolling_ape`` production metrics."""

    def __init__(self, gallery: Gallery, window: int = 12) -> None:
        if window < 1:
            raise ValidationError("window must be >= 1")
        self._gallery = gallery
        self._window = window
        self._errors: dict[str, deque[float]] = {}

    def record(self, instance_id: str, actual: float, predicted: float) -> float:
        """Record one observation; returns (and publishes) the rolling APE."""
        ape = abs(actual - predicted) / max(abs(actual), 1e-9)
        buffer = self._errors.setdefault(instance_id, deque(maxlen=self._window))
        buffer.append(ape)
        rolling = float(np.mean(buffer))
        self._gallery.insert_metric(
            instance_id,
            "rolling_ape",
            rolling,
            scope=MetricScope.PRODUCTION,
            metadata={"window": self._window},
        )
        return rolling

    def rolling(self, instance_id: str) -> float | None:
        buffer = self._errors.get(instance_id)
        return float(np.mean(buffer)) if buffer else None


def champion_rule(team: str = "forecasting", max_error: float = 1.0) -> Rule:
    """The Listing-1-style rule: best recent rolling error wins."""
    return selection_rule(
        uuid="realtime-champion",
        team=team,
        given="true",
        when=f"metrics.rolling_ape < {max_error}",
        selection="a.metrics.rolling_ape < b.metrics.rolling_ape",
        description="serve the candidate with the lowest rolling window error",
    )


@dataclass(frozen=True, slots=True)
class RealtimeOutcome:
    """Scored replay of one serving policy."""

    policy: str
    metrics: Mapping[str, float]
    served_counts: Mapping[str, int]
    switches: int


def simulate_realtime_serving(
    gallery: Gallery,
    engine: RuleEngine,
    series_values: np.ndarray,
    candidates: Sequence[RealtimeCandidate],
    start_slot: int,
    end_slot: int,
    rolling_window: int = 12,
    reselect_every: int = 6,
    policy: str = "rules",
) -> RealtimeOutcome:
    """Replay 5-minute serving of ``[start_slot, end_slot)``.

    Policies: ``"rules"`` re-selects the champion through the Gallery rule
    engine every *reselect_every* slots; any candidate label serves that
    single candidate statically.  In every policy, **all** candidates score
    every slot (the paper's real-time evaluation system measures every
    model) so the rolling metrics in Gallery stay live.
    """
    if not candidates:
        raise ValidationError("need at least one candidate")
    by_label = {c.label or c.instance_id: c for c in candidates}
    datasets = {
        c.instance_id: build_dataset(series_values, c.feature_spec)
        for c in candidates
    }
    row_index = {
        iid: {slot: i for i, slot in enumerate(ds.hour_index)}
        for iid, ds in datasets.items()
    }
    tracker = RollingErrorTracker(gallery, window=rolling_window)
    rule = champion_rule()

    if policy == "rules":
        current = candidates[0]
    else:
        try:
            current = by_label[policy]
        except KeyError:
            raise ValidationError(f"unknown policy/candidate {policy!r}") from None

    served: dict[str, int] = {}
    switches = 0
    predictions: list[float] = []
    actuals: list[float] = []
    for offset, slot in enumerate(range(start_slot, min(end_slot, len(series_values)))):
        # every candidate scores the slot; the serving one's prediction counts
        slot_predictions: dict[str, float] = {}
        actual = float(series_values[slot])
        for candidate in candidates:
            row = row_index[candidate.instance_id].get(slot)
            if row is None:
                continue
            predicted = float(
                candidate.model.predict(
                    datasets[candidate.instance_id].features[row: row + 1]
                )[0]
            )
            slot_predictions[candidate.instance_id] = predicted
            tracker.record(candidate.instance_id, actual, predicted)
        if current.instance_id not in slot_predictions:
            continue  # inside a feature warm-up window
        predictions.append(slot_predictions[current.instance_id])
        actuals.append(actual)
        label = current.label or current.instance_id
        served[label] = served.get(label, 0) + 1
        if policy == "rules" and offset % reselect_every == reselect_every - 1:
            result = engine.select(rule)
            if result.instance_id is not None:
                chosen = next(
                    (c for c in candidates if c.instance_id == result.instance_id),
                    current,
                )
                if chosen.instance_id != current.instance_id:
                    switches += 1
                current = chosen
    return RealtimeOutcome(
        policy=policy,
        metrics=evaluate_forecast(np.asarray(actuals), np.asarray(predictions)),
        served_counts=served,
        switches=switches,
    )
