"""Synthetic per-city demand workloads (Sections 2 and 4.2).

The paper's Marketplace Forecasting team predicts supply/demand per city;
cities differ in scale, growth stage, seasonality, and event sensitivity,
and real demand contains holidays and unplanned shocks (public-transit
outages) that event-aware models handle better.  Production traces are not
available, so this generator synthesizes hourly demand series with exactly
the structure those experiments need:

* base level + growth trend (cities at different growth stages);
* daily and weekly multiplicative seasonality with per-city phase/strength;
* **scheduled events** (holidays) that scale demand over known windows;
* **unplanned events** (outage spikes) at unannounced times;
* optional **regime drift**: the seasonal pattern slowly morphs, degrading
  models trained on old data (the drift-retraining experiments);
* multiplicative noise.

Everything is seeded and reproducible; a city's series is a pure function
of its :class:`CityProfile` and the global seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

HOURS_PER_DAY = 24
HOURS_PER_WEEK = 24 * 7


@dataclass(frozen=True, slots=True)
class EventWindow:
    """A demand-shifting event: [start, end) hour indexes and a multiplier."""

    start: int
    end: int
    multiplier: float
    name: str = "event"
    scheduled: bool = True

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("event end must be after start")
        if self.multiplier <= 0:
            raise ValueError("event multiplier must be positive")

    def covers(self, hour: int) -> bool:
        return self.start <= hour < self.end


@dataclass(frozen=True, slots=True)
class CityProfile:
    """Static characteristics of one simulated city."""

    name: str
    base_demand: float = 100.0
    growth_per_week: float = 0.01        # compounding weekly growth rate
    daily_strength: float = 0.35         # amplitude of the daily cycle
    weekly_strength: float = 0.20        # amplitude of the weekly cycle
    daily_phase: float = 0.0             # shifts the rush hours
    noise_level: float = 0.05            # multiplicative noise sigma
    drift_per_week: float = 0.0          # regime drift: phase shift per week
    events: tuple[EventWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.base_demand <= 0:
            raise ValueError("base_demand must be positive")
        if self.noise_level < 0:
            raise ValueError("noise_level must be non-negative")
        object.__setattr__(self, "events", tuple(self.events))


@dataclass(frozen=True, slots=True)
class DemandSeries:
    """A generated hourly demand series plus its ground-truth structure."""

    city: str
    values: np.ndarray                   # shape (hours,)
    event_flags: np.ndarray              # 1.0 where any scheduled event covers
    events: tuple[EventWindow, ...]

    def __len__(self) -> int:
        return len(self.values)

    def window(self, start: int, end: int) -> np.ndarray:
        return self.values[start:end]

    def hours_in_events(self, scheduled: bool | None = None) -> list[int]:
        hours: list[int] = []
        for event in self.events:
            if scheduled is not None and event.scheduled is not scheduled:
                continue
            hours.extend(range(event.start, min(event.end, len(self.values))))
        return sorted(set(hours))


def generate_city_demand(
    profile: CityProfile,
    hours: int,
    seed: int = 0,
) -> DemandSeries:
    """Generate *hours* of demand for one city.

    Demand at hour ``t`` is::

        base * growth(t) * daily(t) * weekly(t) * events(t) * noise(t)

    where ``daily`` drifts in phase when ``drift_per_week`` is non-zero —
    models fitted on the original phase gradually mispredict rush hours,
    which is exactly the "statistical properties ... change over time"
    definition of model drift in Section 3.6.
    """
    rng = np.random.default_rng(_stable_seed(profile.name, seed))
    t = np.arange(hours, dtype=np.float64)
    weeks = t / HOURS_PER_WEEK

    growth = np.power(1.0 + profile.growth_per_week, weeks)

    drifted_phase = profile.daily_phase + profile.drift_per_week * weeks
    daily = 1.0 + profile.daily_strength * np.sin(
        2.0 * math.pi * (t / HOURS_PER_DAY) + drifted_phase
    )
    weekly = 1.0 + profile.weekly_strength * np.sin(
        2.0 * math.pi * (t / HOURS_PER_WEEK)
    )

    event_multiplier = np.ones(hours)
    event_flags = np.zeros(hours)
    for event in profile.events:
        start = max(event.start, 0)
        end = min(event.end, hours)
        if start >= end:
            continue
        event_multiplier[start:end] *= event.multiplier
        if event.scheduled:
            event_flags[start:end] = 1.0

    noise = rng.lognormal(mean=0.0, sigma=profile.noise_level, size=hours)

    values = profile.base_demand * growth * daily * weekly * event_multiplier * noise
    values = np.maximum(values, 0.0)
    return DemandSeries(
        city=profile.name,
        values=values,
        event_flags=event_flags,
        events=profile.events,
    )


def _stable_seed(name: str, seed: int) -> int:
    """Mix the city name into the seed without Python's salted hash()."""
    acc = seed & 0xFFFFFFFF
    for ch in name:
        acc = (acc * 1000003 + ord(ch)) & 0xFFFFFFFF
    return acc


# ---------------------------------------------------------------------------
# Fleet construction helpers
# ---------------------------------------------------------------------------

#: City archetypes spanning Uber's "different growth stages" (Section 2).
_ARCHETYPES = (
    # (base_demand, growth, daily_strength, weekly_strength, noise)
    (400.0, 0.002, 0.45, 0.25, 0.04),  # mature megacity
    (150.0, 0.010, 0.35, 0.20, 0.06),  # established city
    (60.0, 0.030, 0.30, 0.15, 0.09),   # growth-stage city
    (20.0, 0.060, 0.25, 0.10, 0.14),   # launch city
)


def build_city_fleet(
    n_cities: int,
    hours: int,
    seed: int = 0,
    holiday_every_weeks: int = 3,
    holiday_multiplier: float = 1.6,
    drift_fraction: float = 0.0,
    drift_per_week: float = 0.25,
) -> list[CityProfile]:
    """Build a heterogeneous fleet of city profiles.

    * every city gets periodic scheduled "holiday" events;
    * the first ``drift_fraction`` of cities receive regime drift (used by
      EXP-RETRAIN to make only a subset of cities degrade).
    """
    rng = np.random.default_rng(seed)
    profiles: list[CityProfile] = []
    n_drifting = int(round(n_cities * drift_fraction))
    for i in range(n_cities):
        base, growth, daily, weekly, noise = _ARCHETYPES[i % len(_ARCHETYPES)]
        scale = float(rng.uniform(0.8, 1.2))
        events = tuple(
            EventWindow(
                start=week * HOURS_PER_WEEK + HOURS_PER_DAY * 5,
                end=week * HOURS_PER_WEEK + HOURS_PER_DAY * 6,
                multiplier=holiday_multiplier,
                name=f"holiday-w{week}",
                scheduled=True,
            )
            for week in range(
                holiday_every_weeks,
                max(1, hours // HOURS_PER_WEEK),
                holiday_every_weeks,
            )
        )
        profiles.append(
            CityProfile(
                name=f"city-{i:03d}",
                base_demand=base * scale,
                growth_per_week=growth,
                daily_strength=daily,
                weekly_strength=weekly,
                daily_phase=float(rng.uniform(0.0, 2.0 * math.pi)),
                noise_level=noise,
                drift_per_week=drift_per_week if i < n_drifting else 0.0,
                events=events,
            )
        )
    return profiles


def add_unplanned_outage(
    profile: CityProfile,
    start: int,
    duration: int = 6,
    multiplier: float = 2.5,
) -> CityProfile:
    """Return a profile copy with an unplanned demand spike added.

    Reproduces Section 4.2's "unplanned events (e.g., public transit
    outages) that cause unexpected spikes in demand" for the health-alert
    experiment.  The spike is *unscheduled*: event-aware models get no flag.
    """
    outage = EventWindow(
        start=start,
        end=start + duration,
        multiplier=multiplier,
        name="transit-outage",
        scheduled=False,
    )
    return CityProfile(
        name=profile.name,
        base_demand=profile.base_demand,
        growth_per_week=profile.growth_per_week,
        daily_strength=profile.daily_strength,
        weekly_strength=profile.weekly_strength,
        daily_phase=profile.daily_phase,
        noise_level=profile.noise_level,
        drift_per_week=profile.drift_per_week,
        events=profile.events + (outage,),
    )
