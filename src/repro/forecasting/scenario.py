"""The paper's headline scenario: fleet-wide rule-driven family switching.

Section 4.2's closing anecdote, run end to end over the production plane:
a fleet of per-city demand forecasters serves base models until a holiday
window opens; one checked-in action rule fires ``switch_family`` per city,
the registry's durable serving assignments re-point every city at its
event-aware family, and all serving replicas — separate processes' worth of
:class:`~repro.service.tcp.GalleryTcpServer` over one sharded store — see
the switch without restart while query traffic keeps flowing.

The harness measures what the paper claims:

* **switch propagation** — wall-clock from the rule's commit (the
  ``SERVING_SWITCHED`` event on the rules replica) to each peer replica
  observing the new assignment through ``servingFor`` over the wire, under
  concurrent ``modelQuery`` load.  Reported as p50/p95;
* **MAPE improvement** — event-hour forecast error of registry-driven
  switching vs. a never-switching baseline (EXP-C1-SWITCH's ">10%" bar);
* **replica agreement** — every replica must resolve the same instance for
  every sampled city after the switch.

``run_scenario`` stamps all of it into a ``BENCH_PR9.json``-shaped dict.
"""

from __future__ import annotations

import json
import statistics
import threading
import time

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro import build_gallery
from repro.core.registry import Gallery
from repro.errors import GalleryError, NotFoundError
from repro.forecasting.features import FeatureSpec
from repro.forecasting.models import RidgeRegression
from repro.forecasting.pipeline import ForecastingPipeline, ModelSpecification
from repro.forecasting.switching import ModelCache, simulate_serving
from repro.forecasting.workload import (
    HOURS_PER_WEEK,
    DemandSeries,
    build_city_fleet,
    generate_city_demand,
)
from repro.rules import (
    RuleEngine,
    RuleRepository,
    action_rule,
    register_switch_family_action,
)
from repro.rules.events import EventKind
from repro.rules.rule import ActionSpec
from repro.service.endpoints import connect
from repro.service.server import GalleryService
from repro.service.tcp import GalleryTcpServer


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Knobs for the fleet-scale switching scenario.

    The defaults are the fast seeded small-fleet mode (``make scenario``);
    ``examples/family_switch_fleet.py`` raises ``cities`` into the hundreds
    for the paper-scale run.
    """

    cities: int = 12
    weeks: int = 8
    train_weeks: int = 6
    holiday_every_weeks: int = 2
    shard_count: int = 4
    replicas: int = 3
    seed: int = 9
    #: cities whose propagation + MAPE are measured (bounded so the poller
    #: and simulation cost stays flat as the fleet grows).
    sample_cities: int = 8
    load_threads: int = 4
    propagation_timeout: float = 30.0
    base_spec_name: str = "ridge_base"
    event_spec_name: str = "ridge_event"

    @property
    def hours(self) -> int:
        return self.weeks * HOURS_PER_WEEK

    @property
    def train_hours(self) -> int:
        return self.train_weeks * HOURS_PER_WEEK


@dataclass
class ScenarioResult:
    """Everything the scenario measured, ready for BENCH_PR9.json."""

    config: ScenarioConfig
    propagation_ms: list[float] = field(default_factory=list)
    propagation_p50_ms: float = 0.0
    propagation_p95_ms: float = 0.0
    replicas_agree: bool = False
    cities_switched: int = 0
    durable_switch_total: int = 0
    queries_during_switch: int = 0
    query_errors: int = 0
    query_qps: float = 0.0
    static_event_mape: float = 0.0
    dynamic_event_mape: float = 0.0
    event_mape_improvement: float = 0.0
    per_city: list[dict[str, Any]] = field(default_factory=list)
    train_seconds: float = 0.0
    scenario_seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": "PR9 fleet-scale family switching (EXP-C1-SWITCH)",
            "harness": "src/repro/forecasting/scenario.py",
            "config": {
                "cities": self.config.cities,
                "weeks": self.config.weeks,
                "train_weeks": self.config.train_weeks,
                "shard_count": self.config.shard_count,
                "replicas": self.config.replicas,
                "seed": self.config.seed,
                "sample_cities": self.config.sample_cities,
                "load_threads": self.config.load_threads,
            },
            "propagation": {
                "samples": len(self.propagation_ms),
                "p50_ms": round(self.propagation_p50_ms, 3),
                "p95_ms": round(self.propagation_p95_ms, 3),
                "replicas_agree": self.replicas_agree,
            },
            "switching": {
                "cities_switched": self.cities_switched,
                "durable_switch_total": self.durable_switch_total,
            },
            "query_load": {
                "queries_during_switch": self.queries_during_switch,
                "errors": self.query_errors,
                "qps": round(self.query_qps, 1),
            },
            "mape": {
                "static_event_mape": round(self.static_event_mape, 4),
                "dynamic_event_mape": round(self.dynamic_event_mape, 4),
                "event_improvement": round(self.event_mape_improvement, 4),
                "per_city": self.per_city,
            },
            "timing": {
                "train_seconds": round(self.train_seconds, 2),
                "scenario_seconds": round(self.scenario_seconds, 2),
            },
        }

    def write(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict(), indent=2) + "\n")


def _percentile(samples: list[float], pct: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(pct / 100.0 * (len(ordered) - 1))))
    return ordered[index]


class _QueryLoad:
    """Concurrent ``modelQuery`` traffic against every replica's wire port."""

    def __init__(self, addresses: list[tuple[str, int]], threads: int) -> None:
        self._addresses = addresses
        self._threads = threads
        self._stop = threading.Event()
        self._workers: list[threading.Thread] = []
        self.queries = 0
        self.errors = 0
        self._lock = threading.Lock()

    def start(self) -> None:
        for index in range(self._threads):
            worker = threading.Thread(target=self._run, args=(index,), daemon=True)
            self._workers.append(worker)
            worker.start()

    def _run(self, index: int) -> None:
        host, port = self._addresses[index % len(self._addresses)]
        client = connect(f"gallery://{host}:{port}")
        queries = errors = 0
        try:
            while not self._stop.is_set():
                try:
                    client.model_query(
                        [
                            {
                                "field": "model_domain",
                                "operator": "equal",
                                "value": "demand",
                            }
                        ]
                    )
                    queries += 1
                except GalleryError:
                    errors += 1
        finally:
            client.close()
            with self._lock:
                self.queries += queries
                self.errors += errors

    def stop(self) -> None:
        self._stop.set()
        for worker in self._workers:
            worker.join(timeout=30)


def _poll_replicas(
    addresses: list[tuple[str, int]],
    expected: Mapping[str, str],
    commit_times: Mapping[str, float],
    timeout: float,
) -> tuple[list[float], bool]:
    """Watch ``servingFor`` on every replica until each scope flips.

    Returns (latency samples in ms, completed) where each sample is the gap
    between the rules replica committing a scope's switch and one replica
    observing the expected family through the wire.
    """
    samples: list[float] = []
    lock = threading.Lock()
    incomplete = threading.Event()

    def watch(host: str, port: int) -> None:
        client = connect(f"gallery://{host}:{port}")
        try:
            pending = dict(expected)
            deadline = time.monotonic() + timeout
            while pending and time.monotonic() < deadline:
                for scope, family in list(pending.items()):
                    try:
                        assignment = client.serving_for(scope)
                    except GalleryError:
                        continue  # not assigned yet on this shard
                    if assignment.get("family") == family:
                        observed = time.monotonic()
                        committed = commit_times.get(scope, observed)
                        with lock:
                            samples.append(max(0.0, (observed - committed) * 1000.0))
                        del pending[scope]
                time.sleep(0.002)
            if pending:
                incomplete.set()
        finally:
            client.close()

    watchers = [
        threading.Thread(target=watch, args=(host, port), daemon=True)
        for host, port in addresses
    ]
    for watcher in watchers:
        watcher.start()
    for watcher in watchers:
        watcher.join(timeout=timeout + 10)
    return samples, not incomplete.is_set()


def run_scenario(
    config: ScenarioConfig,
    data_dir: str | Path,
    out_path: str | Path | None = None,
    verbose: bool = False,
) -> ScenarioResult:
    """Run the fleet-scale switching scenario; optionally stamp the JSON."""

    def say(message: str) -> None:
        if verbose:
            print(message)

    result = ScenarioResult(config=config)
    scenario_start = time.monotonic()

    # -- 1. one sharded store, trained through a local writer ------------------
    data_dir = Path(data_dir)
    writer = build_gallery(
        metadata_backend="sqlite",
        blob_backend="fs",
        data_dir=data_dir,
        shard_count=config.shard_count,
    )
    base_spec = ModelSpecification(
        config.base_spec_name, lambda: RidgeRegression(), FeatureSpec(event_flag=False)
    )
    event_spec = ModelSpecification(
        config.event_spec_name, lambda: RidgeRegression(), FeatureSpec(event_flag=True)
    )
    profiles = build_city_fleet(
        config.cities,
        hours=config.hours,
        seed=config.seed,
        holiday_every_weeks=config.holiday_every_weeks,
    )
    fleet = [
        generate_city_demand(profile, hours=config.hours, seed=config.seed)
        for profile in profiles
    ]
    pipeline = ForecastingPipeline(writer)
    train_start = time.monotonic()
    base_by_city: dict[str, str] = {}
    event_by_city: dict[str, str] = {}
    for series in fleet:
        trained_base = pipeline.train_city(
            series, base_spec, train_hours=config.train_hours
        )
        base_by_city[series.city] = trained_base.instance.instance_id
        # Event-aware candidates register disabled: the enablement gate is
        # flipped over the wire below, the way a reviewer (or CI) would.
        trained_event = pipeline.train_city(
            series, event_spec, train_hours=config.train_hours, enabled=False
        )
        event_by_city[series.city] = trained_event.instance.instance_id
    result.train_seconds = time.monotonic() - train_start
    say(
        f"trained {2 * len(fleet)} instances across {len(fleet)} cities "
        f"in {result.train_seconds:.1f}s ({config.shard_count} shards)"
    )

    # Every city starts on its base model — durable rows in the registry.
    for series in fleet:
        writer.assign_serving(series.city, base_by_city[series.city], reason="launch")

    # -- 2. three serving replicas over the same sharded store ----------------
    replicas = [
        build_gallery(metadata_backend="sqlite", blob_backend="fs", data_dir=data_dir)
        for _ in range(config.replicas)
    ]
    servers = [GalleryTcpServer(GalleryService(replica)) for replica in replicas]
    for server in servers:
        server.start()
    addresses = [server.address for server in servers]
    say(f"{len(servers)} replicas serving at {addresses}")

    try:
        # Flip the enablement gate over the wire (round-robin across replicas).
        gate_client = connect(
            "gallery://" + ",".join(f"{h}:{p}" for h, p in addresses)
        )
        try:
            for instance_id in event_by_city.values():
                gate_client.enable_instance(instance_id)
        finally:
            gate_client.close()
        say(f"enabled {len(event_by_city)} event-aware instances over the wire")

        # -- 3. the rules replica: commit times come off its event bus --------
        rules_gallery = replicas[0]
        engine = RuleEngine(rules_gallery, bus=rules_gallery.bus)
        register_switch_family_action(engine.actions, rules_gallery)
        repo = RuleRepository()
        swap_to_event = action_rule(
            uuid="event-window-open",
            team="forecasting",
            given="handles_events == true",
            when="metrics.mape < 10.0",
            actions=[ActionSpec("switch_family", {"metric": "mape", "reason": "event window open"})],
            description="event window open: serve each city's event-aware family",
        )
        swap_to_base = action_rule(
            uuid="event-window-close",
            team="forecasting",
            given="handles_events == false",
            when="metrics.mape < 10.0",
            actions=[ActionSpec("switch_family", {"metric": "mape", "reason": "event window closed"})],
            description="event window closed: return each city to its base family",
        )
        repo.check_in(
            "forecasting-oncall",
            "forecasting-lead",
            "family switching for scheduled event windows",
            [swap_to_event, swap_to_base],
        )
        engine.sync_from_repo(repo)

        commit_times: dict[str, float] = {}

        def record_commit(event) -> None:
            if event.kind is EventKind.SERVING_SWITCHED:
                commit_times[event.payload.get("scope", "")] = time.monotonic()

        rules_gallery.bus.subscribe(record_commit)

        sample = fleet[: max(1, min(config.sample_cities, len(fleet)))]
        expected_families = {
            series.city: f"{series.city}:{config.event_spec_name}" for series in sample
        }

        # -- 4. event fires under concurrent query load -----------------------
        load = _QueryLoad(addresses, config.load_threads)
        load.start()
        load_started = time.monotonic()

        poll_out: dict[str, Any] = {}
        poller = threading.Thread(
            target=lambda: poll_out.update(
                zip(
                    ("samples", "complete"),
                    _poll_replicas(
                        addresses,
                        expected_families,
                        commit_times,
                        config.propagation_timeout,
                    ),
                )
            ),
            daemon=True,
        )
        poller.start()

        engine.trigger(swap_to_event)
        fired = engine.drain()
        say(f"rule engine fired {len(fired)} switch_family actions")

        poller.join(timeout=config.propagation_timeout + 30)
        load.stop()
        load_seconds = time.monotonic() - load_started

        result.propagation_ms = list(poll_out.get("samples", []))
        result.propagation_p50_ms = _percentile(result.propagation_ms, 50)
        result.propagation_p95_ms = _percentile(result.propagation_ms, 95)
        result.queries_during_switch = load.queries
        result.query_errors = load.errors
        result.query_qps = load.queries / load_seconds if load_seconds > 0 else 0.0
        say(
            f"propagation p50={result.propagation_p50_ms:.1f}ms "
            f"p95={result.propagation_p95_ms:.1f}ms over "
            f"{len(result.propagation_ms)} observations; "
            f"{load.queries} concurrent queries ({result.query_qps:.0f}/s)"
        )

        # -- 5. replica agreement: all replicas resolve the same instance -----
        agree = bool(poll_out.get("complete", False))
        served_event: dict[str, str] = {}
        for series in sample:
            seen: set[str] = set()
            for host, port in addresses:
                client = connect(f"gallery://{host}:{port}")
                try:
                    assignment = client.serving_for(series.city)
                finally:
                    client.close()
                seen.add(str(assignment["instance_id"]))
            if len(seen) != 1:
                agree = False
            served_event[series.city] = next(iter(seen))
        result.replicas_agree = agree
        result.cities_switched = sum(
            1
            for series in fleet
            if writer.serving_for(series.city).family
            == f"{series.city}:{config.event_spec_name}"
        )
        say(
            f"replicas agree={agree}; {result.cities_switched}/{len(fleet)} "
            f"cities now serve their event-aware family"
        )

        # -- 6. window closes: rule returns the fleet to base families --------
        engine.trigger(swap_to_base)
        engine.drain()
        served_base: dict[str, str] = {}
        for series in sample:
            host, port = addresses[-1]
            client = connect(f"gallery://{host}:{port}")
            try:
                served_base[series.city] = str(
                    client.serving_for(series.city)["instance_id"]
                )
            finally:
                client.close()
        result.durable_switch_total = sum(
            assignment.switch_count for assignment in writer.serving_assignments()
        )

        # -- 7. MAPE: registry-driven switching vs never-switching ------------
        cache = ModelCache(writer)
        static_event: list[float] = []
        dynamic_event: list[float] = []
        for series in sample:
            specs = {
                base_by_city[series.city]: base_spec.feature_spec,
                event_by_city[series.city]: event_spec.feature_spec,
                served_event[series.city]: event_spec.feature_spec,
                served_base[series.city]: base_spec.feature_spec,
            }
            static = simulate_serving(
                series,
                lambda h, e, c=series.city: base_by_city[c],
                cache,
                specs,
                config.train_hours,
                len(series.values),
            )
            # The dynamic policy serves exactly what the registry resolved:
            # the rule-switched instance inside the window, the switched-back
            # instance outside it.
            dynamic = simulate_serving(
                series,
                lambda h, e, c=series.city: (
                    served_event[c] if e else served_base[c]
                ),
                cache,
                specs,
                config.train_hours,
                len(series.values),
            )
            if static.event_hours is None or dynamic.event_hours is None:
                continue
            static_event.append(static.event_hours["mape"])
            dynamic_event.append(dynamic.event_hours["mape"])
            result.per_city.append(
                {
                    "city": series.city,
                    "static_event_mape": round(static.event_hours["mape"], 4),
                    "dynamic_event_mape": round(dynamic.event_hours["mape"], 4),
                }
            )
        if static_event:
            result.static_event_mape = statistics.mean(static_event)
            result.dynamic_event_mape = statistics.mean(dynamic_event)
            if result.static_event_mape > 0:
                result.event_mape_improvement = (
                    1.0 - result.dynamic_event_mape / result.static_event_mape
                )
        say(
            f"event-hour MAPE: static={result.static_event_mape:.4f} "
            f"dynamic={result.dynamic_event_mape:.4f} "
            f"improvement={result.event_mape_improvement:.1%}"
        )
    finally:
        for server in servers:
            server.stop()
        for replica in replicas:
            replica.dal.metadata.close()
        writer.dal.metadata.close()

    result.scenario_seconds = time.monotonic() - scenario_start
    if out_path is not None:
        result.write(out_path)
        say(f"stamped {out_path}")
    return result


__all__ = ["ScenarioConfig", "ScenarioResult", "run_scenario"]
