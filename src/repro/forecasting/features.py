"""Feature extraction for forecasting models.

Turns an hourly demand series into a supervised-learning design matrix:
lagged demand, rolling statistics, calendar encodings (hour-of-day and
day-of-week as sin/cos pairs), and — for event-aware models — the scheduled
event flag.  The feature list is recorded into Gallery metadata so instances
stay reproducible (Section 6.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.forecasting.workload import HOURS_PER_DAY, HOURS_PER_WEEK


@dataclass(frozen=True, slots=True)
class FeatureSpec:
    """Which features to build; doubles as the metadata-able description."""

    lags: tuple[int, ...] = (1, 2, 3, 24, 48, 168)
    rolling_windows: tuple[int, ...] = (6, 24)
    calendar: bool = True
    event_flag: bool = False

    def __post_init__(self) -> None:
        if not self.lags:
            raise ValueError("at least one lag is required")
        if min(self.lags) < 1:
            raise ValueError("lags must be >= 1")
        object.__setattr__(self, "lags", tuple(sorted(self.lags)))
        object.__setattr__(self, "rolling_windows", tuple(sorted(self.rolling_windows)))

    @property
    def min_history(self) -> int:
        """Hours of history consumed before the first usable row."""
        deepest = max(self.lags)
        if self.rolling_windows:
            deepest = max(deepest, max(self.rolling_windows))
        return deepest

    @property
    def season_lag_column(self) -> int:
        """Column index of the deepest lag — the seasonal-naive predictor."""
        return len(self.lags) - 1

    def feature_names(self) -> list[str]:
        names = [f"lag_{lag}" for lag in self.lags]
        names += [f"rolling_mean_{w}" for w in self.rolling_windows]
        if self.calendar:
            names += ["hod_sin", "hod_cos", "dow_sin", "dow_cos"]
        if self.event_flag:
            names.append("event_flag")
        return names


@dataclass(frozen=True, slots=True)
class SupervisedDataset:
    """Design matrix + targets aligned to absolute hour indexes."""

    features: np.ndarray      # shape (rows, n_features)
    targets: np.ndarray       # shape (rows,)
    hour_index: np.ndarray    # absolute hour of each row's target
    feature_names: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.targets)

    def split(self, train_fraction: float) -> tuple["SupervisedDataset", "SupervisedDataset"]:
        """Chronological train/validation split (never shuffled)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        cut = int(len(self) * train_fraction)
        return (
            SupervisedDataset(
                self.features[:cut],
                self.targets[:cut],
                self.hour_index[:cut],
                self.feature_names,
            ),
            SupervisedDataset(
                self.features[cut:],
                self.targets[cut:],
                self.hour_index[cut:],
                self.feature_names,
            ),
        )


def build_dataset(
    values: Sequence[float] | np.ndarray,
    spec: FeatureSpec,
    event_flags: Sequence[float] | np.ndarray | None = None,
    start_hour: int = 0,
) -> SupervisedDataset:
    """Build the one-step-ahead supervised dataset for a demand series.

    Row ``i`` predicts ``values[t]`` from information available strictly
    before ``t`` (lags, rolling stats) plus deterministic calendar/event
    features of ``t`` itself — scheduled events are known in advance, so the
    flag at prediction time is legitimate, matching the paper's
    "models that include holiday/event features".
    """
    series = np.asarray(values, dtype=np.float64)
    if event_flags is None:
        flags = np.zeros_like(series)
    else:
        flags = np.asarray(event_flags, dtype=np.float64)
        if flags.shape != series.shape:
            raise ValueError("event_flags must align with values")
    first = spec.min_history
    if len(series) <= first:
        raise ValueError(
            f"series too short: need more than {first} hours, got {len(series)}"
        )
    rows = len(series) - first
    columns: list[np.ndarray] = []
    for lag in spec.lags:
        columns.append(series[first - lag: len(series) - lag])
    for window in spec.rolling_windows:
        kernel = np.ones(window) / window
        means = np.convolve(series, kernel, mode="full")[: len(series)]
        # rolling mean over [t-window, t): shift so row t sees history only
        columns.append(means[first - 1: len(series) - 1])
    if spec.calendar:
        t = np.arange(first, len(series), dtype=np.float64) + start_hour
        columns.append(np.sin(2 * np.pi * t / HOURS_PER_DAY))
        columns.append(np.cos(2 * np.pi * t / HOURS_PER_DAY))
        columns.append(np.sin(2 * np.pi * t / HOURS_PER_WEEK))
        columns.append(np.cos(2 * np.pi * t / HOURS_PER_WEEK))
    if spec.event_flag:
        columns.append(flags[first:])
    features = np.column_stack(columns)
    targets = series[first:]
    hour_index = np.arange(first, len(series)) + start_hour
    assert features.shape == (rows, len(spec.feature_names()))
    return SupervisedDataset(
        features=features,
        targets=targets,
        hour_index=hour_index,
        feature_names=tuple(spec.feature_names()),
    )
