"""Training pipelines wired into Gallery (Section 4.2).

The Marketplace Forecasting workflow: per city, train candidate model
instances, serialize them to blobs, upload them to Gallery with full
reproducibility metadata, record validation metrics, and let rules decide
deployment.  This module implements that loop and the selective-retraining
logic ("we would like to retrain the models periodically if performance
evaluation shows the need", Section 2).

Compute accounting: every ``fit`` is charged ``len(training_rows)`` compute
units so EXP-RETRAIN can compare retrain-all against drift-triggered
retraining in workload-proportional terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.health import DriftDetector
from repro.core.records import MetricScope, ModelInstance
from repro.core.registry import Gallery
from repro.errors import NotFoundError
from repro.forecasting.evaluation import evaluate_forecast
from repro.forecasting.features import FeatureSpec, SupervisedDataset, build_dataset
from repro.forecasting.models.base import ForecastModel, serialize
from repro.forecasting.workload import DemandSeries

ModelFactory = Callable[[], ForecastModel]


@dataclass(frozen=True, slots=True)
class ModelSpecification:
    """One trainable model family + its feature specification."""

    name: str
    factory: ModelFactory
    feature_spec: FeatureSpec = field(default_factory=FeatureSpec)

    def base_version_id(self, quantity: str = "demand") -> str:
        """The Gallery base version id for this problem/model combination."""
        return f"{quantity}_{self.name}"


@dataclass
class TrainingStats:
    """Compute accounting for the retraining experiments."""

    fits: int = 0
    compute_units: int = 0  # sum of training-row counts

    def charge(self, rows: int) -> None:
        self.fits += 1
        self.compute_units += rows


@dataclass(frozen=True, slots=True)
class TrainedInstance:
    """A trained, registered city model."""

    instance: ModelInstance
    city: str
    spec_name: str
    validation_metrics: Mapping[str, float]


class ForecastingPipeline:
    """Train/evaluate/register per-city forecasting instances in Gallery."""

    def __init__(
        self,
        gallery: Gallery,
        project: str = "marketplace-forecasting",
        team: str = "forecasting",
        train_fraction: float = 0.8,
    ) -> None:
        self._gallery = gallery
        self._project = project
        self._team = team
        self._train_fraction = train_fraction
        self.stats = TrainingStats()

    @property
    def gallery(self) -> Gallery:
        return self._gallery

    @property
    def project(self) -> str:
        return self._project

    # -- model registration ------------------------------------------------------

    def ensure_model(self, spec: ModelSpecification, quantity: str = "demand") -> str:
        """Create the Gallery model for *spec* if missing; return its id."""
        base = spec.base_version_id(quantity)
        try:
            model = self._gallery.find_model(self._project, base)
        except NotFoundError:
            model = self._gallery.create_model(
                project=self._project,
                base_version_id=base,
                owner=self._team,
                description=f"{quantity} forecasting with {spec.name}",
                metadata={"team": self._team, "quantity": quantity},
                family=base,
            )
        return model.model_id

    # -- training -------------------------------------------------------------

    def train_city(
        self,
        series: DemandSeries,
        spec: ModelSpecification,
        quantity: str = "demand",
        train_hours: int | None = None,
        record_metrics: bool = True,
        enabled: bool = True,
    ) -> TrainedInstance:
        """Train one (city, model) instance and register it in Gallery.

        The uploaded instance carries the full reproducibility metadata set
        of Section 6.2: feature list, hyperparameters, training-data pointer
        (the city + window), framework tag, and the seed-bearing
        hyperparameters of stochastic models.

        The instance joins the per-city family ``"{city}:{spec}"`` — the
        serving-scope grouping ``switch_family`` selects from.  Training
        pipelines that auto-register pass ``enabled=False`` so a reviewer
        (or rule) must flip the gate before the instance can serve.
        """
        self.ensure_model(spec, quantity)
        values = series.values if train_hours is None else series.values[:train_hours]
        flags = (
            series.event_flags
            if train_hours is None
            else series.event_flags[:train_hours]
        )
        dataset = build_dataset(values, spec.feature_spec, event_flags=flags)
        train, validation = dataset.split(self._train_fraction)
        model = spec.factory()
        model.fit(train.features, train.targets)
        self.stats.charge(len(train))
        predictions = model.predict(validation.features)
        metrics = evaluate_forecast(validation.targets, predictions)
        metadata = {
            "model_name": model.family,
            "model_type": "repro-forecasting",
            "model_domain": quantity,
            "city": series.city,
            "team": self._team,
            "handles_events": spec.feature_spec.event_flag,
            "features": list(spec.feature_spec.feature_names()),
            "hyperparameters": model.hyperparameters(),
            "training_framework": "repro.forecasting",
            "training_code_pointer": f"repro.forecasting.pipeline:{spec.name}",
            "training_data_path": f"synthetic://{series.city}/demand",
            "training_data_version": f"hours-0-{len(values)}",
            "random_seed": model.hyperparameters().get("seed", 0),
        }
        instance = self._gallery.upload_model(
            project=self._project,
            base_version_id=spec.base_version_id(quantity),
            blob=serialize(model),
            metadata=metadata,
            family=f"{series.city}:{spec.name}",
            enabled=enabled,
        )
        if record_metrics:
            self._gallery.insert_metrics(
                instance.instance_id, metrics, scope=MetricScope.VALIDATION
            )
        return TrainedInstance(
            instance=instance,
            city=series.city,
            spec_name=spec.name,
            validation_metrics=metrics,
        )

    def train_fleet(
        self,
        fleet: Sequence[DemandSeries],
        specs: Sequence[ModelSpecification],
        quantity: str = "demand",
        train_hours: int | None = None,
    ) -> dict[tuple[str, str], TrainedInstance]:
        """Train every (city, spec) combination; keys are (city, spec name)."""
        out: dict[tuple[str, str], TrainedInstance] = {}
        for series in fleet:
            for spec in specs:
                trained = self.train_city(
                    series, spec, quantity=quantity, train_hours=train_hours
                )
                out[(series.city, spec.name)] = trained
        return out

    # -- selective retraining (Section 2 / EXP-RETRAIN) --------------------------------


#: Resolves a (training_data_path, training_data_version) pointer back to
#: the training series: values and event flags.  Real deployments back this
#: with the data warehouse; tests back it with the synthetic generator.
DataResolver = Callable[[str, str], tuple[np.ndarray, np.ndarray | None]]


def make_trainer(
    spec: ModelSpecification,
    data_resolver: DataResolver,
    train_fraction: float = 0.8,
):
    """Build a replayable trainer for the reproducibility service.

    The returned callable matches :data:`repro.core.reproduce.Trainer`: it
    re-runs exactly what :meth:`ForecastingPipeline.train_city` did, reading
    the training data through *data_resolver* from the pointers recorded in
    the instance metadata (Section 6.2).
    """

    def _trainer(metadata) -> tuple[bytes, dict[str, float]]:
        values, flags = data_resolver(
            str(metadata["training_data_path"]),
            str(metadata["training_data_version"]),
        )
        dataset = build_dataset(values, spec.feature_spec, event_flags=flags)
        train, validation = dataset.split(train_fraction)
        model = spec.factory()
        model.fit(train.features, train.targets)
        metrics = evaluate_forecast(
            validation.targets, model.predict(validation.features)
        )
        return serialize(model), metrics

    return _trainer


@dataclass
class RetrainingMonitor:
    """Drift-gated retraining over a fleet of deployed city models.

    One :class:`DriftDetector` per city watches its production error stream;
    only cities whose detector fires are retrained ("we do not want to
    retrain models for all the cities if one city performs poorly").
    """

    pipeline: ForecastingPipeline
    detector_factory: Callable[[], DriftDetector] = field(
        default_factory=lambda: (lambda: DriftDetector())
    )
    detectors: dict[str, DriftDetector] = field(default_factory=dict)
    retrained_cities: list[str] = field(default_factory=list)

    def observe(self, city: str, production_error: float) -> bool:
        """Feed one production error reading; True when drift was detected."""
        detector = self.detectors.get(city)
        if detector is None:
            detector = self.detector_factory()
            self.detectors[city] = detector
        return detector.observe(production_error).detected

    def retrain(
        self,
        series: DemandSeries,
        spec: ModelSpecification,
        quantity: str = "demand",
        train_hours: int | None = None,
    ) -> TrainedInstance:
        """Retrain one drifted city and reset its detector."""
        trained = self.pipeline.train_city(
            series, spec, quantity=quantity, train_hours=train_hours
        )
        detector = self.detectors.get(series.city)
        if detector is not None:
            detector.reset()
        self.retrained_cities.append(series.city)
        return trained
