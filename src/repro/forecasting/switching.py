"""Dynamic model switching for events (Section 4.2).

"Via action rules, Gallery is able to inform [the] forecasting serving
system about the performance of models that include holiday/event features
versus those that do not, and subsequently switch to serve the appropriate
models for the duration of the event."

Mechanics reproduced here:

* a :class:`RegistrySwitchboard` is the serving system's configuration —
  which instance each city serves right now — backed by the registry's
  durable serving assignments, so every replica over a shared store
  observes a switch without restart.  The old in-memory
  :class:`Switchboard` survives as a deprecated shim;
* :class:`EventSwitchingController` owns the Gallery selection rules that
  pick the event-aware or base champion per city, and the action rules that
  push switches onto the switchboard as events start and end;
* :func:`simulate_serving` replays a demand series hour by hour under a
  serving policy and scores the served predictions — the harness behind the
  ">10% MAPE improvement" experiment (EXP-C1-SWITCH).
"""

from __future__ import annotations

import warnings

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.registry import Gallery
from repro.errors import NotFoundError
from repro.forecasting.evaluation import evaluate_forecast
from repro.forecasting.features import FeatureSpec, build_dataset
from repro.forecasting.models.base import ForecastModel, deserialize
from repro.forecasting.workload import DemandSeries
from repro.rules.actions import ActionContext, ActionRegistry
from repro.rules.engine import RuleEngine
from repro.rules.rule import Rule, selection_rule


@dataclass
class SwitchRecord:
    """One serving change: which city moved to which instance and when."""

    city: str
    instance_id: str
    hour: int
    reason: str = ""


class RegistrySwitchboard:
    """The serving system's live model-version configuration (registry-backed).

    Each city's "what is serving now" is a durable
    :class:`~repro.core.records.ServingAssignment` row in the Gallery
    registry: a switch made here (or by a rule action, a wire client, or a
    peer replica over the same store) is immediately visible to every
    reader of :meth:`Gallery.serving_for`.  ``history`` keeps this
    process's hour-stamped view of the switches *it* made — the simulation
    replay needs hours, which durable rows do not carry.
    """

    def __init__(self, gallery: Gallery) -> None:
        self._gallery = gallery
        self.history: list[SwitchRecord] = []

    def assign(self, city: str, instance_id: str, hour: int = 0, reason: str = "") -> None:
        try:
            current: str | None = self._gallery.serving_for(city).instance_id
        except NotFoundError:
            current = None
        if current == instance_id:
            return  # no-op switches are not configuration changes
        self._gallery.assign_serving(city, instance_id, reason=reason)
        self.history.append(
            SwitchRecord(city=city, instance_id=instance_id, hour=hour, reason=reason)
        )

    def serving(self, city: str) -> str:
        return self._gallery.serving_for(city).instance_id

    def switch_count(self, city: str | None = None) -> int:
        """Durable switch totals — they include peer replicas' switches."""
        if city is None:
            return sum(
                assignment.switch_count
                for assignment in self._gallery.serving_assignments()
            )
        try:
            return self._gallery.serving_for(city).switch_count
        except NotFoundError:
            return 0


class Switchboard:
    """Deprecated in-memory switchboard (pre-registry serving state).

    Nothing outside this process can see its assignments — no replica, rule
    action, or wire client — which is exactly the gap serving assignments
    closed.  Kept as a shim so old simulation scripts keep running.
    """

    def __init__(self) -> None:
        warnings.warn(
            "Switchboard is deprecated: serving state now lives in the "
            "registry — use RegistrySwitchboard(gallery) or "
            "Gallery.assign_serving/serving_for",
            DeprecationWarning,
            stacklevel=2,
        )
        self._serving: dict[str, str] = {}
        self.history: list[SwitchRecord] = []

    def assign(self, city: str, instance_id: str, hour: int = 0, reason: str = "") -> None:
        current = self._serving.get(city)
        if current == instance_id:
            return  # no-op switches are not configuration changes
        self._serving[city] = instance_id
        self.history.append(
            SwitchRecord(city=city, instance_id=instance_id, hour=hour, reason=reason)
        )

    def serving(self, city: str) -> str:
        try:
            return self._serving[city]
        except KeyError:
            raise NotFoundError(f"no instance is serving city {city!r}") from None

    def switch_count(self, city: str | None = None) -> int:
        if city is None:
            return len(self.history)
        return sum(1 for record in self.history if record.city == city)


#: Anything that can record "city -> instance" switches: the registry-backed
#: board or the deprecated in-memory shim.
AnySwitchboard = RegistrySwitchboard | Switchboard


def register_switch_action(actions: ActionRegistry, switchboard: AnySwitchboard) -> None:
    """Install the ``switch_model`` callback action onto a registry."""

    def _switch(context: ActionContext) -> str:
        city = str(context.params.get("city") or context.document.get("city", ""))
        hour = int(context.params.get("hour", 0))
        switchboard.assign(
            city,
            context.instance_id,
            hour=hour,
            reason=context.params.get("reason", f"rule {context.rule_uuid}"),
        )
        return f"switched {city} -> {context.instance_id}"

    actions.register("switch_model", _switch, replace=True)


class EventSwitchingController:
    """Chooses per-city champions with Gallery selection rules.

    Two selection rules exist per city: one over event-aware instances
    (``handles_events == true``) and one over base instances.  When the
    event calendar says an event window is active the controller queries
    the event rule, otherwise the base rule; every change of champion is
    pushed through the ``switch_model`` action so the switchboard records
    it like a production configuration change.
    """

    def __init__(
        self,
        gallery: Gallery,
        engine: RuleEngine,
        switchboard: AnySwitchboard | None = None,
        team: str = "forecasting",
        quality_gate: str = "metrics.mape < 0.5",
    ) -> None:
        self._gallery = gallery
        self._engine = engine
        # Default to the registry-backed board so controller switches are
        # durable rows every replica (and the wire API) can observe.
        self._switchboard = (
            RegistrySwitchboard(gallery) if switchboard is None else switchboard
        )
        self._team = team
        self._quality_gate = quality_gate
        self._rules: dict[tuple[str, bool], Rule] = {}
        register_switch_action(engine.actions, self._switchboard)

    @property
    def switchboard(self) -> AnySwitchboard:
        return self._switchboard

    def _rule_for(self, city: str, event_aware: bool) -> Rule:
        key = (city, event_aware)
        rule = self._rules.get(key)
        if rule is None:
            flag = "true" if event_aware else "false"
            rule = selection_rule(
                uuid=f"select-{city}-{'event' if event_aware else 'base'}",
                team=self._team,
                given=f'city == "{city}" and handles_events == {flag}',
                when=self._quality_gate,
                selection="a.created_time > b.created_time",
                description=(
                    f"champion for {city} "
                    f"({'event-aware' if event_aware else 'base'} models)"
                ),
            )
            self._rules[key] = rule
        return rule

    def champion(self, city: str, event_active: bool) -> str | None:
        """The instance id the rules pick for *city* right now."""
        result = self._engine.select(self._rule_for(city, event_active))
        if result.instance_id is not None:
            return result.instance_id
        if event_active:
            # No qualified event model: degrade gracefully to the base rule
            # rather than serving nothing.
            return self._engine.select(self._rule_for(city, False)).instance_id
        return None

    def tick(self, city: str, hour: int, event_active: bool) -> str | None:
        """Advance one serving hour; switch the switchboard if needed."""
        instance_id = self.champion(city, event_active)
        if instance_id is None:
            return None
        self._switchboard.assign(
            city,
            instance_id,
            hour=hour,
            reason="event window" if event_active else "steady state",
        )
        return instance_id


# ---------------------------------------------------------------------------
# Serving replay
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ServingOutcome:
    """Scored results of a serving replay."""

    overall: Mapping[str, float]
    event_hours: Mapping[str, float] | None
    non_event_hours: Mapping[str, float] | None
    served_instances: tuple[str, ...]
    switches: int


class ModelCache:
    """Deserialized-model cache keyed by instance id (serving-side)."""

    def __init__(self, gallery: Gallery) -> None:
        self._gallery = gallery
        self._models: dict[str, ForecastModel] = {}

    def get(self, instance_id: str) -> ForecastModel:
        model = self._models.get(instance_id)
        if model is None:
            model = deserialize(self._gallery.load_instance_blob(instance_id))
            self._models[instance_id] = model
        return model


def simulate_serving(
    series: DemandSeries,
    choose_instance: Callable[[int, bool], str],
    model_cache: ModelCache,
    spec_by_instance: Mapping[str, FeatureSpec],
    start_hour: int,
    end_hour: int,
) -> ServingOutcome:
    """Replay serving on ``[start_hour, end_hour)`` of a demand series.

    ``choose_instance(hour, event_active)`` is the serving policy (static
    champion or rule-driven switching).  Each served hour is predicted by
    the chosen instance using *its own* feature specification, so base and
    event-aware models each see the features they were trained on.
    """
    datasets = {
        id(spec): build_dataset(series.values, spec, event_flags=series.event_flags)
        for spec in set(spec_by_instance.values())
    }
    row_index = {
        key: {hour: i for i, hour in enumerate(ds.hour_index)}
        for key, ds in datasets.items()
    }
    predictions: list[float] = []
    actuals: list[float] = []
    event_mask: list[bool] = []
    served: list[str] = []
    switchovers = 0
    previous: str | None = None
    for hour in range(start_hour, min(end_hour, len(series.values))):
        event_active = bool(series.event_flags[hour])
        instance_id = choose_instance(hour, event_active)
        spec = spec_by_instance[instance_id]
        dataset = datasets[id(spec)]
        row = row_index[id(spec)].get(hour)
        if row is None:
            continue  # inside the feature warm-up window
        model = model_cache.get(instance_id)
        predicted = float(model.predict(dataset.features[row: row + 1])[0])
        predictions.append(predicted)
        actuals.append(float(series.values[hour]))
        event_mask.append(event_active)
        served.append(instance_id)
        if previous is not None and instance_id != previous:
            switchovers += 1
        previous = instance_id
    actual_arr = np.asarray(actuals)
    predicted_arr = np.asarray(predictions)
    mask = np.asarray(event_mask, dtype=bool)
    overall = evaluate_forecast(actual_arr, predicted_arr)
    event_metrics = (
        evaluate_forecast(actual_arr[mask], predicted_arr[mask]) if mask.any() else None
    )
    non_event_metrics = (
        evaluate_forecast(actual_arr[~mask], predicted_arr[~mask])
        if (~mask).any()
        else None
    )
    return ServingOutcome(
        overall=overall,
        event_hours=event_metrics,
        non_event_hours=non_event_metrics,
        served_instances=tuple(served),
        switches=switchovers,
    )
