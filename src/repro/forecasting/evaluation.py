"""Forecast evaluation metrics and backtesting (Section 3.3.3).

Implements the metric families the paper names — MAPE (the headline metric
of the model-switching claim), MAE, bias, MSE/RMSE, R² — plus sMAPE, and a
rolling-origin backtest harness used to produce the validation metrics that
deploy rules gate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ValidationError


def _validate(actual: np.ndarray, predicted: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape:
        raise ValidationError(
            f"shape mismatch: actual {actual.shape} vs predicted {predicted.shape}"
        )
    if actual.size == 0:
        raise ValidationError("cannot evaluate empty arrays")
    return actual, predicted


def mae(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean absolute error."""
    a, p = _validate(np.asarray(actual), np.asarray(predicted))
    return float(np.mean(np.abs(a - p)))


def mse(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean squared error."""
    a, p = _validate(np.asarray(actual), np.asarray(predicted))
    return float(np.mean((a - p) ** 2))


def rmse(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Root mean squared error."""
    return float(np.sqrt(mse(actual, predicted)))


def bias(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Mean signed error, normalised by the mean actual.

    Matches the paper's deploy-gate usage (``metrics.bias <= 0.1 and
    metrics.bias >= -0.1``): a dimensionless over/under-forecast fraction.
    """
    a, p = _validate(np.asarray(actual), np.asarray(predicted))
    denominator = float(np.mean(np.abs(a)))
    if denominator == 0.0:
        return 0.0
    return float(np.mean(p - a) / denominator)


def mape(actual: Sequence[float], predicted: Sequence[float], epsilon: float = 1e-9) -> float:
    """Mean absolute percentage error (fraction, not percent)."""
    a, p = _validate(np.asarray(actual), np.asarray(predicted))
    return float(np.mean(np.abs(a - p) / np.maximum(np.abs(a), epsilon)))


def smape(actual: Sequence[float], predicted: Sequence[float], epsilon: float = 1e-9) -> float:
    """Symmetric MAPE (bounded in [0, 2])."""
    a, p = _validate(np.asarray(actual), np.asarray(predicted))
    denom = np.maximum((np.abs(a) + np.abs(p)) / 2.0, epsilon)
    return float(np.mean(np.abs(a - p) / denom))


def r2(actual: Sequence[float], predicted: Sequence[float]) -> float:
    """Coefficient of determination."""
    a, p = _validate(np.asarray(actual), np.asarray(predicted))
    ss_res = float(np.sum((a - p) ** 2))
    ss_tot = float(np.sum((a - a.mean()) ** 2))
    if ss_tot == 0.0:
        return 0.0 if ss_res > 0 else 1.0
    return 1.0 - ss_res / ss_tot


#: The standard metric blob recorded into Gallery for a forecast evaluation.
STANDARD_METRICS: Mapping[str, Callable[[Sequence[float], Sequence[float]], float]] = {
    "mape": mape,
    "smape": smape,
    "mae": mae,
    "rmse": rmse,
    "bias": bias,
    "r2": r2,
}


def evaluate_forecast(
    actual: Sequence[float], predicted: Sequence[float]
) -> dict[str, float]:
    """Compute the full standard metric blob (Section 3.3.3 format)."""
    return {name: fn(actual, predicted) for name, fn in STANDARD_METRICS.items()}


@dataclass(frozen=True, slots=True)
class BacktestResult:
    """Outcome of a rolling-origin backtest."""

    metrics: Mapping[str, float]
    predictions: np.ndarray
    actuals: np.ndarray
    folds: int


def rolling_backtest(
    fit_predict: Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    features: np.ndarray,
    targets: np.ndarray,
    n_folds: int = 4,
    min_train: int | None = None,
) -> BacktestResult:
    """Rolling-origin evaluation: train on [0, k), predict fold [k, k+w).

    *fit_predict* receives (train_features, train_targets, test_features)
    and returns test predictions — models stay black boxes, matching the
    model-neutral principle.
    """
    n = len(targets)
    if n_folds < 1:
        raise ValidationError("n_folds must be >= 1")
    if min_train is None:
        min_train = n // (n_folds + 1)
    if min_train < 1 or min_train >= n:
        raise ValidationError("min_train out of range")
    fold_size = (n - min_train) // n_folds
    if fold_size < 1:
        raise ValidationError("not enough data for the requested folds")
    predictions: list[np.ndarray] = []
    actuals: list[np.ndarray] = []
    for fold in range(n_folds):
        train_end = min_train + fold * fold_size
        test_end = n if fold == n_folds - 1 else train_end + fold_size
        predicted = fit_predict(
            features[:train_end], targets[:train_end], features[train_end:test_end]
        )
        predictions.append(np.asarray(predicted, dtype=np.float64))
        actuals.append(targets[train_end:test_end])
    all_predictions = np.concatenate(predictions)
    all_actuals = np.concatenate(actuals)
    return BacktestResult(
        metrics=evaluate_forecast(all_actuals, all_predictions),
        predictions=all_predictions,
        actuals=all_actuals,
        folds=n_folds,
    )
