"""Linear forecasters: ridge regression on numpy.

The paper's forecasting model classes "evolved through ... linear
regression models" (Section 4.2); :class:`RidgeRegression` is that family,
implemented from scratch with the closed-form normal equations plus an L2
penalty (the penalty keeps per-city fits stable when lag columns are nearly
collinear, which hourly demand lags always are).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.forecasting.models.base import ForecastModel, validate_training_data


class RidgeRegression(ForecastModel):
    """L2-regularised linear regression with feature standardisation.

    Features are standardised to zero mean / unit variance before fitting so
    one ridge strength behaves comparably across cities with demand levels
    from 20 to 400 trips/hour.  The intercept is never penalised.
    """

    family = "linear_regression"

    def __init__(self, l2: float = 1.0) -> None:
        if l2 < 0:
            raise ValidationError("l2 must be non-negative")
        self._l2 = l2
        self._coef: np.ndarray | None = None
        self._intercept = 0.0
        self._mean: np.ndarray | None = None
        self._scale: np.ndarray | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RidgeRegression":
        validate_training_data(features, targets)
        self._mean = features.mean(axis=0)
        scale = features.std(axis=0)
        scale[scale == 0.0] = 1.0  # constant columns contribute nothing
        self._scale = scale
        standardized = (features - self._mean) / self._scale
        y_mean = targets.mean()
        centred_targets = targets - y_mean
        n_features = standardized.shape[1]
        gram = standardized.T @ standardized + self._l2 * np.eye(n_features)
        moment = standardized.T @ centred_targets
        self._coef = np.linalg.solve(gram, moment)
        self._intercept = float(y_mean)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("_coef")
        standardized = (features - self._mean) / self._scale
        return standardized @ self._coef + self._intercept

    def hyperparameters(self) -> dict[str, Any]:
        return {"l2": self._l2}

    @property
    def coefficients(self) -> np.ndarray:
        self._require_fitted("_coef")
        return self._coef.copy()  # type: ignore[union-attr]
