"""Forecast model interface and blob (de)serialization.

Gallery treats model instances as opaque binary blobs (Section 3.3.2); the
forecasting substrate honours that by serializing every model through
:func:`serialize` / :func:`deserialize` before anything touches Gallery.
The serialized form is a pickle of the model object — to Gallery it is
uninterpreted bytes, exactly as SparkML/TF binaries are at Uber.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from typing import Any, Mapping

import numpy as np

from repro.errors import ValidationError


class ForecastModel(ABC):
    """A one-step-ahead demand forecaster over a feature matrix."""

    #: Short family name recorded into Gallery metadata (``model_name``).
    family: str = "forecast"

    @abstractmethod
    def fit(self, features: np.ndarray, targets: np.ndarray) -> "ForecastModel":
        """Fit in place and return self."""

    @abstractmethod
    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict one value per feature row."""

    def hyperparameters(self) -> dict[str, Any]:
        """Hyperparameters for Gallery reproducibility metadata."""
        return {}

    def _require_fitted(self, attribute: str) -> None:
        if getattr(self, attribute, None) is None:
            raise ValidationError(
                f"{type(self).__name__} must be fitted before predicting"
            )


def serialize(model: ForecastModel) -> bytes:
    """Serialize a model to an opaque blob for Gallery."""
    return pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)


def deserialize(blob: bytes) -> ForecastModel:
    """Rebuild a model from a Gallery blob."""
    model = pickle.loads(blob)
    if not isinstance(model, ForecastModel):
        raise ValidationError(
            f"blob did not contain a ForecastModel (got {type(model).__name__})"
        )
    return model


def validate_training_data(features: np.ndarray, targets: np.ndarray) -> None:
    """Common shape/NaN checks shared by every model's fit()."""
    if features.ndim != 2:
        raise ValidationError(f"features must be 2-D, got shape {features.shape}")
    if targets.ndim != 1:
        raise ValidationError(f"targets must be 1-D, got shape {targets.shape}")
    if len(features) != len(targets):
        raise ValidationError(
            f"row mismatch: {len(features)} feature rows, {len(targets)} targets"
        )
    if len(targets) == 0:
        raise ValidationError("cannot fit on an empty dataset")
    if not np.all(np.isfinite(features)) or not np.all(np.isfinite(targets)):
        raise ValidationError("training data contains NaN or infinite values")
