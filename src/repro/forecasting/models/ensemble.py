"""Tree ensembles: random forest and gradient boosting.

"Random Forest" is the model family the paper's own listings register in
Gallery; gradient boosting stands in for the "complex forecasting models
that take in more features" of Section 3.7.  Both are built on the
from-scratch :class:`repro.forecasting.models.tree.RegressionTree`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.forecasting.models.base import ForecastModel, validate_training_data
from repro.forecasting.models.tree import RegressionTree


class RandomForest(ForecastModel):
    """Bagged regression trees with per-tree feature subsampling."""

    family = "random_forest"

    def __init__(
        self,
        n_trees: int = 20,
        max_depth: int = 6,
        min_samples_leaf: int = 4,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ValidationError("n_trees must be >= 1")
        self._n_trees = n_trees
        self._max_depth = max_depth
        self._min_leaf = min_samples_leaf
        self._max_features = max_features
        self._seed = seed
        self._trees: list[RegressionTree] | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RandomForest":
        validate_training_data(features, targets)
        rng = np.random.default_rng(self._seed)
        n_rows, n_features = features.shape
        max_features = self._max_features
        if max_features is None:
            # the standard regression heuristic: about a third of features
            max_features = max(1, n_features // 3)
        trees: list[RegressionTree] = []
        for i in range(self._n_trees):
            sample = rng.integers(0, n_rows, size=n_rows)  # bootstrap
            tree = RegressionTree(
                max_depth=self._max_depth,
                min_samples_leaf=self._min_leaf,
                max_features=min(max_features, n_features),
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(features[sample], targets[sample])
            trees.append(tree)
        self._trees = trees
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("_trees")
        stacked = np.stack([tree.predict(features) for tree in self._trees])
        return stacked.mean(axis=0)

    def hyperparameters(self) -> dict[str, Any]:
        return {
            "n_trees": self._n_trees,
            "max_depth": self._max_depth,
            "min_samples_leaf": self._min_leaf,
            "max_features": self._max_features,
            "seed": self._seed,
        }


class GradientBoosting(ForecastModel):
    """Least-squares gradient boosting over shallow regression trees."""

    family = "gradient_boosting"

    def __init__(
        self,
        n_rounds: int = 40,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 8,
        seed: int = 0,
    ) -> None:
        if n_rounds < 1:
            raise ValidationError("n_rounds must be >= 1")
        if not 0.0 < learning_rate <= 1.0:
            raise ValidationError("learning_rate must be in (0, 1]")
        self._n_rounds = n_rounds
        self._learning_rate = learning_rate
        self._max_depth = max_depth
        self._min_leaf = min_samples_leaf
        self._seed = seed
        self._base: float | None = None
        self._trees: list[RegressionTree] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoosting":
        validate_training_data(features, targets)
        rng = np.random.default_rng(self._seed)
        self._base = float(targets.mean())
        self._trees = []
        current = np.full(len(targets), self._base)
        for _ in range(self._n_rounds):
            residuals = targets - current
            tree = RegressionTree(
                max_depth=self._max_depth,
                min_samples_leaf=self._min_leaf,
                seed=int(rng.integers(0, 2**31 - 1)),
            )
            tree.fit(features, residuals)
            current = current + self._learning_rate * tree.predict(features)
            self._trees.append(tree)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("_base")
        out = np.full(len(features), self._base, dtype=np.float64)
        for tree in self._trees:
            out += self._learning_rate * tree.predict(features)
        return out

    def hyperparameters(self) -> dict[str, Any]:
        return {
            "n_rounds": self._n_rounds,
            "learning_rate": self._learning_rate,
            "max_depth": self._max_depth,
            "min_samples_leaf": self._min_leaf,
            "seed": self._seed,
        }
