"""From-scratch forecasting model families (all serializable to blobs)."""

from repro.forecasting.models.base import (
    ForecastModel,
    deserialize,
    serialize,
    validate_training_data,
)
from repro.forecasting.models.ensemble import GradientBoosting, RandomForest
from repro.forecasting.models.linear import RidgeRegression
from repro.forecasting.models.naive import (
    ExponentialSmoothing,
    MovingAverage,
    SeasonalNaive,
)
from repro.forecasting.models.tree import RegressionTree

__all__ = [
    "ExponentialSmoothing",
    "ForecastModel",
    "GradientBoosting",
    "MovingAverage",
    "RandomForest",
    "RegressionTree",
    "RidgeRegression",
    "SeasonalNaive",
    "deserialize",
    "serialize",
    "validate_training_data",
]
