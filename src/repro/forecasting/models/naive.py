"""Baseline heuristic forecasters.

:class:`MovingAverage` is the paper's "heuristic model which uses the mean
value of [the] last 5 minutes as the forecasts" (Section 3.7) transplanted
to the hourly feature matrix: it predicts the rolling mean of the most
recent observations.  "Stable and consistent, but may not always produce
the best performance" — it anchors the champion-selection experiments.

:class:`SeasonalNaive` predicts the value one season ago (lag-168 by
default), the standard time-series baseline.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.forecasting.models.base import ForecastModel, validate_training_data


class MovingAverage(ForecastModel):
    """Predicts the mean of the last *window* observations.

    Expects the feature matrix built by :mod:`repro.forecasting.features`
    and reads its ``lag_1 .. lag_k`` columns; ``window`` must not exceed the
    number of consecutive unit lags available.
    """

    family = "moving_average"

    def __init__(self, window: int = 3, lag_columns: tuple[int, ...] | None = None) -> None:
        if window < 1:
            raise ValidationError("window must be >= 1")
        self._window = window
        self._lag_columns = lag_columns
        self._fitted = False

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "MovingAverage":
        validate_training_data(features, targets)
        if self._lag_columns is None:
            self._lag_columns = tuple(range(min(self._window, features.shape[1])))
        if len(self._lag_columns) < self._window:
            raise ValidationError(
                f"need {self._window} lag columns, have {len(self._lag_columns)}"
            )
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise ValidationError("MovingAverage must be fitted before predicting")
        columns = list(self._lag_columns[: self._window])
        return features[:, columns].mean(axis=1)

    def hyperparameters(self) -> dict[str, Any]:
        return {"window": self._window}


class SeasonalNaive(ForecastModel):
    """Predicts the value exactly one season ago (a single lag column)."""

    family = "seasonal_naive"

    def __init__(self, season_lag_column: int | None = None) -> None:
        self._column = season_lag_column
        self._fitted = False

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "SeasonalNaive":
        validate_training_data(features, targets)
        if self._column is None:
            # by convention the deepest lag column is the seasonal one
            self._column = features.shape[1] - 1
        if not 0 <= self._column < features.shape[1]:
            raise ValidationError(
                f"season lag column {self._column} out of range "
                f"for {features.shape[1]} features"
            )
        self._fitted = True
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise ValidationError("SeasonalNaive must be fitted before predicting")
        return features[:, self._column].copy()

    def hyperparameters(self) -> dict[str, Any]:
        return {"season_lag_column": self._column}


class ExponentialSmoothing(ForecastModel):
    """Simple exponential smoothing over the unit-lag history columns.

    Forms a geometrically-weighted average of the available consecutive
    lags; with ``alpha`` near 1 it approaches lag-1 persistence, near 0 it
    approaches a flat moving average.
    """

    family = "exponential_smoothing"

    def __init__(self, alpha: float = 0.4, n_lags: int = 3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValidationError("alpha must be in (0, 1]")
        if n_lags < 1:
            raise ValidationError("n_lags must be >= 1")
        self._alpha = alpha
        self._n_lags = n_lags
        self._weights: np.ndarray | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "ExponentialSmoothing":
        validate_training_data(features, targets)
        k = min(self._n_lags, features.shape[1])
        raw = np.array([self._alpha * (1 - self._alpha) ** i for i in range(k)])
        self._weights = raw / raw.sum()
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("_weights")
        k = len(self._weights)  # type: ignore[arg-type]
        return features[:, :k] @ self._weights

    def hyperparameters(self) -> dict[str, Any]:
        return {"alpha": self._alpha, "n_lags": self._n_lags}
