"""CART regression trees, built from scratch on numpy.

The tree is the base learner for the random forest and gradient boosting
ensembles (the paper's "Random Forest" appears by name in Listing 3 and the
example rules).  Split search is vectorised: candidate thresholds are the
quantiles of each feature column, and the variance reduction of every
candidate is evaluated with prefix sums in one pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ValidationError
from repro.forecasting.models.base import ForecastModel, validate_training_data


@dataclass(slots=True)
class _Node:
    """One tree node; leaves carry a prediction, splits carry children."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree(ForecastModel):
    """Binary CART regression tree minimising squared error."""

    family = "regression_tree"

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_split: int = 8,
        min_samples_leaf: int = 4,
        max_candidates: int = 32,
        max_features: int | None = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ValidationError("max_depth must be >= 1")
        if min_samples_leaf < 1 or min_samples_split < 2:
            raise ValidationError("invalid minimum sample constraints")
        self._max_depth = max_depth
        self._min_split = min_samples_split
        self._min_leaf = min_samples_leaf
        self._max_candidates = max_candidates
        self._max_features = max_features
        self._seed = seed
        self._root: _Node | None = None
        self._n_features = 0

    # -- fitting ---------------------------------------------------------------

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        validate_training_data(features, targets)
        self._n_features = features.shape[1]
        rng = np.random.default_rng(self._seed)
        self._root = self._grow(features, targets, depth=0, rng=rng)
        return self

    def _grow(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        node = _Node(prediction=float(targets.mean()))
        if depth >= self._max_depth or len(targets) < self._min_split:
            return node
        split = self._best_split(features, targets, rng)
        if split is None:
            return node
        feature, threshold = split
        mask = features[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(features[mask], targets[mask], depth + 1, rng)
        node.right = self._grow(features[~mask], targets[~mask], depth + 1, rng)
        return node

    def _best_split(
        self,
        features: np.ndarray,
        targets: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[int, float] | None:
        n_rows, n_features = features.shape
        if self._max_features is not None and self._max_features < n_features:
            candidates = rng.choice(n_features, size=self._max_features, replace=False)
        else:
            candidates = np.arange(n_features)
        best_gain = 0.0
        best: tuple[int, float] | None = None
        total_sum = targets.sum()
        total_sq = float((targets ** 2).sum())
        base_sse = total_sq - total_sum ** 2 / n_rows
        for feature in candidates:
            column = features[:, feature]
            order = np.argsort(column, kind="stable")
            sorted_col = column[order]
            sorted_targets = targets[order]
            prefix_sum = np.cumsum(sorted_targets)
            prefix_sq = np.cumsum(sorted_targets ** 2)
            # candidate split positions: after index i (1-based left size)
            if n_rows > self._max_candidates:
                positions = np.unique(
                    np.linspace(
                        self._min_leaf, n_rows - self._min_leaf, self._max_candidates
                    ).astype(int)
                )
            else:
                positions = np.arange(self._min_leaf, n_rows - self._min_leaf + 1)
            positions = positions[
                (positions >= self._min_leaf) & (positions <= n_rows - self._min_leaf)
            ]
            if len(positions) == 0:
                continue
            # skip positions that would split between equal feature values
            valid = sorted_col[positions - 1] < sorted_col[
                np.minimum(positions, n_rows - 1)
            ]
            positions = positions[valid]
            if len(positions) == 0:
                continue
            left_sum = prefix_sum[positions - 1]
            left_sq = prefix_sq[positions - 1]
            left_n = positions.astype(np.float64)
            right_sum = total_sum - left_sum
            right_sq = total_sq - left_sq
            right_n = n_rows - left_n
            sse = (
                left_sq
                - left_sum ** 2 / left_n
                + right_sq
                - right_sum ** 2 / right_n
            )
            gains = base_sse - sse
            best_idx = int(np.argmax(gains))
            if gains[best_idx] > best_gain + 1e-12:
                best_gain = float(gains[best_idx])
                pos = positions[best_idx]
                threshold = float(
                    (sorted_col[pos - 1] + sorted_col[min(pos, n_rows - 1)]) / 2.0
                )
                best = (int(feature), threshold)
        return best

    # -- prediction --------------------------------------------------------------

    def predict(self, features: np.ndarray) -> np.ndarray:
        self._require_fitted("_root")
        if features.ndim != 2 or features.shape[1] != self._n_features:
            raise ValidationError(
                f"expected shape (*, {self._n_features}), got {features.shape}"
            )
        out = np.empty(len(features), dtype=np.float64)
        self._predict_into(self._root, features, np.arange(len(features)), out)
        return out

    def _predict_into(
        self,
        node: _Node,
        features: np.ndarray,
        rows: np.ndarray,
        out: np.ndarray,
    ) -> None:
        if node.is_leaf or len(rows) == 0:
            out[rows] = node.prediction
            return
        mask = features[rows, node.feature] <= node.threshold
        self._predict_into(node.left, features, rows[mask], out)  # type: ignore[arg-type]
        self._predict_into(node.right, features, rows[~mask], out)  # type: ignore[arg-type]

    # -- introspection --------------------------------------------------------------

    def depth(self) -> int:
        self._require_fitted("_root")

        def _depth(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self._root)

    def leaf_count(self) -> int:
        self._require_fitted("_root")

        def _leaves(node: _Node | None) -> int:
            if node is None:
                return 0
            if node.is_leaf:
                return 1
            return _leaves(node.left) + _leaves(node.right)

        return _leaves(self._root)

    def hyperparameters(self) -> dict[str, Any]:
        return {
            "max_depth": self._max_depth,
            "min_samples_split": self._min_split,
            "min_samples_leaf": self._min_leaf,
            "max_candidates": self._max_candidates,
            "max_features": self._max_features,
            "seed": self._seed,
        }
