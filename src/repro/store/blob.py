"""Blob storage for model-instance binaries (Section 3.5).

Gallery treats every model instance as an uninterpreted binary blob and
stores it in a large-object store (S3 or HDFS at Uber); only the *location*
string is kept in the relational metadata store.  This module provides that
contract:

* :class:`BlobStore` — the abstract put/get/exists/delete interface.
* :class:`InMemoryBlobStore` — dict-backed, for tests and benchmarks.
* :class:`FilesystemBlobStore` — the S3/HDFS stand-in: content-addressed
  (SHA-256) files under a sharded directory tree, so identical blobs dedupe
  and locations are tamper-evident.
* :class:`FaultInjectingBlobStore` — a wrapper that injects deterministic
  write/read failures and accounts simulated latency, used by the
  write-blob-first consistency experiment (EXP-STORE) and the cache ablation
  (ABL-CACHE).
"""

from __future__ import annotations

import hashlib
import os
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import BlobCorruptionError, BlobStoreError, NotFoundError


@dataclass
class BlobStoreStats:
    """Operation counters and simulated-latency accounting."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    simulated_latency_s: float = 0.0


class BlobStore(ABC):
    """Abstract blob store: opaque bytes in, location string out."""

    def __init__(self) -> None:
        self.stats = BlobStoreStats()

    @abstractmethod
    def put(self, data: bytes, hint: str = "") -> str:
        """Store *data* and return its location.

        *hint* is a human-readable tag (e.g. the instance id) that backends
        may embed in the location for debuggability; it carries no semantics.
        """

    @abstractmethod
    def get(self, location: str) -> bytes:
        """Fetch the blob at *location*; raises :class:`NotFoundError`."""

    @abstractmethod
    def exists(self, location: str) -> bool:
        """True when a blob is present at *location*."""

    @abstractmethod
    def delete(self, location: str) -> None:
        """Remove the blob at *location* (used only by orphan GC)."""

    @abstractmethod
    def locations(self) -> list[str]:
        """Every stored location (for consistency audits)."""


def content_address(data: bytes) -> str:
    """SHA-256 content address used by the filesystem backend."""
    return hashlib.sha256(data).hexdigest()


class InMemoryBlobStore(BlobStore):
    """Dict-backed blob store for tests and benchmarks."""

    def __init__(self) -> None:
        super().__init__()
        self._blobs: dict[str, bytes] = {}
        self._counter = 0

    def put(self, data: bytes, hint: str = "") -> str:
        if not isinstance(data, bytes):
            raise BlobStoreError(f"blob data must be bytes, got {type(data).__name__}")
        self._counter += 1
        suffix = f"-{hint}" if hint else ""
        location = f"mem://blobs/{self._counter:08d}{suffix}"
        self._blobs[location] = data
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        return location

    def get(self, location: str) -> bytes:
        try:
            data = self._blobs[location]
        except KeyError:
            raise NotFoundError(f"no blob at {location!r}") from None
        self.stats.gets += 1
        self.stats.bytes_read += len(data)
        return data

    def exists(self, location: str) -> bool:
        return location in self._blobs

    def delete(self, location: str) -> None:
        if location not in self._blobs:
            raise NotFoundError(f"no blob at {location!r}")
        del self._blobs[location]
        self.stats.deletes += 1

    def locations(self) -> list[str]:
        return sorted(self._blobs)


class FilesystemBlobStore(BlobStore):
    """Content-addressed filesystem store standing in for S3/HDFS.

    Blobs live at ``root/<aa>/<bb>/<sha256>`` where ``aa``/``bb`` are the
    first two byte pairs of the digest, keeping directories small at scale.
    Identical payloads share one file (write-once semantics make this safe),
    and reads verify the digest so corruption is detected rather than served.
    """

    SCHEME = "fs://"

    def __init__(self, root: str | os.PathLike[str]) -> None:
        super().__init__()
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    def _path_for(self, digest: str) -> Path:
        return self._root / digest[:2] / digest[2:4] / digest

    def put(self, data: bytes, hint: str = "") -> str:
        """Durably store *data* via write-to-temp + fsync + atomic rename.

        A crash or torn write at any point leaves either nothing at the
        final path or the complete, fsync'd payload — readers can never
        observe a half-written blob.  The temp name embeds pid + thread id
        so concurrent writers of the same content cannot collide, and ends
        in ``.tmp`` so :meth:`locations` never reports debris.
        """
        if not isinstance(data, bytes):
            raise BlobStoreError(f"blob data must be bytes, got {type(data).__name__}")
        digest = content_address(data)
        path = self._path_for(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(
                f"{digest}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            try:
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)  # atomic publish
                self._fsync_dir(path.parent)
            except OSError as exc:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
                raise BlobStoreError(f"failed to write blob: {exc}") from exc
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        return f"{self.SCHEME}{digest}"

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Persist the rename itself (directory entry), best-effort."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; rename is still atomic
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _digest_of(self, location: str) -> str:
        if not location.startswith(self.SCHEME):
            raise BlobStoreError(f"not a filesystem blob location: {location!r}")
        return location[len(self.SCHEME):]

    def get(self, location: str) -> bytes:
        digest = self._digest_of(location)
        path = self._path_for(digest)
        if not path.exists():
            raise NotFoundError(f"no blob at {location!r}")
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise BlobStoreError(f"failed to read blob: {exc}") from exc
        if content_address(data) != digest:
            raise BlobCorruptionError(
                f"blob at {location!r} failed its SHA-256 integrity check: "
                "stored bytes no longer match the content address"
            )
        self.stats.gets += 1
        self.stats.bytes_read += len(data)
        return data

    def exists(self, location: str) -> bool:
        try:
            return self._path_for(self._digest_of(location)).exists()
        except BlobStoreError:
            return False

    def delete(self, location: str) -> None:
        digest = self._digest_of(location)
        path = self._path_for(digest)
        if not path.exists():
            raise NotFoundError(f"no blob at {location!r}")
        path.unlink()
        self.stats.deletes += 1

    def locations(self) -> list[str]:
        out = []
        for path in self._root.glob("*/*/*"):
            if path.is_file() and not path.suffix:
                out.append(f"{self.SCHEME}{path.name}")
        return sorted(out)


@dataclass
class FaultPlan:
    """Deterministic failure schedule for a wrapped blob store.

    ``fail_puts`` / ``fail_gets`` hold 1-based operation ordinals that must
    raise; e.g. ``fail_puts={2}`` makes the second put fail.  Latencies are
    accounted (not slept) so experiments stay fast and reproducible.
    """

    fail_puts: set[int] = field(default_factory=set)
    fail_gets: set[int] = field(default_factory=set)
    put_latency_s: float = 0.0
    get_latency_s: float = 0.0


class FaultInjectingBlobStore(BlobStore):
    """Wraps another store with a deterministic fault/latency model."""

    def __init__(self, inner: BlobStore, plan: FaultPlan | None = None) -> None:
        super().__init__()
        self._inner = inner
        self.plan = plan or FaultPlan()
        self._put_ordinal = 0
        self._get_ordinal = 0

    def put(self, data: bytes, hint: str = "") -> str:
        self._put_ordinal += 1
        self.stats.simulated_latency_s += self.plan.put_latency_s
        if self._put_ordinal in self.plan.fail_puts:
            raise BlobStoreError(
                f"injected put failure (ordinal {self._put_ordinal})"
            )
        location = self._inner.put(data, hint)
        self.stats.puts += 1
        self.stats.bytes_written += len(data)
        return location

    def get(self, location: str) -> bytes:
        self._get_ordinal += 1
        self.stats.simulated_latency_s += self.plan.get_latency_s
        if self._get_ordinal in self.plan.fail_gets:
            raise BlobStoreError(
                f"injected get failure (ordinal {self._get_ordinal})"
            )
        data = self._inner.get(location)
        self.stats.gets += 1
        self.stats.bytes_read += len(data)
        return data

    def exists(self, location: str) -> bool:
        return self._inner.exists(location)

    def delete(self, location: str) -> None:
        self._inner.delete(location)
        self.stats.deletes += 1

    def locations(self) -> list[str]:
        return self._inner.locations()
