"""Blob storage for model-instance binaries (Section 3.5).

Gallery treats every model instance as an uninterpreted binary blob and
stores it in a large-object store (S3 or HDFS at Uber); only the *location*
string is kept in the relational metadata store.  This module provides that
contract:

* :class:`BlobStore` — the abstract put/get/exists/delete interface, plus
  the optional zero-copy hooks :meth:`BlobStore.open_region` (an open file
  region the server can hand to ``os.sendfile``) and
  :meth:`BlobStore.get_range` (a digest-carrying sub-range read).
* :class:`InMemoryBlobStore` — dict-backed, for tests and benchmarks.
* :class:`FilesystemBlobStore` — the S3/HDFS stand-in: content-addressed
  (SHA-256) files under a sharded directory tree, so identical blobs dedupe
  and locations are tamper-evident.  Regions served from it are integrity
  checked through a bounded verified-digest cache: the full file is hashed
  on first serve and the (mtime_ns, size) signature is remembered, so the
  fast path skips the per-read hash without ever serving a file that
  changed since verification.
* :class:`FaultInjectingBlobStore` — a wrapper that injects deterministic
  write/read failures and accounts simulated latency, used by the
  write-blob-first consistency experiment (EXP-STORE) and the cache ablation
  (ABL-CACHE).

All stores guard their counters with a lock: the concurrent benchmarks and
the multi-worker servers call ``put``/``get`` from many threads at once.
"""

from __future__ import annotations

import hashlib
import os
import threading
from abc import ABC, abstractmethod
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import (
    BlobCorruptionError,
    BlobStoreError,
    NotFoundError,
    ValidationError,
)

#: Read granularity for incremental hashing / verification.
_HASH_CHUNK = 1 << 20

#: Bound on the (digest -> (mtime_ns, size)) verified cache.
_VERIFIED_CACHE_SIZE = 4096

#: Bound on the ((digest, offset, length) -> sub-range digest) cache.
_RANGE_DIGEST_CACHE_SIZE = 8192


@dataclass
class BlobStoreStats:
    """Operation counters and simulated-latency accounting."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    simulated_latency_s: float = 0.0
    digest_verifications: int = 0


def _clamp_range(size: int, offset: int, length: int | None) -> tuple[int, int]:
    """Validate and clamp a requested (offset, length) against *size*.

    Returns the effective ``(start, count)``.  Requests beyond EOF clamp
    rather than error (``offset == size`` yields an empty range, a length
    past EOF is truncated) so callers can read "up to N bytes from O"
    without knowing the blob size first.
    """
    if not isinstance(offset, int) or isinstance(offset, bool):
        raise ValidationError(f"range offset must be an int, got {type(offset).__name__}")
    if length is not None and (not isinstance(length, int) or isinstance(length, bool)):
        raise ValidationError(f"range length must be an int, got {type(length).__name__}")
    if offset < 0:
        raise ValidationError(f"range offset must be >= 0, got {offset}")
    if length is not None and length < 0:
        raise ValidationError(f"range length must be >= 0, got {length}")
    start = min(offset, size)
    count = size - start if length is None else min(length, size - start)
    return start, count


class BlobRegion:
    """An open, integrity-verified window into a file-backed blob.

    Holds the open file object so the descriptor stays valid for the whole
    serve; ``offset``/``length`` are absolute within the file.  The wire
    layer recognises regions via the ``is_file_region`` marker and either
    hands ``(fileno, offset, length)`` to ``os.sendfile`` or materializes
    the bytes through :meth:`pread` on fallback paths.  Reads are stateless
    (``os.pread``) so a region can be re-read after a partial send without
    seek bookkeeping.
    """

    is_file_region = True

    __slots__ = ("_file", "offset", "length", "blob_size")

    def __init__(self, file, offset: int, length: int, blob_size: int) -> None:
        self._file = file
        self.offset = offset
        self.length = length
        self.blob_size = blob_size

    def __len__(self) -> int:
        return self.length

    def fileno(self) -> int:
        return self._file.fileno()

    def pread(self, rel_offset: int, count: int) -> bytes:
        """Read *count* bytes at *rel_offset* within the region."""
        pieces = []
        pos = self.offset + rel_offset
        remaining = count
        while remaining > 0:
            chunk = os.pread(self._file.fileno(), remaining, pos)
            if not chunk:
                raise BlobStoreError(
                    "blob file truncated mid-read: expected "
                    f"{count} bytes at offset {self.offset + rel_offset}"
                )
            pieces.append(chunk)
            pos += len(chunk)
            remaining -= len(chunk)
        return pieces[0] if len(pieces) == 1 else b"".join(pieces)

    def read(self) -> bytes:
        """Materialize the whole region (fallback/copy paths)."""
        if self.length == 0:
            return b""
        return self.pread(0, self.length)

    def close(self) -> None:
        self._file.close()

    @property
    def closed(self) -> bool:
        return self._file.closed

    def __enter__(self) -> BlobRegion:
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class BlobRange:
    """A sub-range read: payload plus the metadata a client needs to verify.

    ``payload`` is either ``bytes`` or an open :class:`BlobRegion` (the
    zero-copy case — the consumer owns closing it).  ``digest`` is the
    SHA-256 hex digest of exactly the ``length`` payload bytes, letting
    clients verify ranges end-to-end even though a sub-range cannot be
    checked against the whole-blob content address.
    """

    payload: bytes | BlobRegion
    offset: int
    length: int
    blob_size: int
    digest: str


class BlobStore(ABC):
    """Abstract blob store: opaque bytes in, location string out."""

    def __init__(self) -> None:
        self.stats = BlobStoreStats()
        self._stats_lock = threading.Lock()

    @abstractmethod
    def put(self, data: bytes, hint: str = "") -> str:
        """Store *data* and return its location.

        *hint* is a human-readable tag (e.g. the instance id) that backends
        may embed in the location for debuggability; it carries no semantics.
        """

    @abstractmethod
    def get(self, location: str) -> bytes:
        """Fetch the blob at *location*; raises :class:`NotFoundError`."""

    @abstractmethod
    def exists(self, location: str) -> bool:
        """True when a blob is present at *location*."""

    @abstractmethod
    def delete(self, location: str) -> None:
        """Remove the blob at *location* (used only by orphan GC)."""

    @abstractmethod
    def locations(self) -> list[str]:
        """Every stored location (for consistency audits)."""

    def open_region(
        self, location: str, offset: int = 0, length: int | None = None
    ) -> BlobRegion | None:
        """Open a verified file region for zero-copy serving, or ``None``.

        ``None`` means this backend cannot expose a file descriptor (it is
        not file-backed, or chooses not to) and the caller must fall back
        to :meth:`get`.  Backends that return a region guarantee its bytes
        matched the content address when opened.
        """
        return None

    def get_range(self, location: str, offset: int, length: int | None) -> BlobRange:
        """Read a sub-range of the blob with its own SHA-256 digest.

        The base implementation fetches the whole blob via :meth:`get`
        (which performs the backend's integrity check) and slices; file-backed
        stores override this with a region read.
        """
        data = self.get(location)
        return range_of_bytes(data, offset, length)


def content_address(data: bytes) -> str:
    """SHA-256 content address used by the filesystem backend."""
    return hashlib.sha256(data).hexdigest()


def range_of_bytes(data: bytes, offset: int, length: int | None) -> BlobRange:
    """Build a digest-carrying :class:`BlobRange` from in-memory bytes."""
    start, count = _clamp_range(len(data), offset, length)
    chunk = data[start : start + count]
    return BlobRange(
        payload=chunk,
        offset=start,
        length=count,
        blob_size=len(data),
        digest=hashlib.sha256(chunk).hexdigest(),
    )


class InMemoryBlobStore(BlobStore):
    """Dict-backed blob store for tests and benchmarks."""

    def __init__(self) -> None:
        super().__init__()
        self._blobs: dict[str, bytes] = {}
        self._counter = 0

    def put(self, data: bytes, hint: str = "") -> str:
        if not isinstance(data, bytes):
            raise BlobStoreError(f"blob data must be bytes, got {type(data).__name__}")
        suffix = f"-{hint}" if hint else ""
        with self._stats_lock:
            self._counter += 1
            location = f"mem://blobs/{self._counter:08d}{suffix}"
            self._blobs[location] = data
            self.stats.puts += 1
            self.stats.bytes_written += len(data)
        return location

    def get(self, location: str) -> bytes:
        try:
            data = self._blobs[location]
        except KeyError:
            raise NotFoundError(f"no blob at {location!r}") from None
        with self._stats_lock:
            self.stats.gets += 1
            self.stats.bytes_read += len(data)
        return data

    def exists(self, location: str) -> bool:
        return location in self._blobs

    def delete(self, location: str) -> None:
        with self._stats_lock:
            if location not in self._blobs:
                raise NotFoundError(f"no blob at {location!r}")
            del self._blobs[location]
            self.stats.deletes += 1

    def locations(self) -> list[str]:
        return sorted(self._blobs)


class FilesystemBlobStore(BlobStore):
    """Content-addressed filesystem store standing in for S3/HDFS.

    Blobs live at ``root/<aa>/<bb>/<sha256>`` where ``aa``/``bb`` are the
    first two byte pairs of the digest, keeping directories small at scale.
    Identical payloads share one file (write-once semantics make this safe),
    and reads verify the digest so corruption is detected rather than served.

    Region serves (:meth:`open_region`) amortize that verification through
    a bounded cache keyed ``digest -> (mtime_ns, size)``: the file is hashed
    in full the first time it is served (or whenever its stat signature
    changes) and subsequent serves skip straight to ``sendfile``.  A tamper
    that rewrites the file bumps ``mtime_ns`` and forces re-verification;
    an in-place overwrite that forges both mtime and size is outside the
    threat model (matching S3's ETag semantics).
    """

    SCHEME = "fs://"

    def __init__(self, root: str | os.PathLike[str]) -> None:
        super().__init__()
        self._root = Path(root)
        self._root.mkdir(parents=True, exist_ok=True)
        # digest -> (mtime_ns, size) of the file content last verified.
        self._verified: OrderedDict[str, tuple[int, int]] = OrderedDict()
        # (digest, start, count) -> sub-range SHA-256 hex digest.
        self._range_digests: OrderedDict[tuple[str, int, int], str] = OrderedDict()

    def _path_for(self, digest: str) -> Path:
        return self._root / digest[:2] / digest[2:4] / digest

    def put(self, data: bytes, hint: str = "") -> str:
        """Durably store *data* via write-to-temp + fsync + atomic rename.

        A crash or torn write at any point leaves either nothing at the
        final path or the complete, fsync'd payload — readers can never
        observe a half-written blob.  The temp name embeds pid + thread id
        so concurrent writers of the same content cannot collide, and ends
        in ``.tmp`` so :meth:`locations` never reports debris.
        """
        if not isinstance(data, bytes):
            raise BlobStoreError(f"blob data must be bytes, got {type(data).__name__}")
        digest = content_address(data)
        path = self._path_for(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_name(
                f"{digest}.{os.getpid()}.{threading.get_ident()}.tmp"
            )
            try:
                with open(tmp, "wb") as handle:
                    handle.write(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)  # atomic publish
                self._fsync_dir(path.parent)
            except OSError as exc:
                try:
                    tmp.unlink(missing_ok=True)
                except OSError:
                    pass
                raise BlobStoreError(f"failed to write blob: {exc}") from exc
        with self._stats_lock:
            self.stats.puts += 1
            self.stats.bytes_written += len(data)
        return f"{self.SCHEME}{digest}"

    @staticmethod
    def _fsync_dir(directory: Path) -> None:
        """Persist the rename itself (directory entry), best-effort."""
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds; rename is still atomic
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _digest_of(self, location: str) -> str:
        if not location.startswith(self.SCHEME):
            raise BlobStoreError(f"not a filesystem blob location: {location!r}")
        return location[len(self.SCHEME):]

    def _mark_verified(self, digest: str, signature: tuple[int, int]) -> None:
        with self._stats_lock:
            self._verified[digest] = signature
            self._verified.move_to_end(digest)
            while len(self._verified) > _VERIFIED_CACHE_SIZE:
                self._verified.popitem(last=False)

    def _is_verified(self, digest: str, signature: tuple[int, int]) -> bool:
        with self._stats_lock:
            cached = self._verified.get(digest)
            if cached == signature:
                self._verified.move_to_end(digest)
                return True
        return False

    def _verify_fd(self, fd: int, digest: str, location: str) -> None:
        """Incrementally SHA-256 the whole file behind *fd* (stateless reads)."""
        hasher = hashlib.sha256()
        pos = 0
        while True:
            chunk = os.pread(fd, _HASH_CHUNK, pos)
            if not chunk:
                break
            hasher.update(chunk)
            pos += len(chunk)
        with self._stats_lock:
            self.stats.digest_verifications += 1
        if hasher.hexdigest() != digest:
            raise BlobCorruptionError(
                f"blob at {location!r} failed its SHA-256 integrity check: "
                "stored bytes no longer match the content address"
            )

    def get(self, location: str) -> bytes:
        digest = self._digest_of(location)
        path = self._path_for(digest)
        hasher = hashlib.sha256()
        pieces = []
        try:
            with open(path, "rb") as handle:
                stat = os.fstat(handle.fileno())
                while True:
                    chunk = handle.read(_HASH_CHUNK)
                    if not chunk:
                        break
                    hasher.update(chunk)
                    pieces.append(chunk)
        except FileNotFoundError:
            raise NotFoundError(f"no blob at {location!r}") from None
        except OSError as exc:
            raise BlobStoreError(f"failed to read blob: {exc}") from exc
        with self._stats_lock:
            self.stats.digest_verifications += 1
        if hasher.hexdigest() != digest:
            raise BlobCorruptionError(
                f"blob at {location!r} failed its SHA-256 integrity check: "
                "stored bytes no longer match the content address"
            )
        self._mark_verified(digest, (stat.st_mtime_ns, stat.st_size))
        with self._stats_lock:
            self.stats.gets += 1
            self.stats.bytes_read += stat.st_size
        return pieces[0] if len(pieces) == 1 else b"".join(pieces)

    def open_region(
        self, location: str, offset: int = 0, length: int | None = None
    ) -> BlobRegion | None:
        """Open a digest-verified region of the blob for zero-copy serving.

        The requested window is clamped to the file (see
        :func:`_clamp_range`); integrity is enforced via the verified-digest
        cache described in the class docstring.
        """
        digest = self._digest_of(location)
        path = self._path_for(digest)
        try:
            file = open(path, "rb")
        except FileNotFoundError:
            raise NotFoundError(f"no blob at {location!r}") from None
        except OSError as exc:
            raise BlobStoreError(f"failed to open blob: {exc}") from exc
        try:
            stat = os.fstat(file.fileno())
            signature = (stat.st_mtime_ns, stat.st_size)
            if not self._is_verified(digest, signature):
                self._verify_fd(file.fileno(), digest, location)
                self._mark_verified(digest, signature)
            start, count = _clamp_range(stat.st_size, offset, length)
        except BaseException:
            file.close()
            raise
        with self._stats_lock:
            self.stats.gets += 1
            self.stats.bytes_read += count
        return BlobRegion(file, start, count, stat.st_size)

    def get_range(self, location: str, offset: int, length: int | None) -> BlobRange:
        """Zero-copy sub-range read with a cached sub-range digest.

        The region is opened (verified) first; the sub-range digest is then
        served from a bounded cache keyed on ``(digest, start, count)`` —
        safe because the content address pins the bytes — or computed with
        one extra pass on first request.  The caller owns closing the
        returned region.
        """
        digest = self._digest_of(location)
        region = self.open_region(location, offset, length)
        try:
            key = (digest, region.offset, region.length)
            with self._stats_lock:
                sub_digest = self._range_digests.get(key)
                if sub_digest is not None:
                    self._range_digests.move_to_end(key)
            if sub_digest is None:
                hasher = hashlib.sha256()
                pos = 0
                while pos < region.length:
                    chunk = region.pread(pos, min(_HASH_CHUNK, region.length - pos))
                    hasher.update(chunk)
                    pos += len(chunk)
                sub_digest = hasher.hexdigest()
                with self._stats_lock:
                    self._range_digests[key] = sub_digest
                    self._range_digests.move_to_end(key)
                    while len(self._range_digests) > _RANGE_DIGEST_CACHE_SIZE:
                        self._range_digests.popitem(last=False)
        except BaseException:
            region.close()
            raise
        return BlobRange(
            payload=region,
            offset=region.offset,
            length=region.length,
            blob_size=region.blob_size,
            digest=sub_digest,
        )

    def exists(self, location: str) -> bool:
        try:
            return self._path_for(self._digest_of(location)).exists()
        except BlobStoreError:
            return False

    def delete(self, location: str) -> None:
        digest = self._digest_of(location)
        path = self._path_for(digest)
        if not path.exists():
            raise NotFoundError(f"no blob at {location!r}")
        path.unlink()
        with self._stats_lock:
            self._verified.pop(digest, None)
            self.stats.deletes += 1

    def locations(self) -> list[str]:
        out = []
        for path in self._root.glob("*/*/*"):
            if path.is_file() and not path.suffix:
                out.append(f"{self.SCHEME}{path.name}")
        return sorted(out)


@dataclass
class FaultPlan:
    """Deterministic failure schedule for a wrapped blob store.

    ``fail_puts`` / ``fail_gets`` hold 1-based operation ordinals that must
    raise; e.g. ``fail_puts={2}`` makes the second put fail.  Latencies are
    accounted (not slept) so experiments stay fast and reproducible.
    """

    fail_puts: set[int] = field(default_factory=set)
    fail_gets: set[int] = field(default_factory=set)
    put_latency_s: float = 0.0
    get_latency_s: float = 0.0


class FaultInjectingBlobStore(BlobStore):
    """Wraps another store with a deterministic fault/latency model.

    Inherits the base ``open_region`` (always ``None``): faults and latency
    must flow through :meth:`get`, so the zero-copy path is deliberately
    not exposed from behind the injector.
    """

    def __init__(self, inner: BlobStore, plan: FaultPlan | None = None) -> None:
        super().__init__()
        self._inner = inner
        self.plan = plan or FaultPlan()
        self._put_ordinal = 0
        self._get_ordinal = 0

    def put(self, data: bytes, hint: str = "") -> str:
        with self._stats_lock:
            self._put_ordinal += 1
            ordinal = self._put_ordinal
            self.stats.simulated_latency_s += self.plan.put_latency_s
        if ordinal in self.plan.fail_puts:
            raise BlobStoreError(f"injected put failure (ordinal {ordinal})")
        location = self._inner.put(data, hint)
        with self._stats_lock:
            self.stats.puts += 1
            self.stats.bytes_written += len(data)
        return location

    def get(self, location: str) -> bytes:
        with self._stats_lock:
            self._get_ordinal += 1
            ordinal = self._get_ordinal
            self.stats.simulated_latency_s += self.plan.get_latency_s
        if ordinal in self.plan.fail_gets:
            raise BlobStoreError(f"injected get failure (ordinal {ordinal})")
        data = self._inner.get(location)
        with self._stats_lock:
            self.stats.gets += 1
            self.stats.bytes_read += len(data)
        return data

    def exists(self, location: str) -> bool:
        return self._inner.exists(location)

    def delete(self, location: str) -> None:
        self._inner.delete(location)
        with self._stats_lock:
            self.stats.deletes += 1

    def locations(self) -> list[str]:
        return self._inner.locations()
