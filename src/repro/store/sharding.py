"""Sharded metadata plane: hash-partitioned SQLite shards (ROADMAP item 1).

The paper sizes Gallery against Michelangelo-scale inventories — ">1M model
instances" — and a single SQLite file is the throughput and capacity ceiling
of every replica.  This module partitions the metadata plane by **model
coordinate** while keeping the rest of the stack oblivious:

* :class:`ShardMap` — a stable, hash-ranged partitioning of the 32-bit key
  space.  Every shard owns exactly one contiguous range; the map carries an
  **epoch** that is bumped by every topology change and is advertised to
  clients via the ``shardTopology`` service method.  Keys are hashed with
  BLAKE2b (seedless), so placement is identical across processes and
  restarts — Python's builtin ``hash`` is per-process salted and would
  scatter a key differently on every boot.
* :class:`ShardedMetadataStore` — implements the full :class:`MetadataStore`
  surface over N inner stores (one WAL-mode SQLite file per shard, reusing
  the per-thread-connection machinery of :class:`SQLiteMetadataStore`).
  ``DataAccessLayer``, ``Gallery`` and ``GalleryService`` run unchanged.
* :func:`open_sharded_store` / :func:`init_sharded_layout` — open (or adopt
  a legacy single-file database into) an on-disk sharded layout.
* :func:`split_shard` — the offline rebalance tool behind
  ``gallery shard split <n>``: halves one shard's hash range, migrates the
  upper half into a new shard file, verifies, then installs the new map.

Routing discipline (every row type has a *natural key* whose hash picks the
owning shard — no lookup table, no cross-shard transactions):

===============  =====================  =========================================
table            routing key            why
===============  =====================  =========================================
models           ``base_version_id``    co-locates a coordinate's evolution chain
instances        ``base_version_id``    co-locates with the owning model, makes
                                        ``instances_of_base_version`` single-shard
metrics          ``instance_id``        deterministic without consulting metadata
dedup_entries    ``client_id``          a client's exactly-once claims stay on one
                                        file, so the atomic PRIMARY KEY claim race
                                        between replicas is still decided by one
                                        SQLite database lock
dead_letters     ``rule_uuid``          a rule's failure history reads one shard
serving_         ``scope``              a scope's "what is serving" row (and its
assignments                             atomic re-point) lives on one file, so
                                        replicas racing a switch are serialized
                                        by one SQLite database lock
===============  =====================  =========================================

Single-coordinate operations route to exactly one shard.  Operations that
lack a routing key (``get_model``, ``get_instance``, ``iter_*``,
``find_instances_by_field``) **scatter-gather** across shards on a shared
worker pool and merge ordered results; hot identifier→shard hits are
memoised in bounded routing caches so the blob read path
(``get_instance`` per ``load_blob``) usually costs one shard query.

Dead-letter ids are globalised as ``local_id * SHARD_STRIDE + shard`` so
``dead_letter_update`` / ``dead_letters_delete`` can decode the owning
shard from the id alone.  Capacity trims (``dedup_trim`` /
``dead_letters_trim``) **divide** their budget across shards (remainder
to the lowest indices), so the configured cap stays a global ceiling —
a skewed shard may be trimmed below its fair share — while age trims
behave globally by construction.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
from bisect import bisect_right
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.records import (
    MetricRecord,
    Model,
    ModelInstance,
    ServingAssignment,
)
from repro.errors import MetadataStoreError, NotFoundError
from repro.store.metadata_store import (
    MetadataStore,
    SQLiteMetadataStore,
    _unique,
)

#: Size of the hash key space partitioned by a :class:`ShardMap`.
HASH_SPACE = 1 << 32

#: Dead-letter ids are ``local_id * SHARD_STRIDE + shard_index`` so the
#: owning shard is recoverable from the global id; caps the shard count.
SHARD_STRIDE = 1 << 10

#: File name of the persisted shard map inside a sharded data directory.
SHARD_MAP_FILENAME = "shard_map.json"

#: Routing caches are cleared (not evicted) past this size; misses simply
#: fall back to a scatter, so correctness never depends on the cache.
_ROUTE_CACHE_CAP = 1 << 18


def coordinate_hash(key: str) -> int:
    """Stable 32-bit hash of a routing key.

    BLAKE2b is seedless and version-stable, so a coordinate lands on the
    same shard in every process, forever — the property the hypothesis
    suite pins with golden values.
    """
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=4).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True, slots=True)
class ShardRange:
    """Half-open hash range ``[lo, hi)`` owned by ``shard``."""

    lo: int
    hi: int
    shard: int

    def __contains__(self, value: int) -> bool:
        return self.lo <= value < self.hi


class ShardMap:
    """Immutable hash-ranged partitioning of ``[0, HASH_SPACE)``.

    Every shard owns exactly one contiguous range; the ranges are sorted,
    disjoint, and cover the whole space.  ``epoch`` increases with every
    topology change so replicas and clients can detect staleness.
    """

    def __init__(self, ranges: Sequence[ShardRange], epoch: int = 0) -> None:
        ordered = sorted(ranges, key=lambda r: r.lo)
        if not ordered:
            raise MetadataStoreError("shard map needs at least one range")
        if len(ordered) > SHARD_STRIDE:
            raise MetadataStoreError(
                f"shard map exceeds {SHARD_STRIDE} shards"
            )
        if ordered[0].lo != 0 or ordered[-1].hi != HASH_SPACE:
            raise MetadataStoreError("shard ranges must cover the hash space")
        for prev, cur in zip(ordered, ordered[1:]):
            if prev.hi != cur.lo:
                raise MetadataStoreError(
                    f"shard ranges must be contiguous (gap at {prev.hi:#x})"
                )
        shards = sorted(r.shard for r in ordered)
        if shards != list(range(len(ordered))):
            raise MetadataStoreError(
                "every shard index 0..N-1 must own exactly one range"
            )
        self._ranges = tuple(ordered)
        self._los = [r.lo for r in ordered]
        self._by_shard = {r.shard: r for r in ordered}
        self.epoch = int(epoch)

    # -- construction ---------------------------------------------------------

    @classmethod
    def uniform(cls, num_shards: int) -> "ShardMap":
        """Split the hash space into *num_shards* equal ranges."""
        if num_shards < 1:
            raise MetadataStoreError("need at least one shard")
        bounds = [
            (i * HASH_SPACE) // num_shards for i in range(num_shards)
        ] + [HASH_SPACE]
        return cls(
            [
                ShardRange(bounds[i], bounds[i + 1], i)
                for i in range(num_shards)
            ],
            epoch=0,
        )

    def split(self, shard: int) -> "ShardMap":
        """Halve *shard*'s range; the upper half goes to a new shard.

        The new shard's index is ``num_shards`` (appended, never reused), so
        existing shard files keep their names and untouched ranges keep
        their placement — the property the hypothesis suite checks.
        """
        source = self.range_of(shard)
        width = source.hi - source.lo
        if width < 2:
            raise MetadataStoreError(
                f"shard {shard} range is too narrow to split"
            )
        mid = source.lo + width // 2
        ranges = [r for r in self._ranges if r.shard != shard]
        ranges.append(ShardRange(source.lo, mid, shard))
        ranges.append(ShardRange(mid, source.hi, self.num_shards))
        return ShardMap(ranges, epoch=self.epoch + 1)

    # -- routing --------------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._ranges)

    @property
    def ranges(self) -> tuple[ShardRange, ...]:
        return self._ranges

    def range_of(self, shard: int) -> ShardRange:
        try:
            return self._by_shard[shard]
        except KeyError:
            raise MetadataStoreError(f"no shard {shard}") from None

    def shard_for_hash(self, value: int) -> int:
        return self._ranges[bisect_right(self._los, value) - 1].shard

    def shard_for(self, key: str) -> int:
        return self.shard_for_hash(coordinate_hash(key))

    # -- persistence ----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "num_shards": self.num_shards,
            "ranges": [[r.lo, r.hi, r.shard] for r in self._ranges],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ShardMap":
        try:
            ranges = [
                ShardRange(int(lo), int(hi), int(shard))
                for lo, hi, shard in payload["ranges"]
            ]
            epoch = int(payload.get("epoch", 0))
        except (KeyError, TypeError, ValueError) as exc:
            raise MetadataStoreError(f"malformed shard map: {exc}") from exc
        return cls(ranges, epoch=epoch)

    def save(self, path: str) -> None:
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
        os.replace(tmp, path)  # atomic install: readers see old or new map

    @classmethod
    def load(cls, path: str) -> "ShardMap":
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise MetadataStoreError(
                f"cannot load shard map {path!r}: {exc}"
            ) from exc
        return cls.from_dict(payload)


class ShardedMetadataStore(MetadataStore):
    """N metadata stores behind the single-store interface.

    Single-coordinate operations route to the owning shard; keyless lookups
    scatter-gather on a shared worker pool.  See the module docstring for
    the routing table and the budget-division semantics of capacity trims.
    """

    def __init__(
        self,
        shards: Sequence[MetadataStore],
        shard_map: ShardMap,
        *,
        directory: str | None = None,
        max_workers: int | None = None,
    ) -> None:
        if len(shards) != shard_map.num_shards:
            raise MetadataStoreError(
                f"shard map wants {shard_map.num_shards} shards,"
                f" got {len(shards)}"
            )
        self._shards = list(shards)
        self._map = shard_map
        self._directory = directory
        self._max_workers = max_workers or min(len(shards), 8)
        self._executor: ThreadPoolExecutor | None = None
        self._executor_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        self._model_shard: dict[str, int] = {}
        self._instance_shard: dict[str, int] = {}
        self._closed = False

    # -- topology -------------------------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        return self._map

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def directory(self) -> str | None:
        return self._directory

    def shard_counts(self) -> list[dict[str, int]]:
        """Per-shard row counts, in shard order."""
        return self._scatter(lambda shard: dict(shard.counts()))

    def shard_topology(self) -> dict[str, Any]:
        """The payload served by the ``shardTopology`` wire method."""
        topology = self._map.to_dict()
        topology["shard_counts"] = self.shard_counts()
        return topology

    # -- scatter machinery ----------------------------------------------------

    def _pool(self) -> ThreadPoolExecutor:
        with self._executor_lock:
            if self._closed:
                raise MetadataStoreError("sharded metadata store is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix="shard-scatter",
                )
            return self._executor

    def _scatter(self, fn: Callable[[MetadataStore], Any]) -> list[Any]:
        """Run *fn* against every shard; results in shard order."""
        if len(self._shards) == 1:
            return [fn(self._shards[0])]
        return list(self._pool().map(fn, self._shards))

    def _scatter_zip(
        self, fn: Callable[[MetadataStore, Any], Any], args: Sequence[Any]
    ) -> list[Any]:
        """Run ``fn(shard, arg)`` pairing each shard with its own argument."""
        if len(self._shards) == 1:
            return [fn(self._shards[0], args[0])]
        return list(self._pool().map(fn, self._shards, args))

    def _split_budget(self, budget: int) -> list[int]:
        """Divide a global row budget across shards, remainder first.

        Capacity trims use this so the configured cap stays a *global*
        ceiling (each shard keeps at most its slice); a skewed shard may
        be trimmed below its fair share, which is what a hard cap means.
        """
        base, extra = divmod(max(int(budget), 0), len(self._shards))
        return [
            base + (1 if index < extra else 0)
            for index in range(len(self._shards))
        ]

    def _shard_for_key(self, key: str) -> MetadataStore:
        return self._shards[self._map.shard_for(key)]

    def _cache_route(self, cache: dict[str, int], key: str, shard: int) -> None:
        with self._cache_lock:
            if len(cache) >= _ROUTE_CACHE_CAP:
                cache.clear()  # drop and refill; misses only cost a scatter
            cache[key] = shard

    def _cached_shard(
        self, cache: dict[str, int], key: str
    ) -> MetadataStore | None:
        with self._cache_lock:
            index = cache.get(key)
        return None if index is None else self._shards[index]

    @staticmethod
    def _instance_sort_key(instance: ModelInstance) -> tuple[float, str]:
        return (instance.created_time, instance.instance_id)

    # -- models ---------------------------------------------------------------

    def insert_model(self, model: Model) -> None:
        shard = self._map.shard_for(model.base_version_id)
        self._shards[shard].insert_model(model)
        self._cache_route(self._model_shard, model.model_id, shard)

    def get_model(self, model_id: str) -> Model:
        cached = self._cached_shard(self._model_shard, model_id)
        if cached is not None:
            return cached.get_model(model_id)

        def probe(shard: MetadataStore) -> Model | None:
            try:
                return shard.get_model(model_id)
            except NotFoundError:
                return None

        for index, model in enumerate(self._scatter(probe)):
            if model is not None:
                self._cache_route(self._model_shard, model_id, index)
                return model
        raise NotFoundError(f"no model {model_id!r}")

    def get_models(self, model_ids: Iterable[str]) -> dict[str, Model]:
        requested = _unique(model_ids)
        if not requested:
            return {}
        found: dict[str, Model] = {}
        for index, part in enumerate(
            self._scatter(lambda shard: shard.get_models(requested))
        ):
            for model_id, model in part.items():
                found[model_id] = model
                self._cache_route(self._model_shard, model_id, index)
        return {mid: found[mid] for mid in requested if mid in found}

    def replace_model(self, model: Model) -> None:
        # The record carries its own coordinate, so replacement routes
        # deterministically — no cache, no scatter.
        self._shard_for_key(model.base_version_id).replace_model(model)

    def iter_models(self) -> Iterator[Model]:
        for part in self._scatter(lambda shard: list(shard.iter_models())):
            yield from part

    # -- instances ------------------------------------------------------------

    def insert_instance(self, instance: ModelInstance) -> None:
        shard = self._map.shard_for(instance.base_version_id)
        self._shards[shard].insert_instance(instance)
        self._cache_route(self._instance_shard, instance.instance_id, shard)

    def insert_instances(self, instances: Sequence[ModelInstance]) -> None:
        """Bulk insert, grouped by owning shard and loaded in parallel.

        Each shard's group is one atomic transaction; a duplicate anywhere
        aborts that shard's whole group but not the other shards' (the
        cross-shard batch is *not* a distributed transaction).
        """
        groups: dict[int, list[ModelInstance]] = {}
        for instance in instances:
            shard = self._map.shard_for(instance.base_version_id)
            groups.setdefault(shard, []).append(instance)
        if not groups:
            return
        if len(groups) == 1:
            ((shard, group),) = groups.items()
            self._shards[shard].insert_instances(group)
            return
        pool = self._pool()
        futures = [
            pool.submit(self._shards[shard].insert_instances, group)
            for shard, group in groups.items()
        ]
        for future in futures:
            future.result()

    def get_instance(self, instance_id: str) -> ModelInstance:
        cached = self._cached_shard(self._instance_shard, instance_id)
        if cached is not None:
            return cached.get_instance(instance_id)

        def probe(shard: MetadataStore) -> ModelInstance | None:
            try:
                return shard.get_instance(instance_id)
            except NotFoundError:
                return None

        for index, instance in enumerate(self._scatter(probe)):
            if instance is not None:
                self._cache_route(self._instance_shard, instance_id, index)
                return instance
        raise NotFoundError(f"no model instance {instance_id!r}")

    def replace_instance(self, instance: ModelInstance) -> None:
        self._shard_for_key(instance.base_version_id).replace_instance(instance)

    def iter_instances(self) -> Iterator[ModelInstance]:
        for part in self._scatter(lambda shard: list(shard.iter_instances())):
            yield from part

    def instances_of_model(self, model_id: str) -> list[ModelInstance]:
        cached = self._cached_shard(self._model_shard, model_id)
        if cached is not None:
            return cached.instances_of_model(model_id)
        merged: list[ModelInstance] = []
        for part in self._scatter(
            lambda shard: shard.instances_of_model(model_id)
        ):
            merged.extend(part)
        merged.sort(key=self._instance_sort_key)
        return merged

    def instances_for_models(
        self, model_ids: Iterable[str]
    ) -> dict[str, list[ModelInstance]]:
        requested = _unique(model_ids)
        out: dict[str, list[ModelInstance]] = {mid: [] for mid in requested}
        if not requested:
            return out
        for part in self._scatter(
            lambda shard: shard.instances_for_models(requested)
        ):
            for model_id, instances in part.items():
                if instances:
                    out[model_id].extend(instances)
        for instances in out.values():
            instances.sort(key=self._instance_sort_key)
        return out

    def instances_of_base_version(
        self, base_version_id: str
    ) -> list[ModelInstance]:
        # The hot model_query narrowing path: single-shard by construction.
        return self._shard_for_key(base_version_id).instances_of_base_version(
            base_version_id
        )

    def find_instances_by_field(
        self, field: str, value: Any
    ) -> list[ModelInstance]:
        merged: list[ModelInstance] = []
        for part in self._scatter(
            lambda shard: shard.find_instances_by_field(field, value)
        ):
            merged.extend(part)
        merged.sort(key=self._instance_sort_key)
        return merged

    # -- metrics --------------------------------------------------------------

    def insert_metric(self, metric: MetricRecord) -> None:
        self._shard_for_key(metric.instance_id).insert_metric(metric)

    def insert_metrics(self, metrics: Sequence[MetricRecord]) -> None:
        """Batch insert; atomic per shard (the registry's metric batches
        target one instance, so the common case is one shard = one txn)."""
        groups: dict[int, list[MetricRecord]] = {}
        for metric in metrics:
            shard = self._map.shard_for(metric.instance_id)
            groups.setdefault(shard, []).append(metric)
        for shard, group in groups.items():
            self._shards[shard].insert_metrics(group)

    def metrics_of_instance(self, instance_id: str) -> list[MetricRecord]:
        return self._shard_for_key(instance_id).metrics_of_instance(instance_id)

    def metrics_for_instances(
        self, instance_ids: Iterable[str], name: str | None = None
    ) -> dict[str, list[MetricRecord]]:
        requested = _unique(instance_ids)
        out: dict[str, list[MetricRecord]] = {iid: [] for iid in requested}
        if not requested:
            return out
        groups: dict[int, list[str]] = {}
        for instance_id in requested:
            groups.setdefault(
                self._map.shard_for(instance_id), []
            ).append(instance_id)
        if len(groups) == 1:
            ((shard, ids),) = groups.items()
            out.update(self._shards[shard].metrics_for_instances(ids, name))
            return out
        pool = self._pool()
        futures = [
            pool.submit(self._shards[shard].metrics_for_instances, ids, name)
            for shard, ids in groups.items()
        ]
        for future in futures:
            out.update(future.result())
        return out

    def iter_metrics(self) -> Iterator[MetricRecord]:
        for part in self._scatter(lambda shard: list(shard.iter_metrics())):
            yield from part

    # -- families --------------------------------------------------------------

    def models_in_family(self, family: str) -> list[Model]:
        merged: list[Model] = []
        for part in self._scatter(lambda shard: shard.models_in_family(family)):
            merged.extend(part)
        merged.sort(key=lambda m: (m.created_time, m.model_id))
        return merged

    def instances_in_family(self, family: str) -> list[ModelInstance]:
        merged: list[ModelInstance] = []
        for part in self._scatter(
            lambda shard: shard.instances_in_family(family)
        ):
            merged.extend(part)
        merged.sort(key=self._instance_sort_key)
        return merged

    # -- serving assignments ---------------------------------------------------
    #
    # Routed by ``scope``: the atomic read-modify-write inside the owning
    # shard's ``assign_serving`` is serialized by that one file's database
    # lock, so replicas racing a switch keep single-store semantics.

    def serving_assignment(self, scope: str) -> ServingAssignment:
        return self._shard_for_key(scope).serving_assignment(scope)

    def serving_assignments(self) -> list[ServingAssignment]:
        merged: list[ServingAssignment] = []
        for part in self._scatter(lambda shard: shard.serving_assignments()):
            merged.extend(part)
        merged.sort(key=lambda a: a.scope)
        return merged

    def assign_serving(
        self,
        scope: str,
        instance_id: str,
        *,
        family: str = "",
        now: float = 0.0,
        reason: str = "",
    ) -> ServingAssignment:
        return self._shard_for_key(scope).assign_serving(
            scope, instance_id, family=family, now=now, reason=reason
        )

    def serving_assignment_count(self) -> int:
        return sum(
            self._scatter(lambda shard: shard.serving_assignment_count())
        )

    # -- misc -----------------------------------------------------------------

    def counts(self) -> dict[str, int]:
        total: dict[str, int] = {}
        for part in self.shard_counts():
            for table, count in part.items():
                total[table] = total.get(table, 0) + count
        return total

    def connection_info(self) -> dict[str, Any]:
        infos = [
            shard.connection_info()
            if hasattr(shard, "connection_info")
            else {}
            for shard in self._shards
        ]
        return {
            "sharded": True,
            "num_shards": self.num_shards,
            "epoch": self._map.epoch,
            "open_connections": sum(
                info.get("open_connections", 0) for info in infos
            ),
            "shards": infos,
        }

    def close(self) -> None:
        with self._executor_lock:
            self._closed = True
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)
        for shard in self._shards:
            close = getattr(shard, "close", None)
            if close is not None:
                close()

    # -- durable control state ------------------------------------------------
    #
    # Routed by natural key so a claim/letter lives on exactly one shard and
    # the cross-replica atomicity argument of the single-file store carries
    # over unchanged.  Capacity trims divide their budget across shards so
    # the configured cap stays a global ceiling.

    @property
    def supports_durable_state(self) -> bool:  # type: ignore[override]
        return all(
            bool(getattr(shard, "supports_durable_state", False))
            for shard in self._shards
        )

    def dedup_claim(
        self,
        client_id: str,
        request_id: int,
        *,
        takeover_after: float = 5.0,
        now: float | None = None,
    ) -> tuple[str, bytes | None]:
        return self._shard_for_key(client_id).dedup_claim(
            client_id, request_id, takeover_after=takeover_after, now=now
        )

    def dedup_complete(
        self, client_id: str, request_id: int, response: bytes
    ) -> None:
        self._shard_for_key(client_id).dedup_complete(
            client_id, request_id, response
        )

    def dedup_release(self, client_id: str, request_id: int) -> None:
        self._shard_for_key(client_id).dedup_release(client_id, request_id)

    def dedup_trim(self, capacity: int) -> int:
        """Trim toward a *global* capacity: the budget is divided across
        shards, so the total resident count is bounded by *capacity*."""
        return sum(
            self._scatter_zip(
                lambda shard, budget: shard.dedup_trim(budget),
                self._split_budget(capacity),
            )
        )

    def dedup_trim_age(self, max_age: float, now: float | None = None) -> int:
        return sum(
            self._scatter(lambda shard: shard.dedup_trim_age(max_age, now))
        )

    def dedup_count(self) -> int:
        return sum(self._scatter(lambda shard: shard.dedup_count()))

    @staticmethod
    def _global_letter_id(local_id: int, shard: int) -> int:
        return local_id * SHARD_STRIDE + shard

    @staticmethod
    def _decode_letter_id(letter_id: int) -> tuple[int, int]:
        return letter_id // SHARD_STRIDE, letter_id % SHARD_STRIDE

    def dead_letter_append(
        self, rule_uuid: str, action: str, error_type: str, record: str
    ) -> int:
        shard = self._map.shard_for(rule_uuid)
        local_id = self._shards[shard].dead_letter_append(
            rule_uuid, action, error_type, record
        )
        return self._global_letter_id(local_id, shard)

    def dead_letters_list(
        self,
        *,
        rule_uuid: str | None = None,
        action: str | None = None,
        error_type: str | None = None,
    ) -> list[tuple[int, str]]:
        if rule_uuid is not None:
            shard = self._map.shard_for(rule_uuid)
            parts = {
                shard: self._shards[shard].dead_letters_list(
                    rule_uuid=rule_uuid, action=action, error_type=error_type
                )
            }
        else:
            parts = dict(
                enumerate(
                    self._scatter(
                        lambda s: s.dead_letters_list(
                            rule_uuid=rule_uuid,
                            action=action,
                            error_type=error_type,
                        )
                    )
                )
            )
        merged = [
            (self._global_letter_id(local_id, shard), record)
            for shard, rows in parts.items()
            for local_id, record in rows
        ]
        # Local ids are per-shard append counters, so ordering by
        # (local_id, shard) — i.e. the global id's decode order —
        # interleaves shards in approximate arrival order.
        merged.sort(key=lambda row: (row[0] // SHARD_STRIDE, row[0]))
        return merged

    def dead_letter_update(
        self, letter_id: int, error_type: str, record: str
    ) -> None:
        local_id, shard = self._decode_letter_id(letter_id)
        self._shards[shard].dead_letter_update(local_id, error_type, record)

    def dead_letters_delete(self, letter_ids: Iterable[int]) -> int:
        groups: dict[int, list[int]] = {}
        for letter_id in letter_ids:
            local_id, shard = self._decode_letter_id(letter_id)
            groups.setdefault(shard, []).append(local_id)
        return sum(
            self._shards[shard].dead_letters_delete(ids)
            for shard, ids in groups.items()
        )

    def dead_letters_trim(self, max_entries: int) -> int:
        """Trim toward a *global* cap: the budget is divided across
        shards, so the total resident count is bounded by *max_entries*."""
        return sum(
            self._scatter_zip(
                lambda shard, budget: shard.dead_letters_trim(budget),
                self._split_budget(max_entries),
            )
        )

    def dead_letters_trim_age(
        self, max_age: float, now: float | None = None
    ) -> int:
        return sum(
            self._scatter(
                lambda shard: shard.dead_letters_trim_age(max_age, now)
            )
        )

    def dead_letters_count(self) -> int:
        return sum(self._scatter(lambda shard: shard.dead_letters_count()))


# -- on-disk layout -----------------------------------------------------------


def shard_file(directory: str, shard: int) -> str:
    return os.path.join(directory, f"shard-{shard:04d}.sqlite")


def open_sharded_store(
    directory: str,
    shard_count: int | None = None,
    *,
    max_workers: int | None = None,
    create: bool = True,
) -> ShardedMetadataStore:
    """Open (creating if needed) the sharded layout rooted at *directory*.

    A persisted ``shard_map.json`` is authoritative; *shard_count* only
    applies when creating a fresh layout, and conflicts with an existing
    map are an error rather than a silent re-partition.

    ``create=False`` makes this strictly open-only: a missing shard map is
    an error and nothing is written to disk.  Read-only tooling (e.g.
    ``gallery shard status``) must use it — planting an empty ``shards/``
    layout next to a legacy ``gallery.sqlite`` would shadow all existing
    data, because :func:`repro.build_gallery` auto-detects ``shards/``.
    """
    map_path = os.path.join(directory, SHARD_MAP_FILENAME)
    if os.path.exists(map_path):
        shard_map = ShardMap.load(map_path)
        if shard_count is not None and shard_count != shard_map.num_shards:
            raise MetadataStoreError(
                f"layout at {directory!r} has {shard_map.num_shards} shards;"
                f" refusing to open as {shard_count}"
                " (use 'gallery shard split' to rebalance)"
            )
    elif not create:
        raise MetadataStoreError(
            f"no sharded layout at {directory!r}"
            f" (missing {SHARD_MAP_FILENAME}; run 'gallery shard init' first)"
        )
    else:
        os.makedirs(directory, exist_ok=True)
        shard_map = ShardMap.uniform(shard_count or 1)
        shard_map.save(map_path)
    shards = [
        SQLiteMetadataStore(shard_file(directory, i))
        for i in range(shard_map.num_shards)
    ]
    return ShardedMetadataStore(
        shards, shard_map, directory=directory, max_workers=max_workers
    )


# -- offline rebalance tooling ------------------------------------------------
#
# The split/adopt tools below operate directly on closed SQLite files with
# raw connections (this module *is* repro.store, the one place the TID251
# ban permits sqlite3.connect).  Protocol for ``split_shard``:
#
#   1. copy the moving rows into the new shard file (INSERT OR REPLACE,
#      so a crashed attempt is safely re-runnable);
#   2. verify the copy row-for-row;
#   3. atomically install the new shard map (readers cut over here);
#   4. delete the moved rows from the source shard.
#
# A crash between 3 and 4 leaves stale copies on the source shard that
# routed reads never see; ``verify_layout`` detects them and
# ``split_shard``'s final sweep (or a re-run of ``gallery shard verify
# --repair``) removes them.

#: (table, primary-key columns, routing-key extractor over a column dict).
_TABLE_SPECS: tuple[
    tuple[str, tuple[str, ...], Callable[[dict[str, Any]], str]], ...
] = (
    (
        "models",
        ("model_id",),
        lambda row: str(json.loads(row["record"])["base_version_id"]),
    ),
    ("instances", ("instance_id",), lambda row: str(row["base_version_id"])),
    ("metrics", ("metric_id",), lambda row: str(row["instance_id"])),
    (
        "dedup_entries",
        ("client_id", "request_id"),
        lambda row: str(row["client_id"]),
    ),
    ("dead_letters", ("letter_id",), lambda row: str(row["rule_uuid"])),
    ("serving_assignments", ("scope",), lambda row: str(row["scope"])),
)


def _has_table(conn: sqlite3.Connection, table: str) -> bool:
    """Legacy databases may predate newer tables (e.g. serving_assignments);
    the offline tools treat a missing table as an empty one."""
    row = conn.execute(
        "SELECT COUNT(*) FROM sqlite_master WHERE type = 'table' AND name = ?",
        (table,),
    ).fetchone()
    return bool(row[0])


def _table_rows(
    conn: sqlite3.Connection, table: str
) -> tuple[list[str], Iterator[tuple]]:
    cursor = conn.execute(f"SELECT * FROM {table}")  # noqa: S608
    columns = [d[0] for d in cursor.description]

    def rows() -> Iterator[tuple]:
        while True:
            batch = cursor.fetchmany(2000)
            if not batch:
                return
            yield from batch

    return columns, rows()


def _migrate_rows(
    src: sqlite3.Connection,
    dst: sqlite3.Connection | None,
    predicate: Callable[[str], bool],
    *,
    delete: bool,
) -> dict[str, int]:
    """Copy (and optionally delete) every row whose routing key satisfies
    *predicate* from *src* into *dst*; returns per-table moved counts."""
    moved: dict[str, int] = {}
    for table, pk_cols, key_fn in _TABLE_SPECS:
        if not _has_table(src, table):
            moved[table] = 0
            continue
        columns, rows = _table_rows(src, table)
        placeholders = ",".join("?" * len(columns))
        insert_sql = (
            f"INSERT OR REPLACE INTO {table}"  # noqa: S608
            f" ({','.join(columns)}) VALUES ({placeholders})"
        )
        delete_sql = (
            f"DELETE FROM {table} WHERE "  # noqa: S608
            + " AND ".join(f"{c} = ?" for c in pk_cols)
        )
        pk_index = [columns.index(c) for c in pk_cols]
        moving: list[tuple] = []
        for row in rows:
            if predicate(key_fn(dict(zip(columns, row)))):
                moving.append(row)
        if dst is not None and moving:
            dst.executemany(insert_sql, moving)
            dst.commit()
        if delete and moving:
            src.executemany(
                delete_sql, [tuple(row[i] for i in pk_index) for row in moving]
            )
            src.commit()
        moved[table] = len(moving)
    return moved


def _count_misplaced(
    conn: sqlite3.Connection, shard: int, shard_map: ShardMap
) -> dict[str, int]:
    misplaced: dict[str, int] = {}
    for table, _pk, key_fn in _TABLE_SPECS:
        if not _has_table(conn, table):
            continue
        columns, rows = _table_rows(conn, table)
        bad = 0
        for row in rows:
            key = key_fn(dict(zip(columns, row)))
            if shard_map.shard_for(key) != shard:
                bad += 1
        if bad:
            misplaced[table] = bad
    return misplaced


def split_shard(directory: str, shard: int) -> dict[str, Any]:
    """Offline rebalance: halve *shard*'s hash range into a new shard.

    Must run with no store open over *directory*.  Returns a report with
    per-table moved-row counts; raises if post-copy verification fails
    (in which case the old map stays installed and nothing is lost).
    """
    map_path = os.path.join(directory, SHARD_MAP_FILENAME)
    old_map = ShardMap.load(map_path)
    new_map = old_map.split(shard)
    new_shard = old_map.num_shards
    moving_range = new_map.range_of(new_shard)

    def moves(key: str) -> bool:
        return coordinate_hash(key) in moving_range

    # Ensure the destination file exists with the current schema.
    SQLiteMetadataStore(shard_file(directory, new_shard)).close()

    src = sqlite3.connect(shard_file(directory, shard))
    dst = sqlite3.connect(shard_file(directory, new_shard))
    try:
        # Phase 1: copy (re-runnable thanks to INSERT OR REPLACE).
        moved = _migrate_rows(src, dst, moves, delete=False)
        # Phase 2: verify the destination holds every moving row.
        landed = {
            table: int(dst.execute(f"SELECT COUNT(*) FROM {table}").fetchone()[0])  # noqa: S608
            for table, _pk, _key in _TABLE_SPECS
        }
        for table, expected in moved.items():
            if landed[table] < expected:
                raise MetadataStoreError(
                    f"split verification failed for {table}:"
                    f" copied {expected}, found {landed[table]}"
                )
        # Phase 3: install the new map — the cut-over point.
        new_map.save(map_path)
        # Phase 4: drop the moved rows from the source shard.
        _migrate_rows(src, None, moves, delete=True)
    finally:
        src.close()
        dst.close()
    return {
        "shard": shard,
        "new_shard": new_shard,
        "epoch": new_map.epoch,
        "num_shards": new_map.num_shards,
        "moved": moved,
    }


def init_sharded_layout(
    directory: str, shard_count: int, legacy_db: str | None = None
) -> dict[str, Any]:
    """Create a sharded layout, optionally adopting a legacy single file.

    Rows from *legacy_db* are redistributed into the new shard files by
    routing key; the legacy file itself is left untouched (the caller
    renames or removes it once satisfied).
    """
    os.makedirs(directory, exist_ok=True)
    map_path = os.path.join(directory, SHARD_MAP_FILENAME)
    if os.path.exists(map_path):
        raise MetadataStoreError(
            f"{directory!r} already holds a sharded layout"
        )
    shard_map = ShardMap.uniform(shard_count)
    adopted: dict[str, int] = {}
    for index in range(shard_count):
        SQLiteMetadataStore(shard_file(directory, index)).close()
    if legacy_db is not None and os.path.exists(legacy_db):
        src = sqlite3.connect(legacy_db)
        try:
            for index in range(shard_count):
                target = shard_map.range_of(index)
                dst = sqlite3.connect(shard_file(directory, index))
                try:
                    part = _migrate_rows(
                        src,
                        dst,
                        lambda key, rng=target: coordinate_hash(key) in rng,
                        delete=False,
                    )
                finally:
                    dst.close()
                for table, count in part.items():
                    adopted[table] = adopted.get(table, 0) + count
        finally:
            src.close()
    shard_map.save(map_path)
    return {
        "num_shards": shard_count,
        "epoch": shard_map.epoch,
        "adopted": adopted,
    }


def verify_layout(directory: str, *, repair: bool = False) -> dict[str, Any]:
    """Check every resident row routes to its shard under the current map.

    With ``repair=True``, misplaced rows (e.g. stale copies left by a crash
    between a split's map install and its source sweep) are deleted from
    the shard that should not hold them — the owning shard's copy is the
    authoritative one by protocol order.
    """
    shard_map = ShardMap.load(os.path.join(directory, SHARD_MAP_FILENAME))
    misplaced: dict[int, dict[str, int]] = {}
    for index in range(shard_map.num_shards):
        conn = sqlite3.connect(shard_file(directory, index))
        try:
            bad = _count_misplaced(conn, index, shard_map)
            if bad and repair:
                _migrate_rows(
                    conn,
                    None,
                    lambda key, i=index: shard_map.shard_for(key) != i,
                    delete=True,
                )
            if bad:
                misplaced[index] = bad
        finally:
            conn.close()
    return {
        "num_shards": shard_map.num_shards,
        "epoch": shard_map.epoch,
        "misplaced": misplaced,
        "ok": not misplaced,
        "repaired": bool(misplaced) and repair,
    }
