"""Storage substrate: blob stores, metadata stores, sharding, cache, DAL."""

from repro.store.blob import (
    BlobStore,
    FaultInjectingBlobStore,
    FaultPlan,
    FilesystemBlobStore,
    InMemoryBlobStore,
    content_address,
)
from repro.store.cache import CacheStats, LRUBlobCache
from repro.store.dal import ConsistencyReport, DataAccessLayer
from repro.store.metadata_store import (
    InMemoryMetadataStore,
    MetadataStore,
    SQLiteMetadataStore,
)
from repro.store.sharding import (
    ShardedMetadataStore,
    ShardMap,
    ShardRange,
    coordinate_hash,
    init_sharded_layout,
    open_sharded_store,
    split_shard,
    verify_layout,
)

__all__ = [
    "BlobStore",
    "CacheStats",
    "ConsistencyReport",
    "DataAccessLayer",
    "FaultInjectingBlobStore",
    "FaultPlan",
    "FilesystemBlobStore",
    "InMemoryBlobStore",
    "InMemoryMetadataStore",
    "LRUBlobCache",
    "MetadataStore",
    "SQLiteMetadataStore",
    "ShardMap",
    "ShardRange",
    "ShardedMetadataStore",
    "content_address",
    "coordinate_hash",
    "init_sharded_layout",
    "open_sharded_store",
    "split_shard",
    "verify_layout",
]
