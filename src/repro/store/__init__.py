"""Storage substrate: blob stores, metadata stores, cache, and the DAL."""

from repro.store.blob import (
    BlobStore,
    FaultInjectingBlobStore,
    FaultPlan,
    FilesystemBlobStore,
    InMemoryBlobStore,
    content_address,
)
from repro.store.cache import CacheStats, LRUBlobCache
from repro.store.dal import ConsistencyReport, DataAccessLayer
from repro.store.metadata_store import (
    InMemoryMetadataStore,
    MetadataStore,
    SQLiteMetadataStore,
)

__all__ = [
    "BlobStore",
    "CacheStats",
    "ConsistencyReport",
    "DataAccessLayer",
    "FaultInjectingBlobStore",
    "FaultPlan",
    "FilesystemBlobStore",
    "InMemoryBlobStore",
    "InMemoryMetadataStore",
    "LRUBlobCache",
    "MetadataStore",
    "SQLiteMetadataStore",
    "content_address",
]
