"""Serving caches (Section 3.5).

The paper's read path: "the request first goes to MySQL to get the location
of the model blob, and then the model is directly accessed via the storage
location.  The cache is updated with the requested blob and then is
subsequently returned to the user."  This module implements that cache — a
byte-budgeted LRU keyed by blob location — plus a second, metadata-side
cache: :class:`DocumentCache`, a read-through store for the flattened
model+instance search documents the registry assembles on every
``modelQuery`` / rule evaluation.

Both caches sit under the **threaded** TCP server, so every operation takes
an internal lock; statistics updates happen inside the same critical section
and are therefore consistent with the entry map at all times.

The blob cache is deliberately write-around (populated on *read*, not on
write): most freshly-trained instances are never served, so caching them on
upload would only evict blobs that serving traffic is actually hitting.
The document cache is invalidated explicitly by the registry on the only
mutating paths that can change a document (``replace_model`` /
``replace_instance`` / deprecation); see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    current_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUBlobCache:
    """Least-recently-used cache with a byte budget.

    ``capacity_bytes`` bounds the total payload size; a single blob larger
    than the budget is never cached (it would evict everything for one
    entry).  ``get``/``put`` are O(1) and thread-safe.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = capacity_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def get(self, location: str) -> bytes | None:
        """Return the cached blob or None, updating recency on hit."""
        with self._lock:
            data = self._entries.get(location)
            if data is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(location)
            self.stats.hits += 1
            return data

    def put(self, location: str, data: bytes) -> None:
        """Insert a blob, evicting least-recently-used entries to fit."""
        size = len(data)
        if size > self._capacity:
            return  # oversized blobs bypass the cache entirely
        with self._lock:
            if location in self._entries:
                self.stats.current_bytes -= len(self._entries[location])
                del self._entries[location]
            while self.stats.current_bytes + size > self._capacity and self._entries:
                _, evicted = self._entries.popitem(last=False)
                self.stats.current_bytes -= len(evicted)
                self.stats.evictions += 1
            self._entries[location] = data
            self.stats.current_bytes += size

    def invalidate(self, location: str) -> bool:
        """Drop one entry; True when it was present."""
        with self._lock:
            data = self._entries.pop(location, None)
            if data is None:
                return False
            self.stats.current_bytes -= len(data)
            return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats.current_bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, location: str) -> bool:
        with self._lock:
            return location in self._entries


@dataclass
class DocumentCacheStats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DocumentCache:
    """Read-through LRU for flattened model+instance search documents.

    Keyed by instance id; every entry is also indexed by its parent model id
    so a model-record change (dependency pointer mirror, evolution,
    deprecation) can drop every document it contributed to in one call.
    ``get`` returns a shallow copy and ``put`` stores one, so callers may
    decorate the returned document (e.g. attach ``metrics``) without
    poisoning the cache.
    """

    def __init__(self, max_entries: int = 8192) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self._max_entries = max_entries
        self._entries: OrderedDict[str, dict[str, Any]] = OrderedDict()
        self._model_of: dict[str, str] = {}
        self._by_model: dict[str, set[str]] = {}
        #: instance_id -> source record snapshot (for stale degraded reads)
        self._records: dict[str, Any] = {}
        self._lock = threading.RLock()
        self.stats = DocumentCacheStats()

    def get(self, instance_id: str) -> dict[str, Any] | None:
        with self._lock:
            document = self._entries.get(instance_id)
            if document is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(instance_id)
            self.stats.hits += 1
            return dict(document)

    def put(
        self,
        instance_id: str,
        model_id: str,
        document: dict[str, Any],
        record: Any = None,
    ) -> None:
        """Cache a document, optionally with its immutable source *record*.

        The record snapshot is what lets the registry keep answering
        ``model_query`` (marked stale) while the metadata store is down —
        documents alone cannot reconstruct full instance records.
        """
        with self._lock:
            if instance_id in self._entries:
                self._drop(instance_id)
            while len(self._entries) >= self._max_entries:
                evicted_id, _ = self._entries.popitem(last=False)
                self._unindex(evicted_id)
            self._entries[instance_id] = dict(document)
            self._model_of[instance_id] = model_id
            self._by_model.setdefault(model_id, set()).add(instance_id)
            if record is not None:
                self._records[instance_id] = record

    def snapshot(self) -> list[tuple[str, dict[str, Any], Any]]:
        """Every cached (instance_id, document copy, record) triple.

        The degraded-read path iterates this when live storage is
        unreachable; entries without a record snapshot are still returned
        (record ``None``) so callers can decide what to do with them.
        """
        with self._lock:
            return [
                (instance_id, dict(document), self._records.get(instance_id))
                for instance_id, document in self._entries.items()
            ]

    def _unindex(self, instance_id: str) -> None:
        self._records.pop(instance_id, None)
        model_id = self._model_of.pop(instance_id, None)
        if model_id is not None:
            members = self._by_model.get(model_id)
            if members is not None:
                members.discard(instance_id)
                if not members:
                    del self._by_model[model_id]

    def _drop(self, instance_id: str) -> bool:
        present = self._entries.pop(instance_id, None) is not None
        self._unindex(instance_id)
        return present

    def invalidate_instance(self, instance_id: str) -> bool:
        """Drop one instance's document; True when it was cached."""
        with self._lock:
            dropped = self._drop(instance_id)
            if dropped:
                self.stats.invalidations += 1
            return dropped

    def invalidate_model(self, model_id: str) -> int:
        """Drop every document derived from *model_id*; returns the count."""
        with self._lock:
            members = list(self._by_model.get(model_id, ()))
            for instance_id in members:
                self._drop(instance_id)
            self.stats.invalidations += len(members)
            return len(members)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._model_of.clear()
            self._by_model.clear()
            self._records.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, instance_id: str) -> bool:
        with self._lock:
            return instance_id in self._entries
