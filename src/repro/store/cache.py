"""LRU blob cache (Section 3.5).

The paper's read path: "the request first goes to MySQL to get the location
of the model blob, and then the model is directly accessed via the storage
location.  The cache is updated with the requested blob and then is
subsequently returned to the user."  This module implements that cache: a
byte-budgeted LRU keyed by blob location.

The cache is deliberately write-around (populated on *read*, not on write):
most freshly-trained instances are never served, so caching them on upload
would only evict blobs that serving traffic is actually hitting.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    current_bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUBlobCache:
    """Least-recently-used cache with a byte budget.

    ``capacity_bytes`` bounds the total payload size; a single blob larger
    than the budget is never cached (it would evict everything for one
    entry).  ``get``/``put`` are O(1).
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self._capacity = capacity_bytes
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self.stats = CacheStats()

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    def get(self, location: str) -> bytes | None:
        """Return the cached blob or None, updating recency on hit."""
        data = self._entries.get(location)
        if data is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(location)
        self.stats.hits += 1
        return data

    def put(self, location: str, data: bytes) -> None:
        """Insert a blob, evicting least-recently-used entries to fit."""
        size = len(data)
        if size > self._capacity:
            return  # oversized blobs bypass the cache entirely
        if location in self._entries:
            self.stats.current_bytes -= len(self._entries[location])
            del self._entries[location]
        while self.stats.current_bytes + size > self._capacity and self._entries:
            _, evicted = self._entries.popitem(last=False)
            self.stats.current_bytes -= len(evicted)
            self.stats.evictions += 1
        self._entries[location] = data
        self.stats.current_bytes += size

    def invalidate(self, location: str) -> bool:
        """Drop one entry; True when it was present."""
        data = self._entries.pop(location, None)
        if data is None:
            return False
        self.stats.current_bytes -= len(data)
        return True

    def clear(self) -> None:
        self._entries.clear()
        self.stats.current_bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, location: str) -> bool:
        return location in self._entries
