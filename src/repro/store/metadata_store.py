"""Relational metadata storage (Section 3.5).

The paper stores model metadata and metrics in MySQL "to guarantee high
availability and [support] flexible queries".  This module provides the same
query surface behind a backend-neutral interface:

* :class:`InMemoryMetadataStore` — dict-backed; the default for tests.
* :class:`SQLiteMetadataStore` — a real relational backend (stdlib
  ``sqlite3``) with indexed columns for the standard search fields, standing
  in for the Uber-managed MySQL service.

Both enforce **insert-only** semantics for models, instances, and metrics —
records are immutable (Section 3.1).  The only sanctioned in-place change is
:meth:`MetadataStore.replace_model` / :meth:`replace_instance`, which the
registry uses exclusively for bookkeeping fields that the paper itself
mutates: evolution pointers, dependency pointers, and the deprecation flag.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterator

from repro.core.metadata import INDEXED_FIELDS
from repro.core.records import MetricRecord, Model, ModelInstance
from repro.errors import DuplicateError, MetadataStoreError, NotFoundError

#: Fields allowed to change via replace_* (everything else must match).
_MUTABLE_MODEL_FIELDS = {
    "next_model_id",
    "upstream_model_ids",
    "downstream_model_ids",
    "deprecated",
}
_MUTABLE_INSTANCE_FIELDS = {"deprecated"}


def _assert_only_mutable_changed(
    old: dict[str, Any], new: dict[str, Any], mutable: set[str], kind: str
) -> None:
    for key, old_value in old.items():
        if key in mutable:
            continue
        if new.get(key) != old_value:
            raise MetadataStoreError(
                f"{kind} field {key!r} is immutable "
                f"(attempted {old_value!r} -> {new.get(key)!r})"
            )


class MetadataStore(ABC):
    """Abstract relational store for models, instances, and metrics."""

    # -- models -------------------------------------------------------------

    @abstractmethod
    def insert_model(self, model: Model) -> None: ...

    @abstractmethod
    def get_model(self, model_id: str) -> Model: ...

    @abstractmethod
    def replace_model(self, model: Model) -> None:
        """Replace a model record; only bookkeeping fields may differ."""

    @abstractmethod
    def iter_models(self) -> Iterator[Model]: ...

    # -- instances ----------------------------------------------------------

    @abstractmethod
    def insert_instance(self, instance: ModelInstance) -> None: ...

    @abstractmethod
    def get_instance(self, instance_id: str) -> ModelInstance: ...

    @abstractmethod
    def replace_instance(self, instance: ModelInstance) -> None: ...

    @abstractmethod
    def iter_instances(self) -> Iterator[ModelInstance]: ...

    @abstractmethod
    def instances_of_model(self, model_id: str) -> list[ModelInstance]: ...

    @abstractmethod
    def instances_of_base_version(self, base_version_id: str) -> list[ModelInstance]: ...

    @abstractmethod
    def find_instances_by_field(self, field: str, value: Any) -> list[ModelInstance]:
        """Equality lookup on an indexed standard-metadata field."""

    # -- metrics -------------------------------------------------------------

    @abstractmethod
    def insert_metric(self, metric: MetricRecord) -> None: ...

    @abstractmethod
    def metrics_of_instance(self, instance_id: str) -> list[MetricRecord]: ...

    @abstractmethod
    def iter_metrics(self) -> Iterator[MetricRecord]: ...

    # -- misc ---------------------------------------------------------------

    @abstractmethod
    def counts(self) -> dict[str, int]:
        """Row counts per table, for scale experiments."""


class InMemoryMetadataStore(MetadataStore):
    """Dictionary-backed metadata store with hand-maintained indexes."""

    def __init__(self) -> None:
        self._models: dict[str, Model] = {}
        self._instances: dict[str, ModelInstance] = {}
        self._metrics: dict[str, MetricRecord] = {}
        self._instances_by_model: dict[str, list[str]] = {}
        self._instances_by_base: dict[str, list[str]] = {}
        self._metrics_by_instance: dict[str, list[str]] = {}
        self._field_index: dict[tuple[str, Any], list[str]] = {}

    # -- models -------------------------------------------------------------

    def insert_model(self, model: Model) -> None:
        if model.model_id in self._models:
            raise DuplicateError(f"model {model.model_id!r} already exists")
        self._models[model.model_id] = model

    def get_model(self, model_id: str) -> Model:
        try:
            return self._models[model_id]
        except KeyError:
            raise NotFoundError(f"no model {model_id!r}") from None

    def replace_model(self, model: Model) -> None:
        old = self.get_model(model.model_id)
        _assert_only_mutable_changed(
            old.to_dict(), model.to_dict(), _MUTABLE_MODEL_FIELDS, "model"
        )
        self._models[model.model_id] = model

    def iter_models(self) -> Iterator[Model]:
        return iter(list(self._models.values()))

    # -- instances ----------------------------------------------------------

    def insert_instance(self, instance: ModelInstance) -> None:
        if instance.instance_id in self._instances:
            raise DuplicateError(
                f"model instance {instance.instance_id!r} already exists"
            )
        self._instances[instance.instance_id] = instance
        self._instances_by_model.setdefault(instance.model_id, []).append(
            instance.instance_id
        )
        self._instances_by_base.setdefault(instance.base_version_id, []).append(
            instance.instance_id
        )
        for field_name in INDEXED_FIELDS:
            value = instance.metadata.get(field_name)
            if value is not None:
                self._field_index.setdefault((field_name, value), []).append(
                    instance.instance_id
                )

    def get_instance(self, instance_id: str) -> ModelInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise NotFoundError(f"no model instance {instance_id!r}") from None

    def replace_instance(self, instance: ModelInstance) -> None:
        old = self.get_instance(instance.instance_id)
        _assert_only_mutable_changed(
            old.to_dict(), instance.to_dict(), _MUTABLE_INSTANCE_FIELDS, "instance"
        )
        self._instances[instance.instance_id] = instance

    def iter_instances(self) -> Iterator[ModelInstance]:
        return iter(list(self._instances.values()))

    def instances_of_model(self, model_id: str) -> list[ModelInstance]:
        ids = self._instances_by_model.get(model_id, [])
        return [self._instances[i] for i in ids]

    def instances_of_base_version(self, base_version_id: str) -> list[ModelInstance]:
        ids = self._instances_by_base.get(base_version_id, [])
        return [self._instances[i] for i in ids]

    def find_instances_by_field(self, field: str, value: Any) -> list[ModelInstance]:
        if field in INDEXED_FIELDS:
            ids = self._field_index.get((field, value), [])
            return [self._instances[i] for i in ids]
        return [
            inst
            for inst in self._instances.values()
            if inst.metadata.get(field) == value
        ]

    # -- metrics --------------------------------------------------------------

    def insert_metric(self, metric: MetricRecord) -> None:
        if metric.metric_id in self._metrics:
            raise DuplicateError(f"metric {metric.metric_id!r} already exists")
        self._metrics[metric.metric_id] = metric
        self._metrics_by_instance.setdefault(metric.instance_id, []).append(
            metric.metric_id
        )

    def metrics_of_instance(self, instance_id: str) -> list[MetricRecord]:
        ids = self._metrics_by_instance.get(instance_id, [])
        return [self._metrics[i] for i in ids]

    def iter_metrics(self) -> Iterator[MetricRecord]:
        return iter(list(self._metrics.values()))

    def counts(self) -> dict[str, int]:
        return {
            "models": len(self._models),
            "instances": len(self._instances),
            "metrics": len(self._metrics),
        }


_SCHEMA = """
CREATE TABLE IF NOT EXISTS models (
    model_id TEXT PRIMARY KEY,
    record   TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS instances (
    instance_id     TEXT PRIMARY KEY,
    model_id        TEXT NOT NULL,
    base_version_id TEXT NOT NULL,
    model_name      TEXT,
    model_type      TEXT,
    model_domain    TEXT,
    city            TEXT,
    team            TEXT,
    serving_environment TEXT,
    created_time    REAL NOT NULL,
    record          TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_instances_model ON instances(model_id);
CREATE INDEX IF NOT EXISTS idx_instances_base ON instances(base_version_id);
CREATE INDEX IF NOT EXISTS idx_instances_name ON instances(model_name);
CREATE INDEX IF NOT EXISTS idx_instances_city ON instances(city);
CREATE INDEX IF NOT EXISTS idx_instances_domain ON instances(model_domain);
CREATE TABLE IF NOT EXISTS metrics (
    metric_id   TEXT PRIMARY KEY,
    instance_id TEXT NOT NULL,
    name        TEXT NOT NULL,
    value       REAL NOT NULL,
    record      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_metrics_instance ON metrics(instance_id);
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics(name);
"""


class SQLiteMetadataStore(MetadataStore):
    """SQLite-backed metadata store — the MySQL stand-in.

    Records are persisted as JSON documents alongside promoted, indexed
    columns for the standard search fields, mirroring how a production
    deployment keeps a flexible document column plus hot query columns.
    """

    def __init__(self, path: str = ":memory:") -> None:
        # check_same_thread=False + a lock lets the rule engine's worker
        # threads share one connection safely.
        self._conn = sqlite3.connect(path, check_same_thread=False)
        self._lock = threading.RLock()
        with self._lock:
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def _execute(self, sql: str, params: tuple[Any, ...] = ()) -> sqlite3.Cursor:
        with self._lock:
            try:
                cursor = self._conn.execute(sql, params)
                self._conn.commit()
                return cursor
            except sqlite3.IntegrityError as exc:
                self._conn.rollback()
                raise DuplicateError(str(exc)) from exc
            except sqlite3.Error as exc:
                self._conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    # -- models -------------------------------------------------------------

    def insert_model(self, model: Model) -> None:
        self._execute(
            "INSERT INTO models (model_id, record) VALUES (?, ?)",
            (model.model_id, json.dumps(model.to_dict())),
        )

    def get_model(self, model_id: str) -> Model:
        row = self._execute(
            "SELECT record FROM models WHERE model_id = ?", (model_id,)
        ).fetchone()
        if row is None:
            raise NotFoundError(f"no model {model_id!r}")
        return Model.from_dict(json.loads(row[0]))

    def replace_model(self, model: Model) -> None:
        old = self.get_model(model.model_id)
        _assert_only_mutable_changed(
            old.to_dict(), model.to_dict(), _MUTABLE_MODEL_FIELDS, "model"
        )
        self._execute(
            "UPDATE models SET record = ? WHERE model_id = ?",
            (json.dumps(model.to_dict()), model.model_id),
        )

    def iter_models(self) -> Iterator[Model]:
        rows = self._execute("SELECT record FROM models").fetchall()
        return (Model.from_dict(json.loads(r[0])) for r in rows)

    # -- instances ------------------------------------------------------------

    def insert_instance(self, instance: ModelInstance) -> None:
        meta = instance.metadata
        self._execute(
            "INSERT INTO instances (instance_id, model_id, base_version_id,"
            " model_name, model_type, model_domain, city, team,"
            " serving_environment, created_time, record)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                instance.instance_id,
                instance.model_id,
                instance.base_version_id,
                meta.get("model_name"),
                meta.get("model_type"),
                meta.get("model_domain"),
                meta.get("city"),
                meta.get("team"),
                meta.get("serving_environment"),
                instance.created_time,
                json.dumps(instance.to_dict()),
            ),
        )

    def get_instance(self, instance_id: str) -> ModelInstance:
        row = self._execute(
            "SELECT record FROM instances WHERE instance_id = ?", (instance_id,)
        ).fetchone()
        if row is None:
            raise NotFoundError(f"no model instance {instance_id!r}")
        return ModelInstance.from_dict(json.loads(row[0]))

    def replace_instance(self, instance: ModelInstance) -> None:
        old = self.get_instance(instance.instance_id)
        _assert_only_mutable_changed(
            old.to_dict(), instance.to_dict(), _MUTABLE_INSTANCE_FIELDS, "instance"
        )
        self._execute(
            "UPDATE instances SET record = ? WHERE instance_id = ?",
            (json.dumps(instance.to_dict()), instance.instance_id),
        )

    def iter_instances(self) -> Iterator[ModelInstance]:
        rows = self._execute("SELECT record FROM instances").fetchall()
        return (ModelInstance.from_dict(json.loads(r[0])) for r in rows)

    def instances_of_model(self, model_id: str) -> list[ModelInstance]:
        rows = self._execute(
            "SELECT record FROM instances WHERE model_id = ? ORDER BY created_time",
            (model_id,),
        ).fetchall()
        return [ModelInstance.from_dict(json.loads(r[0])) for r in rows]

    def instances_of_base_version(self, base_version_id: str) -> list[ModelInstance]:
        rows = self._execute(
            "SELECT record FROM instances WHERE base_version_id = ?"
            " ORDER BY created_time",
            (base_version_id,),
        ).fetchall()
        return [ModelInstance.from_dict(json.loads(r[0])) for r in rows]

    def find_instances_by_field(self, field: str, value: Any) -> list[ModelInstance]:
        if field in INDEXED_FIELDS:
            rows = self._execute(
                f"SELECT record FROM instances WHERE {field} = ?"  # noqa: S608
                " ORDER BY created_time",
                (value,),
            ).fetchall()
            return [ModelInstance.from_dict(json.loads(r[0])) for r in rows]
        return [
            inst for inst in self.iter_instances() if inst.metadata.get(field) == value
        ]

    # -- metrics ----------------------------------------------------------------

    def insert_metric(self, metric: MetricRecord) -> None:
        self._execute(
            "INSERT INTO metrics (metric_id, instance_id, name, value, record)"
            " VALUES (?, ?, ?, ?, ?)",
            (
                metric.metric_id,
                metric.instance_id,
                metric.name,
                metric.value,
                json.dumps(metric.to_dict()),
            ),
        )

    def metrics_of_instance(self, instance_id: str) -> list[MetricRecord]:
        rows = self._execute(
            "SELECT record FROM metrics WHERE instance_id = ?", (instance_id,)
        ).fetchall()
        return [MetricRecord.from_dict(json.loads(r[0])) for r in rows]

    def iter_metrics(self) -> Iterator[MetricRecord]:
        rows = self._execute("SELECT record FROM metrics").fetchall()
        return (MetricRecord.from_dict(json.loads(r[0])) for r in rows)

    def counts(self) -> dict[str, int]:
        out = {}
        for table in ("models", "instances", "metrics"):
            row = self._execute(f"SELECT COUNT(*) FROM {table}").fetchone()  # noqa: S608
            out[table] = int(row[0])
        return out


StoreFactory = Callable[[], MetadataStore]
