"""Relational metadata storage (Section 3.5).

The paper stores model metadata and metrics in MySQL "to guarantee high
availability and [support] flexible queries".  This module provides the same
query surface behind a backend-neutral interface:

* :class:`InMemoryMetadataStore` — dict-backed; the default for tests.
* :class:`SQLiteMetadataStore` — a real relational backend (stdlib
  ``sqlite3``) with indexed columns for the standard search fields, standing
  in for the Uber-managed MySQL service.

Both enforce **insert-only** semantics for models, instances, and metrics —
records are immutable (Section 3.1).  The only sanctioned in-place change is
:meth:`MetadataStore.replace_model` / :meth:`replace_instance`, which the
registry uses exclusively for bookkeeping fields that the paper itself
mutates: evolution pointers, dependency pointers, and the deprecation flag.

Concurrency model (see ``docs/PERFORMANCE.md``):

* File-backed SQLite runs in WAL mode with **one connection per thread**, so
  readers proceed in parallel and never block behind each other or behind
  the single serialized writer.
* ``:memory:`` databases are private to one connection in SQLite, so that
  configuration keeps the original shared-connection + lock arrangement.
* Writers — including the read-modify-write ``replace_*`` immutability
  checks — always serialize on one store-wide lock, which both preserves
  the insert-only invariants and avoids SQLITE_BUSY storms.

Batch surfaces (``get_models`` / ``instances_for_models`` /
``metrics_for_instances`` / ``insert_metrics``) let the registry resolve a
whole candidate set in O(1) queries instead of one query per record.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.core.metadata import INDEXED_FIELDS
from repro.core.records import MetricRecord, Model, ModelInstance, ServingAssignment
from repro.errors import DuplicateError, MetadataStoreError, NotFoundError

#: Fields allowed to change via replace_* (everything else must match).
#: ``enabled`` is the PR9 review gate: flipping it is sanctioned bookkeeping
#: (like deprecation), while ``family`` stays immutable — a record's grouping
#: is part of its identity.
_MUTABLE_MODEL_FIELDS = {
    "next_model_id",
    "upstream_model_ids",
    "downstream_model_ids",
    "deprecated",
    "enabled",
}
_MUTABLE_INSTANCE_FIELDS = {"deprecated", "enabled"}

#: Max ids per SQL ``IN (...)`` clause; SQLite's default host-parameter
#: limit is 999, so batched lookups chunk below it.
_IN_CLAUSE_CHUNK = 500


def _chunked(ids: Sequence[Any], size: int = _IN_CLAUSE_CHUNK) -> Iterator[Sequence[Any]]:
    for start in range(0, len(ids), size):
        yield ids[start : start + size]


def _unique(ids: Iterable[str]) -> list[str]:
    """Preserve order, drop duplicates (dict insertion-order trick)."""
    return list(dict.fromkeys(ids))


def _assert_only_mutable_changed(
    old: dict[str, Any], new: dict[str, Any], mutable: set[str], kind: str
) -> None:
    for key, old_value in old.items():
        if key in mutable:
            continue
        if new.get(key) != old_value:
            raise MetadataStoreError(
                f"{kind} field {key!r} is immutable "
                f"(attempted {old_value!r} -> {new.get(key)!r})"
            )


class MetadataStore(ABC):
    """Abstract relational store for models, instances, and metrics."""

    #: Whether this backend can persist serving-plane control state (request
    #: dedup entries, dead letters) across a full process restart.  Only
    #: file-backed SQLite sets this; everything else keeps the in-memory forms.
    supports_durable_state: bool = False

    # -- models -------------------------------------------------------------

    @abstractmethod
    def insert_model(self, model: Model) -> None: ...

    @abstractmethod
    def get_model(self, model_id: str) -> Model: ...

    @abstractmethod
    def get_models(self, model_ids: Iterable[str]) -> dict[str, Model]:
        """Batch lookup; missing ids are simply absent from the result."""

    @abstractmethod
    def replace_model(self, model: Model) -> None:
        """Replace a model record; only bookkeeping fields may differ."""

    @abstractmethod
    def iter_models(self) -> Iterator[Model]: ...

    # -- instances ----------------------------------------------------------

    @abstractmethod
    def insert_instance(self, instance: ModelInstance) -> None: ...

    def insert_instances(self, instances: Sequence[ModelInstance]) -> None:
        """Insert a batch of instances in one transaction where the backend
        supports it; the default simply loops.  Bulk-load surface for the
        scale benchmarks and the sharded store's parallel loader."""
        for instance in instances:
            self.insert_instance(instance)

    @abstractmethod
    def get_instance(self, instance_id: str) -> ModelInstance: ...

    @abstractmethod
    def replace_instance(self, instance: ModelInstance) -> None: ...

    @abstractmethod
    def iter_instances(self) -> Iterator[ModelInstance]: ...

    @abstractmethod
    def instances_of_model(self, model_id: str) -> list[ModelInstance]: ...

    @abstractmethod
    def instances_for_models(
        self, model_ids: Iterable[str]
    ) -> dict[str, list[ModelInstance]]:
        """Batch variant of :meth:`instances_of_model`; every requested id
        maps to a (possibly empty) list ordered by creation time."""

    @abstractmethod
    def instances_of_base_version(self, base_version_id: str) -> list[ModelInstance]: ...

    @abstractmethod
    def find_instances_by_field(self, field: str, value: Any) -> list[ModelInstance]:
        """Equality lookup on an indexed standard-metadata field."""

    # -- metrics -------------------------------------------------------------

    @abstractmethod
    def insert_metric(self, metric: MetricRecord) -> None: ...

    @abstractmethod
    def insert_metrics(self, metrics: Sequence[MetricRecord]) -> None:
        """Insert a batch of metrics atomically: all rows or none."""

    @abstractmethod
    def metrics_of_instance(self, instance_id: str) -> list[MetricRecord]: ...

    @abstractmethod
    def metrics_for_instances(
        self, instance_ids: Iterable[str], name: str | None = None
    ) -> dict[str, list[MetricRecord]]:
        """Batch variant of :meth:`metrics_of_instance`; every requested id
        maps to a (possibly empty) list.

        When *name* is given, only metrics with that name are returned — a
        pushdown that lets equality constraints on ``metricName`` skip
        fetching (and parsing) every other metric row.
        """

    @abstractmethod
    def iter_metrics(self) -> Iterator[MetricRecord]: ...

    # -- families -------------------------------------------------------------

    def models_in_family(self, family: str) -> list[Model]:
        """Models grouped under *family*, ordered by creation time.

        The default scans :meth:`iter_models` — model corpora are small
        next to instances; backends with an indexed column override.
        """
        hits = [m for m in self.iter_models() if m.family == family]
        hits.sort(key=lambda m: m.created_time)
        return hits

    def instances_in_family(self, family: str) -> list[ModelInstance]:
        """Instances grouped under *family*, ordered by creation time."""
        hits = [i for i in self.iter_instances() if i.family == family]
        hits.sort(key=lambda i: i.created_time)
        return hits

    # -- serving assignments ---------------------------------------------------
    #
    # "What is serving right now" is registry state, not process state: the
    # rows are durable so every replica over a shared store observes a switch
    # without restart (the PR9 fleet-scale switching requirement).

    @abstractmethod
    def serving_assignment(self, scope: str) -> ServingAssignment:
        """The current assignment for *scope*; raises NotFoundError."""

    @abstractmethod
    def serving_assignments(self) -> list[ServingAssignment]:
        """Every scope's current assignment, ordered by scope."""

    @abstractmethod
    def assign_serving(
        self,
        scope: str,
        instance_id: str,
        *,
        family: str = "",
        now: float = 0.0,
        reason: str = "",
    ) -> ServingAssignment:
        """Atomically (re-)point *scope* at *instance_id*.

        Re-assigning the already-serving instance is a no-op that returns
        the existing row unchanged (no switch-count bump), mirroring the
        old in-memory switchboard semantics.
        """

    @abstractmethod
    def serving_assignment_count(self) -> int:
        """Number of scopes with an assignment (kept out of :meth:`counts`
        so existing exact-shape assertions stay valid)."""

    # -- misc ---------------------------------------------------------------

    @abstractmethod
    def counts(self) -> dict[str, int]:
        """Row counts per table, for scale experiments."""


class InMemoryMetadataStore(MetadataStore):
    """Dictionary-backed metadata store with hand-maintained indexes.

    Lookup results are ordered by ``(created_time, insertion order)`` to
    match the SQLite backend's ``ORDER BY created_time``, so the two
    backends return identical candidate sequences (the ABL-BACKEND parity
    requirement).
    """

    def __init__(self) -> None:
        self._models: dict[str, Model] = {}
        self._instances: dict[str, ModelInstance] = {}
        self._metrics: dict[str, MetricRecord] = {}
        self._instances_by_model: dict[str, list[str]] = {}
        self._instances_by_base: dict[str, list[str]] = {}
        self._metrics_by_instance: dict[str, list[str]] = {}
        self._field_index: dict[tuple[str, Any], list[str]] = {}
        self._serving: dict[str, ServingAssignment] = {}
        self._serving_lock = threading.Lock()

    def _ordered(self, instance_ids: list[str]) -> list[ModelInstance]:
        instances = [self._instances[i] for i in instance_ids]
        instances.sort(key=lambda inst: inst.created_time)  # stable: ties keep insert order
        return instances

    # -- models -------------------------------------------------------------

    def insert_model(self, model: Model) -> None:
        if model.model_id in self._models:
            raise DuplicateError(f"model {model.model_id!r} already exists")
        self._models[model.model_id] = model

    def get_model(self, model_id: str) -> Model:
        try:
            return self._models[model_id]
        except KeyError:
            raise NotFoundError(f"no model {model_id!r}") from None

    def get_models(self, model_ids: Iterable[str]) -> dict[str, Model]:
        return {
            model_id: self._models[model_id]
            for model_id in _unique(model_ids)
            if model_id in self._models
        }

    def replace_model(self, model: Model) -> None:
        old = self.get_model(model.model_id)
        _assert_only_mutable_changed(
            old.to_dict(), model.to_dict(), _MUTABLE_MODEL_FIELDS, "model"
        )
        self._models[model.model_id] = model

    def iter_models(self) -> Iterator[Model]:
        return iter(list(self._models.values()))

    # -- instances ----------------------------------------------------------

    def insert_instance(self, instance: ModelInstance) -> None:
        if instance.instance_id in self._instances:
            raise DuplicateError(
                f"model instance {instance.instance_id!r} already exists"
            )
        self._instances[instance.instance_id] = instance
        self._instances_by_model.setdefault(instance.model_id, []).append(
            instance.instance_id
        )
        self._instances_by_base.setdefault(instance.base_version_id, []).append(
            instance.instance_id
        )
        for field_name in INDEXED_FIELDS:
            value = instance.metadata.get(field_name)
            if value is not None:
                self._field_index.setdefault((field_name, value), []).append(
                    instance.instance_id
                )

    def insert_instances(self, instances: Sequence[ModelInstance]) -> None:
        # Validate first so a duplicate anywhere leaves the store untouched
        # (matches the SQLite backend's transactional rollback).
        seen: set[str] = set()
        for instance in instances:
            if instance.instance_id in self._instances or instance.instance_id in seen:
                raise DuplicateError(
                    f"model instance {instance.instance_id!r} already exists"
                )
            seen.add(instance.instance_id)
        for instance in instances:
            self.insert_instance(instance)

    def get_instance(self, instance_id: str) -> ModelInstance:
        try:
            return self._instances[instance_id]
        except KeyError:
            raise NotFoundError(f"no model instance {instance_id!r}") from None

    def replace_instance(self, instance: ModelInstance) -> None:
        old = self.get_instance(instance.instance_id)
        _assert_only_mutable_changed(
            old.to_dict(), instance.to_dict(), _MUTABLE_INSTANCE_FIELDS, "instance"
        )
        self._instances[instance.instance_id] = instance

    def iter_instances(self) -> Iterator[ModelInstance]:
        return iter(list(self._instances.values()))

    def instances_of_model(self, model_id: str) -> list[ModelInstance]:
        return self._ordered(self._instances_by_model.get(model_id, []))

    def instances_for_models(
        self, model_ids: Iterable[str]
    ) -> dict[str, list[ModelInstance]]:
        return {
            model_id: self.instances_of_model(model_id)
            for model_id in _unique(model_ids)
        }

    def instances_of_base_version(self, base_version_id: str) -> list[ModelInstance]:
        return self._ordered(self._instances_by_base.get(base_version_id, []))

    def find_instances_by_field(self, field: str, value: Any) -> list[ModelInstance]:
        if field in INDEXED_FIELDS:
            return self._ordered(self._field_index.get((field, value), []))
        hits = [
            inst.instance_id
            for inst in self._instances.values()
            if inst.metadata.get(field) == value
        ]
        return self._ordered(hits)

    # -- metrics --------------------------------------------------------------

    def insert_metric(self, metric: MetricRecord) -> None:
        if metric.metric_id in self._metrics:
            raise DuplicateError(f"metric {metric.metric_id!r} already exists")
        self._metrics[metric.metric_id] = metric
        self._metrics_by_instance.setdefault(metric.instance_id, []).append(
            metric.metric_id
        )

    def insert_metrics(self, metrics: Sequence[MetricRecord]) -> None:
        # Validate the whole batch before touching any index so a duplicate
        # anywhere leaves the store untouched (matches SQLite's rollback).
        seen: set[str] = set()
        for metric in metrics:
            if metric.metric_id in self._metrics or metric.metric_id in seen:
                raise DuplicateError(f"metric {metric.metric_id!r} already exists")
            seen.add(metric.metric_id)
        for metric in metrics:
            self.insert_metric(metric)

    def metrics_of_instance(self, instance_id: str) -> list[MetricRecord]:
        ids = self._metrics_by_instance.get(instance_id, [])
        return [self._metrics[i] for i in ids]

    def metrics_for_instances(
        self, instance_ids: Iterable[str], name: str | None = None
    ) -> dict[str, list[MetricRecord]]:
        out: dict[str, list[MetricRecord]] = {}
        for instance_id in _unique(instance_ids):
            records = self.metrics_of_instance(instance_id)
            if name is not None:
                records = [m for m in records if m.name == name]
            out[instance_id] = records
        return out

    def iter_metrics(self) -> Iterator[MetricRecord]:
        return iter(list(self._metrics.values()))

    # -- serving assignments ---------------------------------------------------

    def serving_assignment(self, scope: str) -> ServingAssignment:
        try:
            return self._serving[scope]
        except KeyError:
            raise NotFoundError(f"no serving assignment for scope {scope!r}") from None

    def serving_assignments(self) -> list[ServingAssignment]:
        return sorted(self._serving.values(), key=lambda a: a.scope)

    def assign_serving(
        self,
        scope: str,
        instance_id: str,
        *,
        family: str = "",
        now: float = 0.0,
        reason: str = "",
    ) -> ServingAssignment:
        with self._serving_lock:
            current = self._serving.get(scope)
            if current is not None and current.instance_id == instance_id:
                return current
            assignment = ServingAssignment(
                scope=scope,
                instance_id=instance_id,
                family=family,
                assigned_time=now,
                previous_instance_id=current.instance_id if current else None,
                reason=reason,
                switch_count=(current.switch_count + 1) if current else 1,
            )
            self._serving[scope] = assignment
            return assignment

    def serving_assignment_count(self) -> int:
        return len(self._serving)

    def counts(self) -> dict[str, int]:
        return {
            "models": len(self._models),
            "instances": len(self._instances),
            "metrics": len(self._metrics),
        }


_SCHEMA = """
CREATE TABLE IF NOT EXISTS models (
    model_id TEXT PRIMARY KEY,
    record   TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS instances (
    instance_id     TEXT PRIMARY KEY,
    model_id        TEXT NOT NULL,
    base_version_id TEXT NOT NULL,
    model_name      TEXT,
    model_type      TEXT,
    model_domain    TEXT,
    city            TEXT,
    team            TEXT,
    serving_environment TEXT,
    family          TEXT NOT NULL DEFAULT '',
    created_time    REAL NOT NULL,
    record          TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_instances_model ON instances(model_id);
CREATE INDEX IF NOT EXISTS idx_instances_base ON instances(base_version_id);
CREATE INDEX IF NOT EXISTS idx_instances_name ON instances(model_name);
CREATE INDEX IF NOT EXISTS idx_instances_city ON instances(city);
CREATE INDEX IF NOT EXISTS idx_instances_domain ON instances(model_domain);
CREATE TABLE IF NOT EXISTS metrics (
    metric_id   TEXT PRIMARY KEY,
    instance_id TEXT NOT NULL,
    name        TEXT NOT NULL,
    value       REAL NOT NULL,
    record      TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_metrics_instance ON metrics(instance_id);
CREATE INDEX IF NOT EXISTS idx_metrics_name ON metrics(name);
CREATE INDEX IF NOT EXISTS idx_metrics_instance_name ON metrics(instance_id, name);
CREATE TABLE IF NOT EXISTS dedup_entries (
    client_id  TEXT    NOT NULL,
    request_id INTEGER NOT NULL,
    status     TEXT    NOT NULL,
    response   BLOB,
    updated    REAL    NOT NULL,
    PRIMARY KEY (client_id, request_id)
);
CREATE INDEX IF NOT EXISTS idx_dedup_updated ON dedup_entries(status, updated);
CREATE TABLE IF NOT EXISTS dead_letters (
    letter_id  INTEGER PRIMARY KEY AUTOINCREMENT,
    rule_uuid  TEXT NOT NULL,
    action     TEXT NOT NULL,
    error_type TEXT NOT NULL,
    record     TEXT NOT NULL,
    created_at REAL NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS serving_assignments (
    scope         TEXT PRIMARY KEY,
    instance_id   TEXT NOT NULL,
    family        TEXT NOT NULL DEFAULT '',
    assigned_time REAL NOT NULL DEFAULT 0,
    record        TEXT NOT NULL
);
"""


class SQLiteMetadataStore(MetadataStore):
    """SQLite-backed metadata store — the MySQL stand-in.

    Records are persisted as JSON documents alongside promoted, indexed
    columns for the standard search fields, mirroring how a production
    deployment keeps a flexible document column plus hot query columns.

    File-backed databases open **one connection per thread** (WAL journal,
    ``synchronous=NORMAL``), so the threaded TCP server's readers run in
    parallel; writes always serialize on the store-wide lock.  ``:memory:``
    databases are private to a single SQLite connection, so that
    configuration — and any store built with ``serialized=True`` — keeps
    the original shared-connection + global-lock behaviour.
    """

    def __init__(self, path: str = ":memory:", serialized: bool | None = None) -> None:
        self._path = path
        is_memory = path == ":memory:" or "mode=memory" in path
        self._is_memory = is_memory
        self._serialized = is_memory if serialized is None else (serialized or is_memory)
        self._write_lock = threading.RLock()
        self._local = threading.local()
        self._all_connections: list[sqlite3.Connection] = []
        self._connections_guard = threading.Lock()
        self._closed = False
        if self._serialized:
            self._shared = self._open_connection(apply_wal=False)
        else:
            self._shared = None
        with self._write_lock:
            conn = self._connection()
            conn.executescript(_SCHEMA)
            self._migrate(conn)
            conn.commit()

    @staticmethod
    def _migrate(conn: sqlite3.Connection) -> None:
        """Bring a pre-existing database file up to the current schema.

        ``CREATE TABLE IF NOT EXISTS`` leaves old tables untouched, so
        columns added after a table first shipped need a guarded ALTER.
        Rows predating a migration keep the column default (``created_at
        = 0``), which age-based trims deliberately skip — unknown age is
        never grounds for deletion.
        """
        columns = {
            row[1]
            for row in conn.execute("PRAGMA table_info(dead_letters)")
        }
        if "created_at" not in columns:
            conn.execute(
                "ALTER TABLE dead_letters"
                " ADD COLUMN created_at REAL NOT NULL DEFAULT 0"
            )
        # PR9 families: instance tables created before the promoted ``family``
        # column gain it with the '' default — correct for every pre-family
        # row, whose record JSON also lacks the key and loads as ''.  The
        # serving_assignments table itself is covered by the IF NOT EXISTS
        # CREATE above; new assignments only ever land via this codebase.
        instance_columns = {
            row[1]
            for row in conn.execute("PRAGMA table_info(instances)")
        }
        if "family" not in instance_columns:
            conn.execute(
                "ALTER TABLE instances"
                " ADD COLUMN family TEXT NOT NULL DEFAULT ''"
            )
        # The family index lives here, not in _SCHEMA: on a legacy file the
        # schema script runs before the guarded ALTER above, so indexing the
        # column from _SCHEMA would crash the upgrade.
        conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_instances_family"
            " ON instances(family)"
        )

    # -- connection management ----------------------------------------------

    def _open_connection(self, apply_wal: bool) -> sqlite3.Connection:
        # check_same_thread=False so close() can reap connections owned by
        # exited worker threads; each connection is still used by one thread
        # (or under the global lock in serialized mode).
        conn = sqlite3.connect(self._path, check_same_thread=False, timeout=30.0)
        if apply_wal:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
        with self._connections_guard:
            self._all_connections.append(conn)
        return conn

    def _connection(self) -> sqlite3.Connection:
        if self._closed:
            raise MetadataStoreError("metadata store is closed")
        if self._serialized:
            return self._shared  # type: ignore[return-value]
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = self._open_connection(apply_wal=True)
            self._local.conn = conn
        return conn

    def connection_info(self) -> dict[str, Any]:
        """Operational introspection for tests and the perf harness."""
        conn = self._connection()
        journal_mode = conn.execute("PRAGMA journal_mode").fetchone()[0]
        with self._connections_guard:
            open_connections = len(self._all_connections)
        return {
            "path": self._path,
            "serialized": self._serialized,
            "journal_mode": str(journal_mode),
            "open_connections": open_connections,
        }

    def close(self) -> None:
        with self._write_lock:
            self._closed = True
            with self._connections_guard:
                connections, self._all_connections = self._all_connections, []
            for conn in connections:
                try:
                    conn.close()
                except sqlite3.Error:  # pragma: no cover - best-effort reap
                    pass

    # -- statement helpers ----------------------------------------------------

    def _read(self, sql: str, params: tuple[Any, ...] = ()) -> list[tuple]:
        """Run a SELECT; lock-free on per-thread WAL connections."""
        if self._serialized:
            with self._write_lock:
                return self._read_unlocked(sql, params)
        return self._read_unlocked(sql, params)

    def _read_unlocked(self, sql: str, params: tuple[Any, ...]) -> list[tuple]:
        try:
            return self._connection().execute(sql, params).fetchall()
        except sqlite3.Error as exc:
            raise MetadataStoreError(str(exc)) from exc

    def _write(self, sql: str, params: tuple[Any, ...] = ()) -> None:
        with self._write_lock:
            conn = self._connection()
            try:
                conn.execute(sql, params)
                conn.commit()
            except sqlite3.IntegrityError as exc:
                conn.rollback()
                raise DuplicateError(str(exc)) from exc
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    def _write_many(self, sql: str, rows: Sequence[tuple[Any, ...]]) -> None:
        """Execute one statement for many rows in a single transaction."""
        if not rows:
            return
        with self._write_lock:
            conn = self._connection()
            try:
                conn.executemany(sql, rows)
                conn.commit()
            except sqlite3.IntegrityError as exc:
                conn.rollback()
                raise DuplicateError(str(exc)) from exc
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    # -- models -------------------------------------------------------------

    def insert_model(self, model: Model) -> None:
        self._write(
            "INSERT INTO models (model_id, record) VALUES (?, ?)",
            (model.model_id, json.dumps(model.to_dict())),
        )

    def get_model(self, model_id: str) -> Model:
        rows = self._read(
            "SELECT record FROM models WHERE model_id = ?", (model_id,)
        )
        if not rows:
            raise NotFoundError(f"no model {model_id!r}")
        return Model.from_dict(json.loads(rows[0][0]))

    def get_models(self, model_ids: Iterable[str]) -> dict[str, Model]:
        out: dict[str, Model] = {}
        for chunk in _chunked(_unique(model_ids)):
            placeholders = ",".join("?" * len(chunk))
            rows = self._read(
                f"SELECT record FROM models WHERE model_id IN ({placeholders})",  # noqa: S608
                tuple(chunk),
            )
            for (record,) in rows:
                model = Model.from_dict(json.loads(record))
                out[model.model_id] = model
        return out

    def replace_model(self, model: Model) -> None:
        # Hold the write lock across read-check-update so the immutability
        # check and the UPDATE are one atomic step under concurrency.
        with self._write_lock:
            old = self.get_model(model.model_id)
            _assert_only_mutable_changed(
                old.to_dict(), model.to_dict(), _MUTABLE_MODEL_FIELDS, "model"
            )
            self._write(
                "UPDATE models SET record = ? WHERE model_id = ?",
                (json.dumps(model.to_dict()), model.model_id),
            )

    def iter_models(self) -> Iterator[Model]:
        rows = self._read("SELECT record FROM models")
        return (Model.from_dict(json.loads(r[0])) for r in rows)

    # -- instances ------------------------------------------------------------

    _INSERT_INSTANCE_SQL = (
        "INSERT INTO instances (instance_id, model_id, base_version_id,"
        " model_name, model_type, model_domain, city, team,"
        " serving_environment, family, created_time, record)"
        " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)"
    )

    @staticmethod
    def _instance_row(instance: ModelInstance) -> tuple[Any, ...]:
        meta = instance.metadata
        return (
            instance.instance_id,
            instance.model_id,
            instance.base_version_id,
            meta.get("model_name"),
            meta.get("model_type"),
            meta.get("model_domain"),
            meta.get("city"),
            meta.get("team"),
            meta.get("serving_environment"),
            instance.family,
            instance.created_time,
            json.dumps(instance.to_dict()),
        )

    def insert_instance(self, instance: ModelInstance) -> None:
        self._write(self._INSERT_INSTANCE_SQL, self._instance_row(instance))

    def insert_instances(self, instances: Sequence[ModelInstance]) -> None:
        """Bulk insert in one transaction: all rows land or none do."""
        self._write_many(
            self._INSERT_INSTANCE_SQL,
            [self._instance_row(instance) for instance in instances],
        )

    def get_instance(self, instance_id: str) -> ModelInstance:
        rows = self._read(
            "SELECT record FROM instances WHERE instance_id = ?", (instance_id,)
        )
        if not rows:
            raise NotFoundError(f"no model instance {instance_id!r}")
        return ModelInstance.from_dict(json.loads(rows[0][0]))

    def replace_instance(self, instance: ModelInstance) -> None:
        with self._write_lock:
            old = self.get_instance(instance.instance_id)
            _assert_only_mutable_changed(
                old.to_dict(), instance.to_dict(), _MUTABLE_INSTANCE_FIELDS, "instance"
            )
            self._write(
                "UPDATE instances SET record = ? WHERE instance_id = ?",
                (json.dumps(instance.to_dict()), instance.instance_id),
            )

    def iter_instances(self) -> Iterator[ModelInstance]:
        rows = self._read("SELECT record FROM instances")
        return (ModelInstance.from_dict(json.loads(r[0])) for r in rows)

    def instances_of_model(self, model_id: str) -> list[ModelInstance]:
        rows = self._read(
            "SELECT record FROM instances WHERE model_id = ? ORDER BY created_time",
            (model_id,),
        )
        return [ModelInstance.from_dict(json.loads(r[0])) for r in rows]

    def instances_for_models(
        self, model_ids: Iterable[str]
    ) -> dict[str, list[ModelInstance]]:
        requested = _unique(model_ids)
        out: dict[str, list[ModelInstance]] = {model_id: [] for model_id in requested}
        for chunk in _chunked(requested):
            placeholders = ",".join("?" * len(chunk))
            rows = self._read(
                "SELECT record FROM instances WHERE model_id IN"  # noqa: S608
                f" ({placeholders}) ORDER BY created_time",
                tuple(chunk),
            )
            for (record,) in rows:
                instance = ModelInstance.from_dict(json.loads(record))
                out[instance.model_id].append(instance)
        return out

    def instances_of_base_version(self, base_version_id: str) -> list[ModelInstance]:
        rows = self._read(
            "SELECT record FROM instances WHERE base_version_id = ?"
            " ORDER BY created_time",
            (base_version_id,),
        )
        return [ModelInstance.from_dict(json.loads(r[0])) for r in rows]

    def find_instances_by_field(self, field: str, value: Any) -> list[ModelInstance]:
        if field in INDEXED_FIELDS:
            rows = self._read(
                f"SELECT record FROM instances WHERE {field} = ?"  # noqa: S608
                " ORDER BY created_time",
                (value,),
            )
            return [ModelInstance.from_dict(json.loads(r[0])) for r in rows]
        hits = [
            inst for inst in self.iter_instances() if inst.metadata.get(field) == value
        ]
        hits.sort(key=lambda inst: inst.created_time)
        return hits

    # -- metrics ----------------------------------------------------------------

    @staticmethod
    def _metric_row(metric: MetricRecord) -> tuple[Any, ...]:
        return (
            metric.metric_id,
            metric.instance_id,
            metric.name,
            metric.value,
            json.dumps(metric.to_dict()),
        )

    def insert_metric(self, metric: MetricRecord) -> None:
        self._write(
            "INSERT INTO metrics (metric_id, instance_id, name, value, record)"
            " VALUES (?, ?, ?, ?, ?)",
            self._metric_row(metric),
        )

    def insert_metrics(self, metrics: Sequence[MetricRecord]) -> None:
        self._write_many(
            "INSERT INTO metrics (metric_id, instance_id, name, value, record)"
            " VALUES (?, ?, ?, ?, ?)",
            [self._metric_row(metric) for metric in metrics],
        )

    def metrics_of_instance(self, instance_id: str) -> list[MetricRecord]:
        rows = self._read(
            "SELECT record FROM metrics WHERE instance_id = ?", (instance_id,)
        )
        return [MetricRecord.from_dict(json.loads(r[0])) for r in rows]

    def metrics_for_instances(
        self, instance_ids: Iterable[str], name: str | None = None
    ) -> dict[str, list[MetricRecord]]:
        requested = _unique(instance_ids)
        out: dict[str, list[MetricRecord]] = {
            instance_id: [] for instance_id in requested
        }
        for chunk in _chunked(requested):
            placeholders = ",".join("?" * len(chunk))
            sql = (
                "SELECT record FROM metrics WHERE instance_id IN"  # noqa: S608
                f" ({placeholders})"
            )
            params: tuple[Any, ...] = tuple(chunk)
            if name is not None:
                sql += " AND name = ?"
                params += (name,)
            for (record,) in self._read(sql, params):
                metric = MetricRecord.from_dict(json.loads(record))
                out[metric.instance_id].append(metric)
        return out

    def iter_metrics(self) -> Iterator[MetricRecord]:
        rows = self._read("SELECT record FROM metrics")
        return (MetricRecord.from_dict(json.loads(r[0])) for r in rows)

    # -- families --------------------------------------------------------------

    def instances_in_family(self, family: str) -> list[ModelInstance]:
        rows = self._read(
            "SELECT record FROM instances WHERE family = ? ORDER BY created_time",
            (family,),
        )
        return [ModelInstance.from_dict(json.loads(r[0])) for r in rows]

    # -- serving assignments ---------------------------------------------------

    def serving_assignment(self, scope: str) -> ServingAssignment:
        rows = self._read(
            "SELECT record FROM serving_assignments WHERE scope = ?", (scope,)
        )
        if not rows:
            raise NotFoundError(f"no serving assignment for scope {scope!r}")
        return ServingAssignment.from_dict(json.loads(rows[0][0]))

    def serving_assignments(self) -> list[ServingAssignment]:
        rows = self._read(
            "SELECT record FROM serving_assignments ORDER BY scope"
        )
        return [ServingAssignment.from_dict(json.loads(r[0])) for r in rows]

    def assign_serving(
        self,
        scope: str,
        instance_id: str,
        *,
        family: str = "",
        now: float = 0.0,
        reason: str = "",
    ) -> ServingAssignment:
        # BEGIN IMMEDIATE takes the database write lock before the read, so
        # the read-modify-write is atomic across *replicas* sharing this
        # file, not just across this process's threads.
        with self._write_lock:
            conn = self._connection()
            try:
                conn.execute("BEGIN IMMEDIATE")
                rows = conn.execute(
                    "SELECT record FROM serving_assignments WHERE scope = ?",
                    (scope,),
                ).fetchall()
                current = (
                    ServingAssignment.from_dict(json.loads(rows[0][0]))
                    if rows
                    else None
                )
                if current is not None and current.instance_id == instance_id:
                    conn.commit()
                    return current
                assignment = ServingAssignment(
                    scope=scope,
                    instance_id=instance_id,
                    family=family,
                    assigned_time=now,
                    previous_instance_id=current.instance_id if current else None,
                    reason=reason,
                    switch_count=(current.switch_count + 1) if current else 1,
                )
                conn.execute(
                    "INSERT INTO serving_assignments"
                    " (scope, instance_id, family, assigned_time, record)"
                    " VALUES (?, ?, ?, ?, ?)"
                    " ON CONFLICT(scope) DO UPDATE SET"
                    " instance_id = excluded.instance_id,"
                    " family = excluded.family,"
                    " assigned_time = excluded.assigned_time,"
                    " record = excluded.record",
                    (
                        scope,
                        instance_id,
                        family,
                        now,
                        json.dumps(assignment.to_dict()),
                    ),
                )
                conn.commit()
                return assignment
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    def serving_assignment_count(self) -> int:
        rows = self._read("SELECT COUNT(*) FROM serving_assignments")
        return int(rows[0][0])

    def counts(self) -> dict[str, int]:
        out = {}
        for table in ("models", "instances", "metrics"):
            rows = self._read(f"SELECT COUNT(*) FROM {table}")  # noqa: S608
            out[table] = int(rows[0][0])
        return out

    # -- durable control state (request dedup + dead letters) -----------------
    #
    # Several server replicas share one file-backed database, so the
    # exactly-once bookkeeping lives here rather than in per-process memory.
    # Claims are made atomic across replicas by the PRIMARY KEY insert (first
    # writer wins) and by conditional UPDATEs checked via ``rowcount`` — the
    # per-instance ``_write_lock`` only serializes threads of one process;
    # SQLite's database write lock serializes the replicas themselves.

    @property
    def supports_durable_state(self) -> bool:  # type: ignore[override]
        return not self._is_memory

    def dedup_claim(
        self,
        client_id: str,
        request_id: int,
        *,
        takeover_after: float = 5.0,
        now: float | None = None,
    ) -> tuple[str, bytes | None]:
        """Claim the right to execute ``(client_id, request_id)``.

        Returns one of:

        * ``("owner", None)`` — caller must execute the request and then
          call :meth:`dedup_complete` (success) or :meth:`dedup_release`.
        * ``("done", response)`` — a replica already finished; replay the
          recorded response bytes verbatim.
        * ``("pending", None)`` — another replica is still executing it;
          the caller should answer with a transient error so the client
          retries after a backoff.

        A ``pending`` row older than *takeover_after* seconds is presumed
        abandoned (its replica died mid-request) and is taken over.
        """
        now = time.time() if now is None else now
        with self._write_lock:
            conn = self._connection()
            try:
                conn.execute(
                    "INSERT INTO dedup_entries"
                    " (client_id, request_id, status, response, updated)"
                    " VALUES (?, ?, 'pending', NULL, ?)",
                    (client_id, request_id, now),
                )
                conn.commit()
                return "owner", None
            except sqlite3.IntegrityError:
                conn.rollback()
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc
            try:
                rows = conn.execute(
                    "SELECT status, response FROM dedup_entries"
                    " WHERE client_id = ? AND request_id = ?",
                    (client_id, request_id),
                ).fetchall()
                if not rows:
                    # Row vanished between INSERT conflict and SELECT (a
                    # concurrent release); let the client retry cleanly.
                    return "pending", None
                status, response = rows[0]
                if status == "done":
                    conn.execute(
                        "UPDATE dedup_entries SET updated = ?"
                        " WHERE client_id = ? AND request_id = ?",
                        (now, client_id, request_id),
                    )
                    conn.commit()
                    return "done", bytes(response)
                cursor = conn.execute(
                    "UPDATE dedup_entries SET updated = ?"
                    " WHERE client_id = ? AND request_id = ?"
                    " AND status = 'pending' AND updated <= ?",
                    (now, client_id, request_id, now - takeover_after),
                )
                conn.commit()
                if cursor.rowcount == 1:
                    return "owner", None
                return "pending", None
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    def dedup_complete(
        self, client_id: str, request_id: int, response: bytes
    ) -> None:
        """Record the successful response for a claimed request."""
        self._write(
            "UPDATE dedup_entries SET status = 'done', response = ?, updated = ?"
            " WHERE client_id = ? AND request_id = ?",
            (response, time.time(), client_id, request_id),
        )

    def dedup_release(self, client_id: str, request_id: int) -> None:
        """Drop a pending claim (the request failed; a retry may re-execute)."""
        self._write(
            "DELETE FROM dedup_entries WHERE client_id = ? AND request_id = ?"
            " AND status = 'pending'",
            (client_id, request_id),
        )

    def dedup_trim(self, capacity: int) -> int:
        """Evict the oldest completed entries beyond *capacity*; return count."""
        with self._write_lock:
            conn = self._connection()
            try:
                (total,) = conn.execute(
                    "SELECT COUNT(*) FROM dedup_entries WHERE status = 'done'"
                ).fetchone()
                excess = int(total) - capacity
                if excess <= 0:
                    return 0
                cursor = conn.execute(
                    "DELETE FROM dedup_entries WHERE rowid IN ("
                    " SELECT rowid FROM dedup_entries WHERE status = 'done'"
                    " ORDER BY updated ASC LIMIT ?)",
                    (excess,),
                )
                conn.commit()
                return cursor.rowcount
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    def dedup_trim_age(self, max_age: float, now: float | None = None) -> int:
        """Evict completed entries older than *max_age* seconds.

        Only ``done`` rows are eligible: a pending claim is owned by a
        live (or about-to-be-taken-over) request and must not vanish.
        """
        now = time.time() if now is None else now
        with self._write_lock:
            conn = self._connection()
            try:
                cursor = conn.execute(
                    "DELETE FROM dedup_entries WHERE status = 'done'"
                    " AND updated <= ?",
                    (now - max_age,),
                )
                conn.commit()
                return cursor.rowcount
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    def dedup_count(self) -> int:
        rows = self._read(
            "SELECT COUNT(*) FROM dedup_entries WHERE status = 'done'"
        )
        return int(rows[0][0])

    def dead_letter_append(
        self, rule_uuid: str, action: str, error_type: str, record: str
    ) -> int:
        """Insert a serialized dead letter; return its assigned id."""
        with self._write_lock:
            conn = self._connection()
            try:
                cursor = conn.execute(
                    "INSERT INTO dead_letters (rule_uuid, action, error_type,"
                    " record, created_at) VALUES (?, ?, ?, ?, ?)",
                    (rule_uuid, action, error_type, record, time.time()),
                )
                conn.commit()
                return int(cursor.lastrowid)
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    def dead_letters_list(
        self,
        *,
        rule_uuid: str | None = None,
        action: str | None = None,
        error_type: str | None = None,
    ) -> list[tuple[int, str]]:
        """Return ``(letter_id, record)`` pairs, oldest first."""
        sql = "SELECT letter_id, record FROM dead_letters"
        clauses: list[str] = []
        params: tuple[Any, ...] = ()
        for column, value in (
            ("rule_uuid", rule_uuid),
            ("action", action),
            ("error_type", error_type),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params += (value,)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY letter_id"
        return [(int(row[0]), row[1]) for row in self._read(sql, params)]

    def dead_letter_update(
        self, letter_id: int, error_type: str, record: str
    ) -> None:
        """Refresh a letter after a failed redrive attempt."""
        self._write(
            "UPDATE dead_letters SET error_type = ?, record = ?"
            " WHERE letter_id = ?",
            (error_type, record, letter_id),
        )

    def dead_letters_delete(self, letter_ids: Iterable[int]) -> int:
        """Delete letters by id; return how many rows were removed."""
        ids = list(letter_ids)
        if not ids:
            return 0
        removed = 0
        with self._write_lock:
            conn = self._connection()
            try:
                for chunk in _chunked(ids):
                    placeholders = ",".join("?" * len(chunk))
                    cursor = conn.execute(
                        "DELETE FROM dead_letters WHERE letter_id IN"  # noqa: S608
                        f" ({placeholders})",
                        tuple(chunk),
                    )
                    removed += cursor.rowcount
                conn.commit()
                return removed
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    def dead_letters_trim(self, max_entries: int) -> int:
        """Evict the oldest letters beyond *max_entries*; return count."""
        with self._write_lock:
            conn = self._connection()
            try:
                (total,) = conn.execute(
                    "SELECT COUNT(*) FROM dead_letters"
                ).fetchone()
                excess = int(total) - max_entries
                if excess <= 0:
                    return 0
                cursor = conn.execute(
                    "DELETE FROM dead_letters WHERE letter_id IN ("
                    " SELECT letter_id FROM dead_letters"
                    " ORDER BY letter_id ASC LIMIT ?)",
                    (excess,),
                )
                conn.commit()
                return cursor.rowcount
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    def dead_letters_trim_age(
        self, max_age: float, now: float | None = None
    ) -> int:
        """Evict letters older than *max_age* seconds; return count.

        Letters written before the ``created_at`` column existed carry the
        migration default of 0 and are never age-trimmed — an unknown age
        is not an old age.
        """
        now = time.time() if now is None else now
        with self._write_lock:
            conn = self._connection()
            try:
                cursor = conn.execute(
                    "DELETE FROM dead_letters WHERE created_at > 0"
                    " AND created_at <= ?",
                    (now - max_age,),
                )
                conn.commit()
                return cursor.rowcount
            except sqlite3.Error as exc:
                conn.rollback()
                raise MetadataStoreError(str(exc)) from exc

    def dead_letters_count(self) -> int:
        rows = self._read("SELECT COUNT(*) FROM dead_letters")
        return int(rows[0][0])


StoreFactory = Callable[[], MetadataStore]
