"""Unified data access layer (Section 3.5).

The DAL is the single gateway through which the registry touches storage.
It enforces the paper's consistency discipline:

    "we always write model blobs first and only write the model metadata
    after the model blobs are successfully stored.  If the model blob of a
    model instance is saved but the metadata fails to save, then the model
    instance will not be available in the system."

Consequences implemented here:

* :meth:`DataAccessLayer.save_instance` writes the blob, then the metadata.
  A blob failure leaves *nothing* behind; a metadata failure leaves only an
  **orphan blob**, which is invisible to the system and reclaimable by
  :meth:`collect_orphan_blobs`.
* Metadata that references a missing blob can therefore never be produced by
  a crash — :meth:`audit_consistency` treats such *dangling metadata* as
  corruption.
* The blob read path is MySQL → location → cache → blob store, populating
  the LRU cache on miss.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Sequence

from repro.core.records import (
    MetricRecord,
    Model,
    ModelInstance,
    ServingAssignment,
)
from repro.errors import BlobStoreError, ConsistencyError, MetadataStoreError
from repro.store.blob import BlobRange, BlobRegion, BlobStore, range_of_bytes
from repro.store.cache import LRUBlobCache
from repro.store.metadata_store import MetadataStore


@dataclass(frozen=True, slots=True)
class ConsistencyReport:
    """Result of a storage audit.

    ``orphan_blobs`` are blobs without metadata — a legal by-product of
    metadata-write failures, safe to garbage-collect.  ``dangling_instances``
    are instances whose metadata references a missing blob — impossible under
    write-blob-first, hence corruption.
    """

    orphan_blobs: tuple[str, ...]
    dangling_instances: tuple[str, ...]

    @property
    def consistent(self) -> bool:
        return not self.dangling_instances


class DataAccessLayer:
    """Storage facade: metadata store + blob store + read cache."""

    def __init__(
        self,
        metadata_store: MetadataStore,
        blob_store: BlobStore,
        cache: LRUBlobCache | None = None,
    ) -> None:
        self._metadata = metadata_store
        self._blobs = blob_store
        self._cache = cache

    @property
    def metadata(self) -> MetadataStore:
        return self._metadata

    @property
    def blobs(self) -> BlobStore:
        return self._blobs

    @property
    def cache(self) -> LRUBlobCache | None:
        return self._cache

    @property
    def supports_durable_state(self) -> bool:
        """True when the metadata backend can persist serving-plane control
        state (request-dedup entries, dead letters) across restarts."""
        return bool(getattr(self._metadata, "supports_durable_state", False))

    # -- durable control state ------------------------------------------------
    #
    # Thin pass-throughs so the server's dedup cache and the engine's durable
    # dead-letter queue stay behind the DAL rather than reaching into the
    # concrete store.  Only meaningful when ``supports_durable_state`` is True.

    def dedup_claim(
        self,
        client_id: str,
        request_id: int,
        *,
        takeover_after: float = 5.0,
    ) -> tuple[str, bytes | None]:
        return self._metadata.dedup_claim(
            client_id, request_id, takeover_after=takeover_after
        )

    def dedup_complete(
        self, client_id: str, request_id: int, response: bytes
    ) -> None:
        self._metadata.dedup_complete(client_id, request_id, response)

    def dedup_release(self, client_id: str, request_id: int) -> None:
        self._metadata.dedup_release(client_id, request_id)

    def dedup_trim(self, capacity: int) -> int:
        return self._metadata.dedup_trim(capacity)

    def dedup_trim_age(self, max_age: float, now: float | None = None) -> int:
        return self._metadata.dedup_trim_age(max_age, now)

    def dedup_count(self) -> int:
        return self._metadata.dedup_count()

    def dead_letter_append(
        self, rule_uuid: str, action: str, error_type: str, record: str
    ) -> int:
        return self._metadata.dead_letter_append(
            rule_uuid, action, error_type, record
        )

    def dead_letters_list(
        self,
        *,
        rule_uuid: str | None = None,
        action: str | None = None,
        error_type: str | None = None,
    ) -> list[tuple[int, str]]:
        return self._metadata.dead_letters_list(
            rule_uuid=rule_uuid, action=action, error_type=error_type
        )

    def dead_letter_update(
        self, letter_id: int, error_type: str, record: str
    ) -> None:
        self._metadata.dead_letter_update(letter_id, error_type, record)

    def dead_letters_delete(self, letter_ids: Sequence[int]) -> int:
        return self._metadata.dead_letters_delete(letter_ids)

    def dead_letters_trim(self, max_entries: int) -> int:
        return self._metadata.dead_letters_trim(max_entries)

    def dead_letters_trim_age(
        self, max_age: float, now: float | None = None
    ) -> int:
        return self._metadata.dead_letters_trim_age(max_age, now)

    def dead_letters_count(self) -> int:
        return self._metadata.dead_letters_count()

    # -- families & serving assignments ----------------------------------------
    #
    # Serving assignments are registry state like any other record: reads and
    # the atomic re-point go through the DAL so the registry never touches
    # the concrete store, and the sharded backend routes by scope.

    def models_in_family(self, family: str) -> list[Model]:
        return self._metadata.models_in_family(family)

    def instances_in_family(self, family: str) -> list[ModelInstance]:
        return self._metadata.instances_in_family(family)

    def serving_assignment(self, scope: str) -> ServingAssignment:
        return self._metadata.serving_assignment(scope)

    def serving_assignments(self) -> list[ServingAssignment]:
        return self._metadata.serving_assignments()

    def assign_serving(
        self,
        scope: str,
        instance_id: str,
        *,
        family: str = "",
        now: float = 0.0,
        reason: str = "",
    ) -> ServingAssignment:
        return self._metadata.assign_serving(
            scope, instance_id, family=family, now=now, reason=reason
        )

    # -- write path -----------------------------------------------------------

    def save_model(self, model: Model) -> None:
        self._metadata.insert_model(model)

    def save_instance(self, instance: ModelInstance, blob: bytes) -> ModelInstance:
        """Persist an instance using the write-blob-first protocol.

        Returns the stored record with ``blob_location`` filled in.  On blob
        failure nothing is written; on metadata failure the blob remains as
        an invisible orphan (collected later by :meth:`collect_orphan_blobs`).
        """
        location = self._blobs.put(blob, hint=instance.instance_id)
        stored = replace(instance, blob_location=location)
        try:
            self._metadata.insert_instance(stored)
        except MetadataStoreError:
            # The orphaned blob stays behind; that is the designed failure
            # mode — the instance is simply "not available in the system".
            raise
        return stored

    def save_metric(self, metric: MetricRecord) -> None:
        self._metadata.insert_metric(metric)

    def save_metrics(self, metrics: Sequence[MetricRecord]) -> None:
        """Persist a metric batch atomically (single transaction)."""
        self._metadata.insert_metrics(list(metrics))

    # -- read path -------------------------------------------------------------

    def load_blob(self, instance_id: str) -> bytes:
        """Fetch an instance's blob: metadata → location → cache → store."""
        instance = self._metadata.get_instance(instance_id)
        location = instance.blob_location
        if not location:
            raise ConsistencyError(
                f"instance {instance_id!r} has no blob location recorded"
            )
        if self._cache is not None:
            cached = self._cache.get(location)
            if cached is not None:
                return cached
        try:
            data = self._blobs.get(location)
        except BlobStoreError:
            raise
        if self._cache is not None:
            self._cache.put(location, data)
        return data

    def _blob_location(self, instance_id: str) -> str:
        instance = self._metadata.get_instance(instance_id)
        location = instance.blob_location
        if not location:
            raise ConsistencyError(
                f"instance {instance_id!r} has no blob location recorded"
            )
        return location

    def load_blob_payload(self, instance_id: str) -> "bytes | BlobRegion":
        """Fetch an instance's blob for *serving*: zero-copy when possible.

        Prefers, in order: the blob cache (bytes, no I/O), an open
        :class:`BlobRegion` from a file-backed store (the server hands it
        to ``os.sendfile`` — the caller owns closing it), and finally a
        plain :meth:`load_blob`-style copy read (which populates the
        cache).
        """
        location = self._blob_location(instance_id)
        if self._cache is not None:
            cached = self._cache.get(location)
            if cached is not None:
                return cached
        region = self._blobs.open_region(location)
        if region is not None:
            return region
        data = self._blobs.get(location)
        if self._cache is not None:
            self._cache.put(location, data)
        return data

    def load_blob_range(self, instance_id: str, offset: int, length: int) -> BlobRange:
        """Fetch a digest-carrying sub-range of an instance's blob.

        Serves from the blob cache when the whole blob is already resident;
        otherwise delegates to the store's range read (zero-copy on
        file-backed stores).  Range reads never populate the cache — the
        point of a range is to avoid materializing the artifact.
        """
        location = self._blob_location(instance_id)
        if self._cache is not None:
            cached = self._cache.get(location)
            if cached is not None:
                return range_of_bytes(cached, offset, length)
        return self._blobs.get_range(location, offset, length)

    # -- maintenance --------------------------------------------------------

    def referenced_locations(self) -> set[str]:
        """Blob locations reachable from instance metadata."""
        return {
            inst.blob_location
            for inst in self._metadata.iter_instances()
            if inst.blob_location
        }

    def audit_consistency(self) -> ConsistencyReport:
        """Cross-check metadata against the blob store (Section 3.5)."""
        referenced = self.referenced_locations()
        stored = set(self._blobs.locations())
        orphans = tuple(sorted(stored - referenced))
        dangling = tuple(
            sorted(
                inst.instance_id
                for inst in self._metadata.iter_instances()
                if inst.blob_location and inst.blob_location not in stored
            )
        )
        return ConsistencyReport(orphan_blobs=orphans, dangling_instances=dangling)

    def collect_orphan_blobs(self) -> list[str]:
        """Delete blobs not referenced by any metadata; return their locations.

        Content-addressed backends may legitimately share one blob between
        instances, so only locations with *zero* referents are removed.
        """
        report = self.audit_consistency()
        for location in report.orphan_blobs:
            self._blobs.delete(location)
            if self._cache is not None:
                self._cache.invalidate(location)
        return list(report.orphan_blobs)

    def storage_summary(self) -> dict[str, Any]:
        """Operational snapshot used by scale benchmarks and ``gallery gc``."""
        summary: dict[str, Any] = dict(self._metadata.counts())
        summary["blob_count"] = len(self._blobs.locations())
        summary["serving_assignments"] = self._metadata.serving_assignment_count()
        if self._cache is not None:
            summary["cache_entries"] = len(self._cache)
            summary["cache_hit_rate"] = self._cache.stats.hit_rate
        if self.supports_durable_state:
            # Surface the serving-plane control tables so gc can print
            # before/after counts instead of only the trimmed deltas.
            summary["dedup_entries"] = self._metadata.dedup_count()
            summary["dead_letters"] = self._metadata.dead_letters_count()
        topology = getattr(self._metadata, "shard_topology", None)
        if topology is not None:
            summary["shards"] = topology()
        return summary
