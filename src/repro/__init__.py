"""Reproduction of "Gallery: A Machine Learning Model Management System at
Uber" (EDBT 2020).

Quickstart::

    from repro import build_gallery

    gallery = build_gallery()
    model = gallery.create_model("example-project", "supply_rejection")
    instance = gallery.upload_model(
        "example-project", "supply_rejection",
        blob=serialized_model_bytes,
        metadata={"model_name": "Random Forest", "city": "New York City"},
    )
    gallery.insert_metric(instance.instance_id, "bias", 0.05, scope="Validation")

See :mod:`repro.core` for the registry, :mod:`repro.rules` for the
orchestration rule engine, :mod:`repro.forecasting` and
:mod:`repro.simulation` for the case-study substrates.
"""

from __future__ import annotations

import os

from repro.core.clock import Clock
from repro.core.ids import IdFactory
from repro.core.registry import Gallery
from repro.rules.events import EventBus
from repro.store.blob import BlobStore, FilesystemBlobStore, InMemoryBlobStore
from repro.store.cache import LRUBlobCache
from repro.store.dal import DataAccessLayer
from repro.store.metadata_store import (
    InMemoryMetadataStore,
    MetadataStore,
    SQLiteMetadataStore,
)
from repro.store.sharding import open_sharded_store

__version__ = "1.0.0"

__all__ = ["Gallery", "build_gallery", "__version__"]


def build_gallery(
    metadata_backend: str = "memory",
    blob_backend: str = "memory",
    cache_bytes: int | None = 64 * 1024 * 1024,
    data_dir: str | os.PathLike[str] | None = None,
    clock: Clock | None = None,
    id_factory: IdFactory | None = None,
    bus: EventBus | None = None,
    shard_count: int | None = None,
) -> Gallery:
    """Assemble a Gallery with the requested storage backends.

    ``metadata_backend`` is ``"memory"`` or ``"sqlite"``; ``blob_backend`` is
    ``"memory"`` or ``"fs"``.  Durable backends need *data_dir*.  Pass
    ``cache_bytes=None`` to disable the blob read cache.  With the sqlite
    backend, ``shard_count`` > 1 (or an existing ``shards/`` layout under
    *data_dir*) selects the hash-partitioned sharded metadata plane.
    """
    metadata: MetadataStore
    if metadata_backend == "memory":
        if shard_count is not None and shard_count > 1:
            raise ValueError("shard_count requires metadata_backend='sqlite'")
        metadata = InMemoryMetadataStore()
    elif metadata_backend == "sqlite":
        if data_dir is None:
            if shard_count is not None and shard_count > 1:
                raise ValueError("sharded sqlite backend requires data_dir")
            metadata = SQLiteMetadataStore(":memory:")
        else:
            shards_dir = os.path.join(os.fspath(data_dir), "shards")
            if shard_count is not None or os.path.isdir(shards_dir):
                metadata = open_sharded_store(shards_dir, shard_count)
            else:
                metadata = SQLiteMetadataStore(
                    os.path.join(os.fspath(data_dir), "gallery.sqlite")
                )
    else:
        raise ValueError(f"unknown metadata backend {metadata_backend!r}")

    blobs: BlobStore
    if blob_backend == "memory":
        blobs = InMemoryBlobStore()
    elif blob_backend == "fs":
        if data_dir is None:
            raise ValueError("blob_backend='fs' requires data_dir")
        blobs = FilesystemBlobStore(os.path.join(os.fspath(data_dir), "blobs"))
    else:
        raise ValueError(f"unknown blob backend {blob_backend!r}")

    cache = LRUBlobCache(cache_bytes) if cache_bytes else None
    dal = DataAccessLayer(metadata, blobs, cache)
    return Gallery(dal, clock=clock, id_factory=id_factory, bus=bus)
