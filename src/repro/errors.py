"""Exception hierarchy for the Gallery reproduction.

Every error raised by the library derives from :class:`GalleryError` so
applications can catch library failures with a single ``except`` clause while
still being able to discriminate the failure class.  The hierarchy mirrors the
major subsystems of the paper: storage (Section 3.5), versioning (Section
3.4), dependencies (Section 3.4.2), rules (Section 3.7) and the service layer
(Section 4.1).
"""

from __future__ import annotations

import re


class GalleryError(Exception):
    """Base class for every error raised by this library."""


class ValidationError(GalleryError):
    """A record, metadata document, or rule failed validation."""


class ImmutabilityError(GalleryError):
    """An attempt was made to mutate an immutable model or instance.

    The paper's first design principle (Section 3.1) is that models and model
    instances are immutable: any update must create a new version.  Code paths
    that would overwrite an existing record raise this error instead.
    """


class NotFoundError(GalleryError):
    """A model, instance, metric, blob, or rule does not exist."""


class DuplicateError(GalleryError):
    """A record with the same identifier already exists."""


class StorageError(GalleryError):
    """Base class for storage-layer failures (Section 3.5)."""


class BlobStoreError(StorageError):
    """A blob read or write failed in the large-object store."""


class BlobCorruptionError(BlobStoreError):
    """A blob failed its SHA-256 integrity check on read.

    Corruption is distinguished from ordinary I/O failure because it is not
    retryable: re-reading a rotten file yields the same bad bytes.  Callers
    must treat the blob as lost and fall back to re-training/re-uploading.
    """


class MetadataStoreError(StorageError):
    """A metadata read or write failed in the relational store."""


class ConsistencyError(StorageError):
    """The write-blob-first protocol detected an inconsistent record.

    Section 3.5: blobs are always written before metadata, so metadata that
    points at a missing blob indicates corruption rather than a normal
    partial-failure state.
    """


class DependencyError(GalleryError):
    """Base class for dependency-graph failures (Section 3.4.2)."""


class DependencyCycleError(DependencyError):
    """Adding a dependency would create a cycle in the model DAG."""


class RuleError(GalleryError):
    """Base class for rule-engine failures (Section 3.7)."""


class RuleSyntaxError(RuleError):
    """A rule expression could not be lexed or parsed."""


class RuleEvaluationError(RuleError):
    """A rule expression failed during evaluation."""


class RuleReviewError(RuleError):
    """A rule commit was rejected by the review/validation gate."""


class ActionError(RuleError):
    """A callback action failed or is not registered."""


class ReliabilityError(GalleryError):
    """Base class for fault-handling layer failures (retry/breaker/DLQ)."""


class CircuitOpenError(ReliabilityError):
    """A call was rejected because the circuit breaker is open.

    The breaker trips after consecutive failures and rejects calls without
    touching the faulty dependency until the reset timeout elapses, at which
    point a single probe is let through (half-open state).
    """


class RetryBudgetExceededError(ReliabilityError):
    """A retry loop gave up before its first attempt could run.

    Raised only when the per-call deadline is already exhausted *before* an
    attempt starts; failures of the attempts themselves re-raise the last
    underlying exception so callers keep the original error semantics.
    """


class ServiceError(GalleryError):
    """Base class for service/wire-protocol failures (Section 4.1)."""


class WireFormatError(ServiceError):
    """A request or response could not be encoded or decoded."""


class UnknownMethodError(ServiceError):
    """The service was asked to dispatch a method it does not export."""


class ReplicaDrainingError(ServiceError):
    """The replica is draining and refuses *new* work.

    Answered by a server whose operator ran ``gallery fleet drain``:
    in-flight requests finish, new ones get this typed rejection.  It is a
    *routing* signal, not a failure — the request was never executed, so a
    failover client re-sends it to a different replica without penalizing
    the draining one's circuit breaker.
    """


class RateLimitedError(ServiceError):
    """The replica refused the request because a tenant is over budget.

    Answered by the server's QoS layer when a ``client_id``'s token bucket
    is empty.  Like :class:`ReplicaDrainingError` it is a *routing* signal,
    not a failure — the request was never executed, so a failover client
    re-sends it to a different replica (or backs off ``retry_after``
    seconds) without penalizing this replica's circuit breaker or burning
    the retry budget.

    The wire carries only the error type and message, so the server embeds
    the hint as ``retry_after=<seconds>s`` inside the message and this
    class re-parses it on construction; ``retry_after`` therefore survives
    a round-trip through :meth:`repro.service.wire.Response.raise_if_error`.
    """

    #: Back-off hint when the message carries none.
    DEFAULT_RETRY_AFTER = 0.05

    def __init__(self, message: str = "", retry_after: float | None = None):
        if retry_after is None:
            match = re.search(r"retry_after=([0-9.]+)", message)
            if match is not None:
                try:
                    retry_after = float(match.group(1))
                except ValueError:
                    retry_after = None
        if retry_after is None:
            retry_after = self.DEFAULT_RETRY_AFTER
        super().__init__(message)
        self.retry_after = retry_after


class FleetRegistryError(ServiceError):
    """A fleet registry source could not be read or parsed.

    Raised loudly on malformed registry lines, duplicate endpoints, or an
    empty registry — a silently dropped replica is an outage waiting to be
    discovered, and an empty fleet can serve nothing at all.
    """


class LifecycleError(GalleryError):
    """An illegal lifecycle-stage transition was requested (Figure 1)."""


class DeprecatedModelError(GalleryError):
    """An operation targeted a deprecated model without opting in.

    Section 3.7: deprecated models are flagged, not deleted; they are skipped
    during fetching and searching unless the caller explicitly includes them.
    """


#: Every exception class this module defines, keyed by its class name —
#: the same names the wire protocol carries as ``error_type`` strings.
_ERROR_REGISTRY: dict[str, type[Exception]] = {
    name: obj
    for name, obj in list(globals().items())
    if isinstance(obj, type) and issubclass(obj, Exception)
}


def error_class_for(name: str) -> type[Exception] | None:
    """Resolve a wire ``error_type`` name to its typed exception class.

    This is how :meth:`repro.service.wire.Response.raise_if_error` turns
    server-side error strings back into the hierarchy above, so remote
    callers write ``except NotFoundError`` instead of string-matching
    ``exc.error_type``.  Returns ``None`` for names this library does not
    define (callers fall back to :class:`ServiceError`).
    """
    return _ERROR_REGISTRY.get(name)
