"""Orchestration rule engine: expression language, rules, repo, engine."""

from repro.rules.actions import (
    ActionContext,
    ActionRegistry,
    ActionResult,
    register_switch_family_action,
)
from repro.rules.engine import (
    CandidateDocument,
    CandidateSource,
    EngineStats,
    RuleEngine,
    SelectionResult,
    build_static_source,
)
from repro.rules.events import Event, EventBus, EventKind
from repro.rules.lang import Expression
from repro.rules.repo import ChangeRequest, Commit, RequestState, RuleRepository
from repro.rules.rule import ActionSpec, Rule, RuleKind, action_rule, selection_rule

__all__ = [
    "ActionContext",
    "ActionRegistry",
    "ActionResult",
    "ActionSpec",
    "CandidateDocument",
    "CandidateSource",
    "ChangeRequest",
    "Commit",
    "EngineStats",
    "Event",
    "EventBus",
    "EventKind",
    "Expression",
    "RequestState",
    "Rule",
    "RuleEngine",
    "RuleKind",
    "RuleRepository",
    "SelectionResult",
    "action_rule",
    "build_static_source",
    "register_switch_family_action",
    "selection_rule",
]
