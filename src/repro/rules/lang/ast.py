"""AST node types for the rule expression language.

Nodes are frozen dataclasses; each knows how to render itself back to
source (``unparse``), which powers round-trip property tests and readable
rule diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

Node = Union[
    "Literal",
    "Identifier",
    "Unary",
    "Binary",
    "Ternary",
    "Member",
    "Index",
    "Call",
]


@dataclass(frozen=True, slots=True)
class Literal:
    """A number, string, boolean, or null literal."""

    value: object

    def unparse(self) -> str:
        if self.value is None:
            return "null"
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Identifier:
    """A bare name resolved against the evaluation context."""

    name: str

    def unparse(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Unary:
    """Prefix operator: ``!``/``not`` or unary ``-``."""

    op: str
    operand: Node

    def unparse(self) -> str:
        spacer = " " if self.op == "not" else ""
        return f"{self.op}{spacer}({self.operand.unparse()})"


@dataclass(frozen=True, slots=True)
class Binary:
    """Infix operator: comparisons, boolean and/or, arithmetic, ``in``."""

    op: str
    left: Node
    right: Node

    def unparse(self) -> str:
        return f"({self.left.unparse()} {self.op} {self.right.unparse()})"


@dataclass(frozen=True, slots=True)
class Ternary:
    """Conditional expression: ``cond ? then : otherwise`` (JEXL parity)."""

    condition: Node
    then: Node
    otherwise: Node

    def unparse(self) -> str:
        return (
            f"({self.condition.unparse()} ? {self.then.unparse()}"
            f" : {self.otherwise.unparse()})"
        )


def _unparse_postfix_target(target: "Node") -> str:
    """Render a postfix target, parenthesising low-precedence expressions.

    ``Member(Unary("not", x), "bias")`` must render as ``(not (x)).bias``,
    not ``not (x).bias`` — postfix binds tighter than any operator.
    """
    rendered = target.unparse()
    if isinstance(target, (Unary, Binary)):
        return f"({rendered})"
    if isinstance(target, Literal) and rendered.startswith("-"):
        # "-1.bias" would re-parse as -(1.bias); "(-1).bias" keeps the tree.
        return f"({rendered})"
    return rendered


@dataclass(frozen=True, slots=True)
class Member:
    """Dotted member access, e.g. ``metrics.bias``."""

    target: Node
    attr: str

    def unparse(self) -> str:
        return f"{_unparse_postfix_target(self.target)}.{self.attr}"


@dataclass(frozen=True, slots=True)
class Index:
    """Bracket access, e.g. ``metrics["r2"]``."""

    target: Node
    index: Node

    def unparse(self) -> str:
        return f"{_unparse_postfix_target(self.target)}[{self.index.unparse()}]"


@dataclass(frozen=True, slots=True)
class Call:
    """Function call against the safe built-in table, e.g. ``abs(x)``."""

    func: str
    args: tuple[Node, ...]

    def unparse(self) -> str:
        rendered = ", ".join(arg.unparse() for arg in self.args)
        return f"{self.func}({rendered})"


def walk(node: Node):
    """Yield *node* and all of its descendants (pre-order)."""
    yield node
    if isinstance(node, Unary):
        yield from walk(node.operand)
    elif isinstance(node, Binary):
        yield from walk(node.left)
        yield from walk(node.right)
    elif isinstance(node, Ternary):
        yield from walk(node.condition)
        yield from walk(node.then)
        yield from walk(node.otherwise)
    elif isinstance(node, Member):
        yield from walk(node.target)
    elif isinstance(node, Index):
        yield from walk(node.target)
        yield from walk(node.index)
    elif isinstance(node, Call):
        for arg in node.args:
            yield from walk(arg)


def referenced_names(node: Node) -> set[str]:
    """All root identifiers an expression reads.

    The rule engine uses this to know which metadata/metric updates should
    trigger re-evaluation of a registered rule (Section 3.7.2: "updating any
    metadata or metrics specific in a registered rule" fires the rule).
    """
    return {n.name for n in walk(node) if isinstance(n, Identifier)}
