"""Pratt (top-down operator-precedence) parser for rule expressions.

Grammar, loosest to tightest binding::

    ternary     :=  or ( "?" ternary ":" ternary )?
    or          :=  and ( ("||" | "or") and )*
    and         :=  comparison ( ("&&" | "and") comparison )*
    comparison  :=  additive ( ("=="|"!="|"<"|"<="|">"|">="|"in") additive )?
    additive    :=  multiplicative ( ("+"|"-") multiplicative )*
    multiplicative := unary ( ("*"|"/"|"%") unary )*
    unary       :=  ("!" | "not" | "-") unary | postfix
    postfix     :=  primary ( "." IDENT | "[" or "]" )*
    primary     :=  NUMBER | STRING | true | false | null
                 |  IDENT | IDENT "(" args ")" | "(" or ")"

Comparisons are deliberately non-associative (``a < b < c`` is a syntax
error) — chained comparisons in rule languages are a classic source of
silently-wrong rules, and the paper's first rule-engine requirement is that
rules be easy to understand.
"""

from __future__ import annotations

from repro.errors import RuleSyntaxError
from repro.rules.lang.ast import (
    Binary,
    Call,
    Identifier,
    Index,
    Literal,
    Member,
    Node,
    Ternary,
    Unary,
)
from repro.rules.lang.lexer import tokenize
from repro.rules.lang.tokens import Token, TokenType

_COMPARISON_OPS = {
    TokenType.EQ: "==",
    TokenType.NE: "!=",
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
    TokenType.IN: "in",
}

_ADDITIVE_OPS = {TokenType.PLUS: "+", TokenType.MINUS: "-"}
_MULTIPLICATIVE_OPS = {TokenType.STAR: "*", TokenType.SLASH: "/", TokenType.PERCENT: "%"}


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _match(self, *types: TokenType) -> Token | None:
        if self._peek().type in types:
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str) -> Token:
        token = self._match(token_type)
        if token is None:
            actual = self._peek()
            raise RuleSyntaxError(
                f"expected {what} at position {actual.position}, "
                f"got {actual.text!r}"
            )
        return token

    # -- grammar -------------------------------------------------------------

    def parse(self) -> Node:
        node = self._parse_ternary()
        trailing = self._peek()
        if trailing.type is not TokenType.EOF:
            raise RuleSyntaxError(
                f"unexpected trailing input {trailing.text!r} "
                f"at position {trailing.position}"
            )
        return node

    def _parse_ternary(self) -> Node:
        condition = self._parse_or()
        if self._match(TokenType.QUESTION):
            then = self._parse_ternary()
            self._expect(TokenType.COLON, "':' of conditional expression")
            otherwise = self._parse_ternary()
            return Ternary(condition, then, otherwise)
        return condition

    def _parse_or(self) -> Node:
        node = self._parse_and()
        while self._match(TokenType.OR):
            node = Binary("or", node, self._parse_and())
        return node

    def _parse_and(self) -> Node:
        node = self._parse_comparison()
        while self._match(TokenType.AND):
            node = Binary("and", node, self._parse_comparison())
        return node

    def _parse_comparison(self) -> Node:
        node = self._parse_additive()
        token = self._peek()
        if token.type in _COMPARISON_OPS:
            self._advance()
            right = self._parse_additive()
            node = Binary(_COMPARISON_OPS[token.type], node, right)
            follow = self._peek()
            if follow.type in _COMPARISON_OPS:
                raise RuleSyntaxError(
                    f"chained comparisons are not allowed "
                    f"(at position {follow.position}); parenthesise and use 'and'"
                )
        return node

    def _parse_additive(self) -> Node:
        node = self._parse_multiplicative()
        while True:
            token = self._peek()
            if token.type in _ADDITIVE_OPS:
                self._advance()
                node = Binary(
                    _ADDITIVE_OPS[token.type], node, self._parse_multiplicative()
                )
            else:
                return node

    def _parse_multiplicative(self) -> Node:
        node = self._parse_unary()
        while True:
            token = self._peek()
            if token.type in _MULTIPLICATIVE_OPS:
                self._advance()
                node = Binary(
                    _MULTIPLICATIVE_OPS[token.type], node, self._parse_unary()
                )
            else:
                return node

    def _parse_unary(self) -> Node:
        if self._match(TokenType.NOT):
            return Unary("not", self._parse_unary())
        if self._match(TokenType.MINUS):
            operand = self._parse_unary()
            # Constant-fold negative number literals so "-1" is Literal(-1):
            # keeps unparse/parse a clean round trip and evaluation trivial.
            if isinstance(operand, Literal) and isinstance(
                operand.value, (int, float)
            ) and not isinstance(operand.value, bool):
                return Literal(-operand.value)
            return Unary("-", operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Node:
        node = self._parse_primary()
        while True:
            if self._match(TokenType.DOT):
                attr = self._expect(TokenType.IDENTIFIER, "member name")
                node = Member(node, attr.text)
            elif self._match(TokenType.LBRACKET):
                index = self._parse_ternary()
                self._expect(TokenType.RBRACKET, "']'")
                node = Index(node, index)
            else:
                return node

    def _parse_primary(self) -> Node:
        token = self._advance()
        if token.type is TokenType.NUMBER:
            return Literal(token.value)
        if token.type is TokenType.STRING:
            return Literal(token.value)
        if token.type is TokenType.TRUE:
            return Literal(True)
        if token.type is TokenType.FALSE:
            return Literal(False)
        if token.type is TokenType.NULL:
            return Literal(None)
        if token.type is TokenType.IDENTIFIER:
            if self._match(TokenType.LPAREN):
                args: list[Node] = []
                if self._peek().type is not TokenType.RPAREN:
                    args.append(self._parse_ternary())
                    while self._match(TokenType.COMMA):
                        args.append(self._parse_ternary())
                self._expect(TokenType.RPAREN, "')'")
                return Call(token.text, tuple(args))
            return Identifier(token.text)
        if token.type is TokenType.LPAREN:
            node = self._parse_ternary()
            self._expect(TokenType.RPAREN, "')'")
            return node
        raise RuleSyntaxError(
            f"unexpected token {token.text!r} at position {token.position}"
        )


def parse(source: str) -> Node:
    """Parse *source* into an AST; raises :class:`RuleSyntaxError`."""
    if not source or not source.strip():
        raise RuleSyntaxError("empty rule expression")
    return _Parser(tokenize(source)).parse()
