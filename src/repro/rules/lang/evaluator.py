"""Evaluator for rule expressions.

Expressions evaluate against a **context**: a mapping of names to values,
where values may be scalars, mappings (for ``metrics.bias`` /
``metrics["r2"]``), or sequences.  The evaluator is total over well-typed
inputs and fails loudly — :class:`RuleEvaluationError` — on type confusion,
missing names, or division by zero, because rules gate production deploys
and must never silently evaluate to a wrong answer.

Missing-data semantics: looking up an absent *root name* or an absent member
on ``null`` raises; looking up an absent **key of a present mapping** yields
``null`` (rules routinely probe "has this metric been reported yet?").
Comparisons against ``null`` are false except ``==``/``!=``.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from repro.errors import RuleEvaluationError
from repro.rules.lang.ast import (
    Binary,
    Call,
    Identifier,
    Index,
    Literal,
    Member,
    Node,
    Ternary,
    Unary,
)

#: Safe built-in functions available to rule authors.
BUILTINS: dict[str, Callable[..., Any]] = {
    "abs": abs,
    "min": min,
    "max": max,
    "len": len,
    "round": round,
    "float": float,
    "int": int,
}


def evaluate(node: Node, context: Mapping[str, Any]) -> Any:
    """Evaluate *node* against *context*."""
    if isinstance(node, Literal):
        return node.value
    if isinstance(node, Identifier):
        if node.name not in context:
            raise RuleEvaluationError(f"unknown name {node.name!r} in rule context")
        return context[node.name]
    if isinstance(node, Unary):
        return _evaluate_unary(node, context)
    if isinstance(node, Binary):
        return _evaluate_binary(node, context)
    if isinstance(node, Ternary):
        if _truthy(evaluate(node.condition, context)):
            return evaluate(node.then, context)
        return evaluate(node.otherwise, context)
    if isinstance(node, Member):
        return _lookup(evaluate(node.target, context), node.attr, node)
    if isinstance(node, Index):
        key = evaluate(node.index, context)
        return _lookup(evaluate(node.target, context), key, node)
    if isinstance(node, Call):
        return _evaluate_call(node, context)
    raise RuleEvaluationError(f"cannot evaluate node {node!r}")  # pragma: no cover


def _evaluate_unary(node: Unary, context: Mapping[str, Any]) -> Any:
    value = evaluate(node.operand, context)
    if node.op == "not":
        return not _truthy(value)
    if node.op == "-":
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise RuleEvaluationError(f"cannot negate {type(value).__name__}")
        return -value
    raise RuleEvaluationError(f"unknown unary operator {node.op!r}")  # pragma: no cover


def _evaluate_binary(node: Binary, context: Mapping[str, Any]) -> Any:
    op = node.op
    if op == "and":
        left = evaluate(node.left, context)
        if not _truthy(left):
            return False
        return _truthy(evaluate(node.right, context))
    if op == "or":
        left = evaluate(node.left, context)
        if _truthy(left):
            return True
        return _truthy(evaluate(node.right, context))

    left = evaluate(node.left, context)
    right = evaluate(node.right, context)
    if op == "==":
        return left == right
    if op == "!=":
        return left != right
    if op == "in":
        try:
            return left in right
        except TypeError as exc:
            raise RuleEvaluationError(
                f"'in' requires a container on the right, got {type(right).__name__}"
            ) from exc
    if op in {"<", "<=", ">", ">="}:
        return _ordered_compare(op, left, right)
    if op in {"+", "-", "*", "/", "%"}:
        return _arithmetic(op, left, right)
    raise RuleEvaluationError(f"unknown operator {op!r}")  # pragma: no cover


def _ordered_compare(op: str, left: Any, right: Any) -> bool:
    # null never satisfies an ordered comparison (absent metric != passing).
    if left is None or right is None:
        return False
    both_numbers = _is_number(left) and _is_number(right)
    both_strings = isinstance(left, str) and isinstance(right, str)
    if not (both_numbers or both_strings):
        raise RuleEvaluationError(
            f"cannot order-compare {type(left).__name__} with {type(right).__name__}"
        )
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    return left >= right


def _arithmetic(op: str, left: Any, right: Any) -> Any:
    if op == "+" and isinstance(left, str) and isinstance(right, str):
        return left + right
    if not (_is_number(left) and _is_number(right)):
        raise RuleEvaluationError(
            f"arithmetic needs numbers, got {type(left).__name__} "
            f"and {type(right).__name__}"
        )
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise RuleEvaluationError("division by zero in rule expression")
        return left / right
    if right == 0:
        raise RuleEvaluationError("modulo by zero in rule expression")
    return left % right


def _evaluate_call(node: Call, context: Mapping[str, Any]) -> Any:
    func = BUILTINS.get(node.func)
    if func is None:
        raise RuleEvaluationError(f"unknown function {node.func!r}")
    args = [evaluate(arg, context) for arg in node.args]
    try:
        return func(*args)
    except RuleEvaluationError:
        raise
    except Exception as exc:
        raise RuleEvaluationError(f"{node.func}() failed: {exc}") from exc


def _lookup(target: Any, key: Any, node: Node) -> Any:
    if target is None:
        raise RuleEvaluationError(f"cannot access {key!r} on null ({node.unparse()})")
    if isinstance(target, Mapping):
        try:
            return target.get(key)
        except TypeError as exc:  # unhashable key, e.g. metrics[[1]]
            raise RuleEvaluationError(
                f"unhashable key {key!r} in {node.unparse()}"
            ) from exc
    if isinstance(target, (list, tuple)) and isinstance(key, int):
        try:
            return target[key]
        except IndexError as exc:
            raise RuleEvaluationError(
                f"index {key} out of range in {node.unparse()}"
            ) from exc
    # Attribute access on plain objects is deliberately NOT supported: rule
    # contexts are data documents, and reaching into arbitrary Python objects
    # would break the "rules are easy to understand and safe" requirement.
    raise RuleEvaluationError(
        f"cannot access {key!r} on {type(target).__name__} ({node.unparse()})"
    )


def _truthy(value: Any) -> bool:
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, (str, list, tuple, dict)):
        return len(value) > 0
    return True


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
