"""Lexer for the rule expression language."""

from __future__ import annotations

from repro.errors import RuleSyntaxError
from repro.rules.lang.tokens import KEYWORDS, Token, TokenType

_TWO_CHAR_OPS = {
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "&&": TokenType.AND,
    "||": TokenType.OR,
}

_ONE_CHAR_OPS = {
    "<": TokenType.LT,
    ">": TokenType.GT,
    "!": TokenType.NOT,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ".": TokenType.DOT,
    ",": TokenType.COMMA,
    "?": TokenType.QUESTION,
    ":": TokenType.COLON,
}


def tokenize(source: str) -> list[Token]:
    """Lex *source* into a token list ending with an EOF token.

    Raises :class:`RuleSyntaxError` with the offending position on any
    character the language does not recognise or on unterminated strings.
    """
    tokens: list[Token] = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        two = source[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(_TWO_CHAR_OPS[two], two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            # A dot starting a number (".5") is part of the number literal.
            if ch == "." and i + 1 < n and source[i + 1].isdigit():
                token, i = _lex_number(source, i)
                tokens.append(token)
                continue
            tokens.append(Token(_ONE_CHAR_OPS[ch], ch, i))
            i += 1
            continue
        if ch.isdigit():
            token, i = _lex_number(source, i)
            tokens.append(token)
            continue
        if ch in {"'", '"'}:
            token, i = _lex_string(source, i)
            tokens.append(token)
            continue
        if ch.isalpha() or ch == "_":
            token, i = _lex_identifier(source, i)
            tokens.append(token)
            continue
        raise RuleSyntaxError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens


def _lex_number(source: str, start: int) -> tuple[Token, int]:
    i = start
    n = len(source)
    seen_dot = False
    while i < n and (source[i].isdigit() or (source[i] == "." and not seen_dot)):
        if source[i] == ".":
            # "1.e" style exponents are not supported; require digit after dot.
            if i + 1 >= n or not source[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    # optional exponent
    if i < n and source[i] in {"e", "E"}:
        j = i + 1
        if j < n and source[j] in {"+", "-"}:
            j += 1
        if j < n and source[j].isdigit():
            i = j
            while i < n and source[i].isdigit():
                i += 1
    text = source[start:i]
    try:
        value: object = int(text)
    except ValueError:
        try:
            value = float(text)
        except ValueError as exc:
            raise RuleSyntaxError(f"bad number literal {text!r} at {start}") from exc
    return Token(TokenType.NUMBER, text, start, value), i


def _lex_string(source: str, start: int) -> tuple[Token, int]:
    quote = source[start]
    i = start + 1
    n = len(source)
    parts: list[str] = []
    while i < n:
        ch = source[i]
        if ch == "\\" and i + 1 < n:
            escape = source[i + 1]
            mapping = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}
            parts.append(mapping.get(escape, escape))
            i += 2
            continue
        if ch == quote:
            return (
                Token(TokenType.STRING, source[start : i + 1], start, "".join(parts)),
                i + 1,
            )
        parts.append(ch)
        i += 1
    raise RuleSyntaxError(f"unterminated string starting at position {start}")


def _lex_identifier(source: str, start: int) -> tuple[Token, int]:
    i = start
    n = len(source)
    while i < n and (source[i].isalnum() or source[i] == "_"):
        i += 1
    text = source[start:i]
    token_type = KEYWORDS.get(text, TokenType.IDENTIFIER)
    return Token(token_type, text, start, text), i
