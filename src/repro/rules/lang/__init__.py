"""The rule expression language (JEXL stand-in, Section 3.7.2).

Public API:

.. code-block:: python

    from repro.rules.lang import Expression

    expr = Expression.compile('metrics["r2"] >= 0.9 and model_domain == "UberX"')
    expr.evaluate({"metrics": {"r2": 0.95}, "model_domain": "UberX"})  # -> True
    expr.referenced_names()  # -> {"metrics", "model_domain"}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.rules.lang.ast import Node, referenced_names, walk
from repro.rules.lang.evaluator import BUILTINS, evaluate
from repro.rules.lang.lexer import tokenize
from repro.rules.lang.parser import parse

__all__ = [
    "Expression",
    "parse",
    "tokenize",
    "evaluate",
    "walk",
    "referenced_names",
    "BUILTINS",
]


@dataclass(frozen=True, slots=True)
class Expression:
    """A compiled rule expression: source + AST, ready to evaluate."""

    source: str
    node: Node

    @classmethod
    def compile(cls, source: str) -> "Expression":
        """Parse *source*; raises :class:`repro.errors.RuleSyntaxError`."""
        return cls(source=source, node=parse(source))

    def evaluate(self, context: Mapping[str, Any]) -> Any:
        """Evaluate against *context*; raises RuleEvaluationError on bad data."""
        return evaluate(self.node, context)

    def evaluate_bool(self, context: Mapping[str, Any]) -> bool:
        """Evaluate and coerce to bool (the WHEN-clause contract)."""
        return bool(self.evaluate(context))

    def referenced_names(self) -> set[str]:
        """Root identifiers the expression reads (for trigger registration)."""
        return referenced_names(self.node)

    def unparse(self) -> str:
        """Render the AST back to (normalised) source."""
        return self.node.unparse()
