"""Token definitions for the rule expression language.

Gallery's rules are written in JEXL (Section 3.7.2).  This reproduction
implements a JEXL-like expression language from scratch; the token set below
covers everything the paper's rule listings use (comparisons, boolean
operators, member access like ``metrics.bias``, index access like
``metrics["r2"]``) plus arithmetic and a few safe built-in functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class TokenType(Enum):
    # literals / names
    NUMBER = auto()
    STRING = auto()
    IDENTIFIER = auto()
    TRUE = auto()
    FALSE = auto()
    NULL = auto()
    # operators
    EQ = auto()         # ==
    NE = auto()         # !=
    LT = auto()         # <
    LE = auto()         # <=
    GT = auto()         # >
    GE = auto()         # >=
    AND = auto()        # && / and
    OR = auto()         # || / or
    NOT = auto()        # ! / not
    IN = auto()         # in
    PLUS = auto()
    MINUS = auto()
    STAR = auto()
    SLASH = auto()
    PERCENT = auto()
    # structure
    LPAREN = auto()
    RPAREN = auto()
    LBRACKET = auto()
    RBRACKET = auto()
    DOT = auto()
    COMMA = auto()
    QUESTION = auto()
    COLON = auto()
    EOF = auto()


#: Keywords that lex as dedicated token types rather than identifiers.
KEYWORDS = {
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
    "null": TokenType.NULL,
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
    "in": TokenType.IN,
}


@dataclass(frozen=True, slots=True)
class Token:
    """One lexed token with its source position (for error messages)."""

    type: TokenType
    text: str
    position: int
    value: object = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.text!r}@{self.position})"
