"""Event bus connecting registry mutations to the rule engine (Figure 8).

Two trigger families exist in the paper: direct requests to the rule
trigger, and updates to "any metadata or metrics specific in a registered
rule".  The registry publishes :class:`Event` records onto an
:class:`EventBus`; the rule engine subscribes and turns matching events into
evaluation jobs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Mapping


class EventKind(str, Enum):
    MODEL_CREATED = "model_created"
    INSTANCE_CREATED = "instance_created"
    METRIC_UPDATED = "metric_updated"
    METADATA_UPDATED = "metadata_updated"
    INSTANCE_DEPRECATED = "instance_deprecated"
    INSTANCE_ENABLEMENT = "instance_enablement"
    SERVING_SWITCHED = "serving_switched"
    DIRECT_TRIGGER = "direct_trigger"


@dataclass(frozen=True, slots=True)
class Event:
    """One observable change in Gallery state."""

    kind: EventKind
    timestamp: float = 0.0
    model_id: str = ""
    instance_id: str = ""
    metric_name: str = ""
    payload: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload", dict(self.payload))


Subscriber = Callable[[Event], None]


class EventBus:
    """Synchronous publish/subscribe hub.

    Delivery is in-order and synchronous: determinism matters more here than
    concurrency, because rules gate production deployments and the tests
    must be able to assert exactly which evaluations an event caused.
    """

    def __init__(self) -> None:
        self._subscribers: list[Subscriber] = []
        self._history: list[Event] = []

    def subscribe(self, subscriber: Subscriber) -> None:
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        self._subscribers = [s for s in self._subscribers if s is not subscriber]

    def publish(self, event: Event) -> None:
        self._history.append(event)
        for subscriber in list(self._subscribers):
            subscriber(event)

    def history(self) -> list[Event]:
        return list(self._history)

    def __len__(self) -> int:
        return len(self._history)
